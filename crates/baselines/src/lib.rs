//! Clean-room re-implementations of Li & Chang's feasibility ("stability")
//! algorithms \[LC01, Li03\], as described in Sections 5.3–5.4 of the
//! paper. They serve two purposes in this reproduction:
//!
//! 1. **Baselines** for the experiment suite (E5/E6): the paper argues its
//!    uniform FEASIBLE algorithm matches these specialized procedures on
//!    CQ and UCQ while extending to CQ¬/UCQ¬; we measure both agreement
//!    and relative cost.
//! 2. **Differential-testing oracles**: on plain CQ/UCQ inputs, all of
//!    `CQstable`, `CQstable*`, `UCQstable`, `UCQstable*`, and FEASIBLE
//!    must return identical verdicts.
//!
//! | Algorithm | Strategy |
//! |---|---|
//! | [`cq_stable`] | minimize to the core `M ≡ Q`, check `M` orderable |
//! | [`cq_stable_star`] | compute `ans(Q)`, check `ans(Q) ⊑ Q` |
//! | [`ucq_stable`] | minimize the union, check every disjunct feasible |
//! | [`ucq_stable_star`] | union `P` of feasible disjuncts, check `Q ⊑ P` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cq_stable;
mod ucq_stable;

pub use cq_stable::{cq_stable, cq_stable_star};
pub use ucq_stable::{ucq_stable, ucq_stable_star};
