//! Li & Chang's feasibility algorithms for unions of conjunctive queries
//! \[LC01\], re-implemented from the paper's Section 5.4.

use crate::cq_stable::cq_stable_star;
use lap_containment::{minimize_ucq, ucq_contained};
use lap_ir::{Schema, UnionQuery};

/// `UCQstable`: find a minimal (with respect to union) `M ≡ Q`, then check
/// that every disjunct `Mᵢ` is feasible (via `CQstable*`).
pub fn ucq_stable(q: &UnionQuery, schema: &Schema) -> bool {
    debug_assert!(q.is_positive(), "UCQstable applies to plain UCQs");
    let m = minimize_ucq(q);
    m.disjuncts.iter().all(|mi| cq_stable_star(mi, schema))
}

/// `UCQstable*`: take the union `P` of all feasible disjuncts `Qᵢ`, then
/// check `Q ⊑ P` (`P ⊑ Q` holds by construction).
pub fn ucq_stable_star(q: &UnionQuery, schema: &Schema) -> bool {
    debug_assert!(q.is_positive(), "UCQstable* applies to plain UCQs");
    let feasible_disjuncts: Vec<_> = q
        .disjuncts
        .iter()
        .filter(|qi| cq_stable_star(qi, schema))
        .cloned()
        .collect();
    if feasible_disjuncts.len() == q.disjuncts.len() {
        return true; // every disjunct feasible: P = Q
    }
    if feasible_disjuncts.is_empty() {
        // P = false; Q ⊑ false only if Q is false, and a UCQ with
        // disjuncts is never empty.
        return q.is_false();
    }
    let p = UnionQuery::new(feasible_disjuncts).expect("shared heads");
    ucq_contained(q, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_core::feasible;
    use lap_ir::parse_program;

    fn setup(text: &str) -> (UnionQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().clone(), p.schema)
    }

    const EXAMPLE_10: &str = "F^o. G^o. H^o. B^i.\n\
                              Q(x) :- F(x), G(x).\n\
                              Q(x) :- F(x), H(x), B(y).\n\
                              Q(x) :- F(x).";

    #[test]
    fn example_10_all_three_agree() {
        let (q, schema) = setup(EXAMPLE_10);
        assert!(ucq_stable(&q, &schema));
        assert!(ucq_stable_star(&q, &schema));
        assert!(feasible(&q, &schema));
    }

    #[test]
    fn infeasible_union() {
        // The B(y)-disjunct is not absorbed by anything.
        let (q, schema) = setup(
            "F^o. H^o. B^i.\n\
             Q(x) :- F(x).\n\
             Q(x) :- H(x), B(y).",
        );
        assert!(!ucq_stable(&q, &schema));
        assert!(!ucq_stable_star(&q, &schema));
        assert!(!feasible(&q, &schema));
    }

    #[test]
    fn all_disjuncts_feasible_short_circuit() {
        let (q, schema) = setup(
            "F^o. G^o.\n\
             Q(x) :- F(x).\n\
             Q(x) :- G(x).",
        );
        assert!(ucq_stable(&q, &schema));
        assert!(ucq_stable_star(&q, &schema));
    }

    #[test]
    fn no_feasible_disjunct() {
        let (q, schema) = setup(
            "B^i. C^i.\n\
             Q(x) :- B(x), B(y).\n\
             Q(x) :- C(x), C(y).",
        );
        // Nothing binds anything: every disjunct infeasible.
        assert!(!ucq_stable(&q, &schema));
        assert!(!ucq_stable_star(&q, &schema));
        assert!(!feasible(&q, &schema));
    }

    #[test]
    fn agreement_with_uniform_feasible_on_mixed_cases() {
        let cases = [
            EXAMPLE_10,
            "F^o. B^i.\nQ(x) :- F(x), B(y).\nQ(x) :- F(x).",
            "F^o. B^i.\nQ(x) :- F(x), B(y).\nQ(x) :- B(x), F(x).",
            "F^o. G^io.\nQ(x, y) :- G(x, y), F(x).\nQ(x, y) :- F(x), G(x, y).",
        ];
        for text in cases {
            let (q, schema) = setup(text);
            let uniform = feasible(&q, &schema);
            assert_eq!(ucq_stable(&q, &schema), uniform, "UCQstable on {text}");
            assert_eq!(ucq_stable_star(&q, &schema), uniform, "UCQstable* on {text}");
        }
    }
}
