//! Li & Chang's feasibility ("stability") algorithms for plain conjunctive
//! queries \[LC01\], re-implemented from the descriptions in the paper's
//! Section 5.3. Both are **NP**-complete decision procedures; they differ
//! in *which* expensive subroutine they lead with.

use lap_containment::{cq_contained, minimize_cq};
use lap_core::{answerable_split, is_orderable_cq};
use lap_ir::{ConjunctiveQuery, Schema};

/// `CQstable`: find a minimal `M ≡ Q` (the core), then check that
/// `ans(M) = M` — i.e. that the minimal query is orderable.
///
/// Panics in debug builds if `q` is not a plain (positive) CQ.
pub fn cq_stable(q: &ConjunctiveQuery, schema: &Schema) -> bool {
    debug_assert!(q.is_positive(), "CQstable applies to plain CQs");
    let m = minimize_cq(q);
    is_orderable_cq(&m, schema)
}

/// `CQstable*`: compute `ans(Q)`, then check `ans(Q) ⊑ Q`. For plain CQs
/// this is exactly the paper's uniform FEASIBLE algorithm (Section 5.3:
/// "for conjunctive queries, algorithm FEASIBLE is exactly the same as
/// CQstable*"). The advantage over `CQstable`: when `ans(Q) = Q` (the query
/// is orderable) no containment check is needed at all.
pub fn cq_stable_star(q: &ConjunctiveQuery, schema: &Schema) -> bool {
    debug_assert!(q.is_positive(), "CQstable* applies to plain CQs");
    let split = answerable_split(q, schema);
    if split.unsatisfiable {
        return true; // false is (vacuously) executable
    }
    if split.unanswerable.is_empty() {
        return true; // ans(Q) = Q: orderable, no containment needed
    }
    let Some(a) = split.ans_query(&q.head) else {
        return true;
    };
    // ans(Q) must be safe to be executable (Corollary 5's hypothesis):
    // with plain CQs safety can only fail if a head variable is missing.
    if !a.is_safe() {
        return false;
    }
    cq_contained(&a, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_core::feasible;
    use lap_ir::{parse_program, UnionQuery};

    fn setup(text: &str) -> (ConjunctiveQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().disjuncts[0].clone(), p.schema)
    }

    #[test]
    fn example_9_both_accept() {
        let (q, schema) = setup("F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).");
        assert!(cq_stable(&q, &schema));
        assert!(cq_stable_star(&q, &schema));
    }

    #[test]
    fn infeasible_cq_both_reject() {
        let (q, schema) = setup("F^o. B^i.\nQ(x) :- F(x), B(y).");
        assert!(!cq_stable(&q, &schema));
        assert!(!cq_stable_star(&q, &schema));
    }

    #[test]
    fn orderable_cq_short_circuits() {
        let (q, schema) = setup("F^o. B^i.\nQ(x) :- F(x), B(x).");
        assert!(cq_stable(&q, &schema));
        assert!(cq_stable_star(&q, &schema));
    }

    #[test]
    fn agreement_with_uniform_feasible() {
        let cases = [
            "F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).",
            "F^o. B^i.\nQ(x) :- F(x), B(y).",
            "F^o. G^io.\nQ(x, y) :- F(x), G(x, y).",
            "F^o. G^io.\nQ(x, y) :- G(x, y), F(x).",
            "F^o. G^ii.\nQ(x) :- F(x), G(x, y).",
            "F^o. G^ii.\nQ(x) :- F(x), G(x, x).",
            "R^io. S^o.\nQ(x) :- R(x, y), R(y, z), S(x).",
        ];
        for text in cases {
            let (q, schema) = setup(text);
            let uniform = feasible(&UnionQuery::single(q.clone()), &schema);
            assert_eq!(cq_stable(&q, &schema), uniform, "CQstable vs FEASIBLE on {text}");
            assert_eq!(
                cq_stable_star(&q, &schema),
                uniform,
                "CQstable* vs FEASIBLE on {text}"
            );
        }
    }

    #[test]
    fn redundant_unanswerable_atom_is_feasible() {
        // G(x, y) with G^ii is unanswerable, but redundant: G(x, x) covers
        // it? No — G(x,y) maps onto G(x,x) by y→x, so ans(Q) ⊑ Q.
        let (q, schema) = setup("F^o. G^ii.\nQ(x) :- F(x), G(x, x), G(x, y).");
        assert!(cq_stable_star(&q, &schema));
        assert!(cq_stable(&q, &schema));
    }
}
