//! The query flight recorder: a bounded ring buffer of structured events.
//!
//! A [`Journal`] records what an execution *did* — every source call (begin
//! and end, with pattern, bound inputs, row count, and virtual latency),
//! membership probe, cache hit, retry attempt, injected fault, timeout,
//! disjunct-degraded decision, and per-operator batch open/close — as
//! [`JournalEvent`]s stamped with a strictly monotone sequence number and
//! the emitter's virtual clock. Aggregate counters (PR 2) say *how much*
//! happened; the journal says *what happened, in order*, which is the only
//! trustworthy account of a degraded run.
//!
//! Three invariants hold by construction and are re-checked by
//! [`JournalSnapshot::validate`]:
//!
//! 1. sequence numbers are strictly monotone across all lanes (one global
//!    counter behind the buffer mutex);
//! 2. `recorded + dropped == emitted` — the ring never loses an event
//!    silently (evictions bump `dropped`, mirrored to the
//!    `journal.dropped` counter);
//! 3. within one lane, `*.begin` / `*.end` events nest like balanced
//!    parentheses (ends may only be unmatched when the matching begin was
//!    evicted, i.e. when `dropped > 0`).
//!
//! Cost model: the hot emitters — source calls, membership probes, cache
//! hits, retries, faults — go through *compact* entries
//! ([`Journal::record_call`] and friends): one mutex lock, interned
//! relation/pattern ids, and a plain-struct ring slot, with **zero**
//! payload allocation. The structured [`Json`] view of those events is
//! materialised only at [`Journal::snapshot`] time, so the
//! [`JournalConfig::light`] profile (no row capture) is cheap enough for
//! always-on use. Rare structural events (batch open/close, degradation
//! decisions, mediator phases) and the row-capturing replay tier use the
//! general [`Journal::emit`] path, which allocates its payload eagerly.
//! [`JournalConfig::replay`] captures bound inputs and row data so a
//! [`JournalSnapshot`] can drive a bit-for-bit replay. A `sample_every`
//! knob thins *source-call* recording pairwise (begin and end share one
//! decision, so balance survives sampling).

use crate::json::Json;
use crate::metrics::Counter;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Suffix that marks an event as opening a paired interval.
pub const BEGIN_SUFFIX: &str = ".begin";
/// Suffix that marks an event as closing a paired interval.
pub const END_SUFFIX: &str = ".end";

/// Event kinds emitted by the engine. Centralised so producers, the
/// validator, the Chrome exporter, and the replay reader agree on names.
pub mod kind {
    /// A wire attempt on a source starts (one per retry attempt).
    pub const SOURCE_CALL_BEGIN: &str = "source.call.begin";
    /// A wire attempt on a source finished (ok or faulted).
    pub const SOURCE_CALL_END: &str = "source.call.end";
    /// A membership probe resolved (most-selective pattern).
    pub const MEMBERSHIP: &str = "source.membership";
    /// A call was answered from the per-registry cache (no wire attempt).
    pub const CACHE_HIT: &str = "source.cache.hit";
    /// A retry attempt is about to run (attempt ≥ 2).
    pub const RETRY: &str = "source.retry";
    /// An injected fault: the source was unavailable for this attempt.
    pub const FAULT: &str = "source.fault";
    /// An injected timeout: the attempt exceeded its latency budget.
    pub const TIMEOUT: &str = "source.timeout";
    /// A disjunct was dropped from a degraded union evaluation.
    pub const DISJUNCT_DEGRADED: &str = "disjunct.degraded";
    /// An operator's observed cardinality blew past its planner estimate
    /// (≥ 10×): the plan should be re-costed before the next execution.
    pub const ESTIMATE_BLOWN: &str = "exec.estimate.blown";
    /// A physical operator starts processing one batch.
    pub const BATCH_BEGIN: &str = "exec.batch.begin";
    /// A physical operator finished one batch.
    pub const BATCH_END: &str = "exec.batch.end";
    /// The mediator unfolded a query over view definitions.
    pub const MEDIATOR_UNFOLD: &str = "mediator.unfold";
    /// The mediator pruned unanswerable disjuncts.
    pub const MEDIATOR_PRUNE: &str = "mediator.prune";
    /// The daemon's telemetry watcher recalibrated a published plan-cache
    /// entry. Carries the cache key, the triggering relations, and the
    /// before/after estimated-vs-calibrated root costs.
    pub const DAEMON_RECALIBRATE: &str = "daemon.recalibrate";
}

/// Configuration for one [`Journal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalConfig {
    /// Maximum number of retained events; older events are evicted (and
    /// counted in `dropped`) once the ring is full.
    pub capacity: usize,
    /// Record every `sample_every`-th source call (1 = record all). The
    /// decision is made once per call, so begin/end stay paired. Only
    /// source calls are thinned; structural events always record.
    pub sample_every: u64,
    /// Capture bound inputs and returned rows on source-call events. This
    /// is what makes a journal replayable; leave off for always-on use.
    pub capture_rows: bool,
}

impl JournalConfig {
    /// The always-on profile: bounded, unsampled, no row capture.
    pub fn light() -> JournalConfig {
        JournalConfig {
            capacity: 65_536,
            sample_every: 1,
            capture_rows: false,
        }
    }

    /// The replay profile: large ring, no sampling, full row capture.
    pub fn replay() -> JournalConfig {
        JournalConfig {
            capacity: 1 << 20,
            sample_every: 1,
            capture_rows: true,
        }
    }
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig::light()
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEvent {
    /// Strictly monotone sequence number (global across lanes).
    pub seq: u64,
    /// The emitter's virtual clock, in milliseconds.
    pub ts_ms: u64,
    /// The emitting lane (0 = main; parallel union workers use their
    /// disjunct index). Begin/end balance is per lane.
    pub lane: u64,
    /// Event kind (see [`kind`]).
    pub kind: String,
    /// Structured payload.
    pub data: Json,
}

impl JournalEvent {
    /// True when this event opens a paired interval.
    pub fn is_begin(&self) -> bool {
        self.kind.ends_with(BEGIN_SUFFIX)
    }

    /// True when this event closes a paired interval.
    pub fn is_end(&self) -> bool {
        self.kind.ends_with(END_SUFFIX)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::num(self.seq)),
            ("ts_ms", Json::num(self.ts_ms)),
            ("lane", Json::num(self.lane)),
            ("kind", Json::str(&self.kind)),
            ("data", self.data.clone()),
        ])
    }

    fn from_json(doc: &Json) -> Result<JournalEvent, String> {
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("journal event missing numeric {key:?}"))
        };
        Ok(JournalEvent {
            seq: field("seq")?,
            ts_ms: field("ts_ms")?,
            lane: field("lane")?,
            kind: doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("journal event missing string \"kind\"")?
                .to_owned(),
            data: doc.get("data").cloned().unwrap_or(Json::Null),
        })
    }
}

/// Outcome of one wire attempt, as the compact call recorder sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// The attempt returned `rows` tuples after `latency_ms` virtual ms.
    Ok {
        /// Tuples returned by the source.
        rows: u64,
        /// Virtual latency charged to the clock.
        latency_ms: u64,
    },
    /// The attempt failed with an unavailability fault.
    Unavailable {
        /// Virtual latency burned before the fault surfaced.
        latency_ms: u64,
    },
    /// The attempt exceeded its timeout budget.
    Timeout {
        /// Raw latency the transport would have taken.
        latency_ms: u64,
        /// The budget that was exceeded (this is what the clock charges).
        timeout_ms: u64,
    },
}

/// Payload of a compact instant event, decoded back into the standard
/// event shapes at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstantPayload {
    /// A [`kind::MEMBERSHIP`] probe resolved (`{relation, present}`).
    Membership {
        /// Whether the probed tuple was present.
        present: bool,
    },
    /// A [`kind::CACHE_HIT`] (`{relation, rows}`, plus `membership: true`
    /// when the hit answered a membership probe).
    CacheHit {
        /// Rows in the cached reply.
        rows: u64,
        /// True when the hit answered a membership probe.
        membership: bool,
    },
    /// A [`kind::RETRY`] marker (`{relation, attempt}`, plus
    /// `backoff_ms` when the preceding failure charged a backoff wait).
    Retry {
        /// The attempt about to run (≥ 2).
        attempt: u64,
        /// Backoff wait charged to the virtual clock before this attempt
        /// (0 when the policy waited nothing).
        backoff_ms: u64,
    },
    /// A [`kind::FAULT`] marker (`{relation, latency_ms, attempt}`).
    Fault {
        /// Virtual latency burned before the fault surfaced.
        latency_ms: u64,
        /// The failed attempt.
        attempt: u64,
    },
    /// A [`kind::TIMEOUT`] marker (`{relation, latency_ms, attempt}`).
    Timeout {
        /// Raw latency the transport would have taken.
        latency_ms: u64,
        /// The failed attempt.
        attempt: u64,
    },
}

impl InstantPayload {
    /// The internal `(kind, a, b)` slot encoding (see `expand_instant`).
    fn encode(self) -> (&'static str, u64, u64) {
        match self {
            InstantPayload::Membership { present } => (kind::MEMBERSHIP, u64::from(present), 0),
            InstantPayload::CacheHit { rows, membership } => {
                (kind::CACHE_HIT, rows, u64::from(membership))
            }
            InstantPayload::Retry { attempt, backoff_ms } => (kind::RETRY, attempt, backoff_ms),
            InstantPayload::Fault { latency_ms, attempt } => (kind::FAULT, latency_ms, attempt),
            InstantPayload::Timeout { latency_ms, attempt } => {
                (kind::TIMEOUT, latency_ms, attempt)
            }
        }
    }
}

/// De-duplicating string table for relation names and access patterns, so
/// the per-event ring slots store 4-byte ids instead of heap strings.
#[derive(Debug, Default)]
struct Interner {
    table: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.table.len() as u32;
        self.table.push(s.to_owned());
        self.index.insert(s.to_owned(), id);
        id
    }

    fn get(&self, id: u32) -> &str {
        // An id that was never interned (misused `*_by_id` call) degrades
        // to a placeholder instead of panicking at snapshot time.
        self.table.get(id as usize).map_or("?", String::as_str)
    }
}

/// A compact begin/end pair for one wire attempt: expands to two
/// [`JournalEvent`]s (`source.call.begin` at `begin_seq`, `.end` at
/// `begin_seq + 1`) at snapshot time. No payload allocation at emit time.
#[derive(Debug)]
struct CallEntry {
    begin_seq: u64,
    lane: u64,
    begin_ts_ms: u64,
    end_ts_ms: u64,
    relation: u32,
    pattern: u32,
    attempt: u64,
    outcome: WireOutcome,
}

/// A compact instant event whose payload is a relation id plus up to two
/// kind-specific numbers (see `expand_instant` for the per-kind keys).
#[derive(Debug)]
struct InstantEntry {
    seq: u64,
    lane: u64,
    ts_ms: u64,
    kind: &'static str,
    relation: u32,
    a: u64,
    b: u64,
}

/// One ring slot: either a pre-built event (general path) or a compact
/// record that expands lazily.
#[derive(Debug)]
enum Entry {
    Rich(JournalEvent),
    /// A pre-built begin/end pair held in one slot, so concurrent lanes
    /// can never interleave inside the pair and eviction keeps both
    /// halves or neither (the replay tier's analogue of [`Entry::Call`]).
    RichPair(Box<(JournalEvent, JournalEvent)>),
    Call(CallEntry),
    Instant(InstantEntry),
}

impl Entry {
    /// Logical events this slot accounts for (a call pair counts as 2).
    fn events(&self) -> u64 {
        match self {
            Entry::Call(_) | Entry::RichPair(_) => 2,
            _ => 1,
        }
    }
}

#[derive(Debug, Default)]
struct JournalState {
    entries: VecDeque<Entry>,
    /// Logical events currently retained (call pairs count as 2); kept
    /// incrementally so eviction never scans the ring.
    len_events: u64,
    next_seq: u64,
    dropped: u64,
    sample_tick: u64,
    meta: Option<Json>,
    names: Interner,
}

impl JournalState {
    /// Pushes one slot, then trims the ring back under `capacity`
    /// (counting logical events), charging evictions to `dropped`.
    #[inline]
    fn push_entry(&mut self, entry: Entry, capacity: usize, dropped_counter: &Counter) {
        self.len_events += entry.events();
        self.entries.push_back(entry);
        while self.len_events > capacity as u64 {
            let evicted = self
                .entries
                .pop_front()
                .expect("len_events > 0 implies a retained entry")
                .events();
            self.len_events -= evicted;
            self.dropped += evicted;
            for _ in 0..evicted {
                dropped_counter.incr();
            }
        }
    }
}

#[derive(Debug)]
struct JournalShared {
    cfg: JournalConfig,
    state: Mutex<JournalState>,
    dropped_counter: Counter,
}

/// The flight recorder. Clone freely — clones share one ring buffer; all
/// methods take `&self` and are thread-safe.
#[derive(Clone, Debug)]
pub struct Journal {
    inner: Arc<JournalShared>,
}

impl Journal {
    /// A journal with `cfg`, mirroring evictions to `dropped_counter`
    /// (the `journal.dropped` counter when built through a recorder).
    pub fn new(cfg: JournalConfig, dropped_counter: Counter) -> Journal {
        Journal {
            inner: Arc::new(JournalShared {
                cfg: JournalConfig {
                    capacity: cfg.capacity.max(1),
                    sample_every: cfg.sample_every.max(1),
                    ..cfg
                },
                state: Mutex::new(JournalState::default()),
                dropped_counter,
            }),
        }
    }

    /// This journal's configuration.
    pub fn config(&self) -> JournalConfig {
        self.inner.cfg
    }

    /// True when source-call events should carry inputs and row data.
    pub fn capture_rows(&self) -> bool {
        self.inner.cfg.capture_rows
    }

    /// One sampling decision per source call: true when this call should
    /// be journaled. Begin and end of the same call must share one
    /// decision so pairs stay balanced.
    #[inline]
    pub fn should_sample_call(&self) -> bool {
        let every = self.inner.cfg.sample_every;
        if every <= 1 {
            return true;
        }
        let mut state = self.lock();
        let tick = state.sample_tick;
        state.sample_tick += 1;
        tick.is_multiple_of(every)
    }

    /// Records one event; returns its sequence number. Evicts the oldest
    /// event (bumping `dropped`) when the ring is at capacity.
    pub fn emit(&self, lane: u64, ts_ms: u64, kind: &str, data: Json) -> u64 {
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        let entry = Entry::Rich(JournalEvent {
            seq,
            ts_ms,
            lane,
            kind: kind.to_owned(),
            data,
        });
        state.push_entry(entry, self.inner.cfg.capacity, &self.inner.dropped_counter);
        seq
    }

    /// Fast path for one wire attempt: records the
    /// [`kind::SOURCE_CALL_BEGIN`] / [`kind::SOURCE_CALL_END`] pair as a
    /// single compact ring slot with no payload allocation, expanding to
    /// the same event shapes as the general path at snapshot time. The
    /// pair takes two consecutive sequence numbers (begin is returned);
    /// this is sound because nothing else emits on the same lane between
    /// one attempt's begin and end.
    #[allow(clippy::too_many_arguments)]
    pub fn record_call(
        &self,
        lane: u64,
        begin_ts_ms: u64,
        end_ts_ms: u64,
        relation: &str,
        pattern: &str,
        attempt: u64,
        outcome: WireOutcome,
    ) -> u64 {
        let mut state = self.lock();
        let relation = state.names.intern(relation);
        let pattern = state.names.intern(pattern);
        self.push_call(state, lane, begin_ts_ms, end_ts_ms, relation, pattern, attempt, outcome)
    }

    /// [`Journal::record_call`] with pre-interned ids (see
    /// [`Journal::intern`]): the steady-state hot path, free of string
    /// hashing.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record_call_by_id(
        &self,
        lane: u64,
        begin_ts_ms: u64,
        end_ts_ms: u64,
        relation: u32,
        pattern: u32,
        attempt: u64,
        outcome: WireOutcome,
    ) -> u64 {
        let state = self.lock();
        self.push_call(state, lane, begin_ts_ms, end_ts_ms, relation, pattern, attempt, outcome)
    }

    /// Records a rich [`kind::SOURCE_CALL_BEGIN`] / [`kind::SOURCE_CALL_END`]
    /// pair (the replay tier, whose payloads carry bound inputs and row
    /// data) as **one** ring slot: concurrent lanes can never interleave
    /// an event inside the pair, and eviction keeps both halves or
    /// neither — the `dropped` accounting charges the pair as two logical
    /// events, like [`Journal::record_call`]. Returns the begin sequence
    /// number; the end event takes the next one.
    pub fn record_call_rich(
        &self,
        lane: u64,
        begin_ts_ms: u64,
        end_ts_ms: u64,
        begin_data: Json,
        end_data: Json,
    ) -> u64 {
        let mut state = self.lock();
        let begin_seq = state.next_seq;
        state.next_seq += 2;
        let begin = JournalEvent {
            seq: begin_seq,
            ts_ms: begin_ts_ms,
            lane,
            kind: kind::SOURCE_CALL_BEGIN.to_owned(),
            data: begin_data,
        };
        let end = JournalEvent {
            seq: begin_seq + 1,
            ts_ms: end_ts_ms,
            lane,
            kind: kind::SOURCE_CALL_END.to_owned(),
            data: end_data,
        };
        state.push_entry(
            Entry::RichPair(Box::new((begin, end))),
            self.inner.cfg.capacity,
            &self.inner.dropped_counter,
        );
        begin_seq
    }

    /// Fast path for a compact instant event (`payload` picks the kind
    /// and the snapshot-time shape).
    pub fn record_instant(
        &self,
        lane: u64,
        ts_ms: u64,
        relation: &str,
        payload: InstantPayload,
    ) -> u64 {
        let mut state = self.lock();
        let relation = state.names.intern(relation);
        self.push_instant(state, lane, ts_ms, relation, payload)
    }

    /// [`Journal::record_instant`] with a pre-interned relation id.
    #[inline]
    pub fn record_instant_by_id(
        &self,
        lane: u64,
        ts_ms: u64,
        relation: u32,
        payload: InstantPayload,
    ) -> u64 {
        let state = self.lock();
        self.push_instant(state, lane, ts_ms, relation, payload)
    }

    /// Interns a relation name or pattern word, returning a stable id for
    /// the `*_by_id` recorders. Idempotent; ids are private to this
    /// journal.
    pub fn intern(&self, s: &str) -> u32 {
        self.lock().names.intern(s)
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn push_call(
        &self,
        mut state: std::sync::MutexGuard<'_, JournalState>,
        lane: u64,
        begin_ts_ms: u64,
        end_ts_ms: u64,
        relation: u32,
        pattern: u32,
        attempt: u64,
        outcome: WireOutcome,
    ) -> u64 {
        let begin_seq = state.next_seq;
        state.next_seq += 2;
        let entry = Entry::Call(CallEntry {
            begin_seq,
            lane,
            begin_ts_ms,
            end_ts_ms,
            relation,
            pattern,
            attempt,
            outcome,
        });
        state.push_entry(entry, self.inner.cfg.capacity, &self.inner.dropped_counter);
        begin_seq
    }

    #[inline]
    fn push_instant(
        &self,
        mut state: std::sync::MutexGuard<'_, JournalState>,
        lane: u64,
        ts_ms: u64,
        relation: u32,
        payload: InstantPayload,
    ) -> u64 {
        let seq = state.next_seq;
        state.next_seq += 1;
        let (kind, a, b) = payload.encode();
        let entry = Entry::Instant(InstantEntry {
            seq,
            lane,
            ts_ms,
            kind,
            relation,
            a,
            b,
        });
        state.push_entry(entry, self.inner.cfg.capacity, &self.inner.dropped_counter);
        seq
    }

    /// Attaches run metadata (query name, retry policy, fault config …)
    /// carried by the snapshot so a replay can reconstruct the setup.
    pub fn set_meta(&self, meta: Json) {
        self.lock().meta = Some(meta);
    }

    /// Merges `pairs` into the current metadata object (creating it if
    /// absent, replacing values for repeated keys).
    pub fn merge_meta(&self, pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) {
        let mut state = self.lock();
        let mut obj = match state.meta.take() {
            Some(Json::Obj(pairs)) => pairs,
            _ => Vec::new(),
        };
        for (k, v) in pairs {
            let k = k.into();
            match obj.iter_mut().find(|(key, _)| *key == k) {
                Some(slot) => slot.1 = v,
                None => obj.push((k, v)),
            }
        }
        state.meta = Some(Json::Obj(obj));
    }

    /// Total events ever emitted (recorded + dropped).
    pub fn emitted(&self) -> u64 {
        self.lock().next_seq
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// A frozen copy of the ring plus bookkeeping. Compact entries are
    /// expanded here into the same [`JournalEvent`] shapes the general
    /// [`Journal::emit`] path produces, so consumers see one format.
    pub fn snapshot(&self) -> JournalSnapshot {
        let state = self.lock();
        let mut events = Vec::with_capacity(state.len_events as usize);
        for entry in &state.entries {
            match entry {
                Entry::Rich(event) => events.push(event.clone()),
                Entry::RichPair(pair) => {
                    events.push(pair.0.clone());
                    events.push(pair.1.clone());
                }
                Entry::Call(call) => expand_call(call, &state.names, &mut events),
                Entry::Instant(instant) => events.push(expand_instant(instant, &state.names)),
            }
        }
        JournalSnapshot {
            meta: state.meta.clone().unwrap_or(Json::Null),
            emitted: state.next_seq,
            dropped: state.dropped,
            events,
        }
    }

    #[inline]
    fn lock(&self) -> std::sync::MutexGuard<'_, JournalState> {
        self.inner.state.lock().expect("journal not poisoned")
    }
}

/// Expands one compact call pair into the begin/end [`JournalEvent`]s the
/// general emit path would have produced (minus `inputs`/`rows_data`,
/// which only the row-capturing tier records — and that tier uses the
/// general path).
fn expand_call(call: &CallEntry, names: &Interner, out: &mut Vec<JournalEvent>) {
    let relation = names.get(call.relation);
    let pattern = names.get(call.pattern);
    out.push(JournalEvent {
        seq: call.begin_seq,
        ts_ms: call.begin_ts_ms,
        lane: call.lane,
        kind: kind::SOURCE_CALL_BEGIN.to_owned(),
        data: Json::obj([
            ("label", Json::Str(format!("{relation}^{pattern}"))),
            ("relation", Json::str(relation)),
            ("pattern", Json::str(pattern)),
            ("attempt", Json::num(call.attempt)),
        ]),
    });
    let data = match call.outcome {
        WireOutcome::Ok { rows, latency_ms } => Json::obj([
            ("relation", Json::str(relation)),
            ("ok", Json::Bool(true)),
            ("rows", Json::num(rows)),
            ("latency_ms", Json::num(latency_ms)),
            ("attempt", Json::num(call.attempt)),
        ]),
        WireOutcome::Unavailable { latency_ms } => Json::obj([
            ("relation", Json::str(relation)),
            ("ok", Json::Bool(false)),
            ("fault", Json::str("unavailable")),
            ("latency_ms", Json::num(latency_ms)),
            ("attempt", Json::num(call.attempt)),
        ]),
        WireOutcome::Timeout {
            latency_ms,
            timeout_ms,
        } => Json::obj([
            ("relation", Json::str(relation)),
            ("ok", Json::Bool(false)),
            ("fault", Json::str("timeout")),
            ("latency_ms", Json::num(latency_ms)),
            ("attempt", Json::num(call.attempt)),
            ("timeout_ms", Json::num(timeout_ms)),
        ]),
    };
    out.push(JournalEvent {
        seq: call.begin_seq + 1,
        ts_ms: call.end_ts_ms,
        lane: call.lane,
        kind: kind::SOURCE_CALL_END.to_owned(),
        data,
    });
}

/// Expands one compact instant into the [`JournalEvent`] the general emit
/// path would have produced, decoding the `(a, b)` slots per kind.
fn expand_instant(instant: &InstantEntry, names: &Interner) -> JournalEvent {
    let relation = names.get(instant.relation);
    let data = match instant.kind {
        kind::MEMBERSHIP => Json::obj([
            ("relation", Json::str(relation)),
            ("present", Json::Bool(instant.a != 0)),
        ]),
        kind::CACHE_HIT => {
            let mut pairs = vec![
                ("relation".to_owned(), Json::str(relation)),
                ("rows".to_owned(), Json::num(instant.a)),
            ];
            if instant.b != 0 {
                pairs.push(("membership".to_owned(), Json::Bool(true)));
            }
            Json::Obj(pairs)
        }
        kind::RETRY => {
            let mut pairs = vec![
                ("relation".to_owned(), Json::str(relation)),
                ("attempt".to_owned(), Json::num(instant.a)),
            ];
            if instant.b != 0 {
                pairs.push(("backoff_ms".to_owned(), Json::num(instant.b)));
            }
            Json::Obj(pairs)
        }
        // FAULT and TIMEOUT share one shape.
        _ => Json::obj([
            ("relation", Json::str(relation)),
            ("latency_ms", Json::num(instant.a)),
            ("attempt", Json::num(instant.b)),
        ]),
    };
    JournalEvent {
        seq: instant.seq,
        ts_ms: instant.ts_ms,
        lane: instant.lane,
        kind: instant.kind.to_owned(),
        data,
    }
}

/// Summary statistics returned by a successful
/// [`JournalSnapshot::validate`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalCheck {
    /// Retained events.
    pub events: usize,
    /// `*.begin` events among them.
    pub begins: usize,
    /// `*.end` events among them.
    pub ends: usize,
    /// Distinct lanes observed.
    pub lanes: usize,
}

/// A frozen copy of one [`Journal`]: run metadata, bookkeeping, and the
/// retained events in sequence order.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalSnapshot {
    /// Run metadata (`Json::Null` when none was set).
    pub meta: Json,
    /// Total events ever emitted.
    pub emitted: u64,
    /// Events evicted from the ring.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<JournalEvent>,
}

impl JournalSnapshot {
    /// Events recorded in the snapshot (`emitted - dropped`).
    pub fn recorded(&self) -> u64 {
        self.events.len() as u64
    }

    /// The retained events of one kind.
    pub fn events_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a JournalEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Serialises to the standalone journal document shape:
    /// `{"meta", "emitted", "dropped", "events"}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("meta", self.meta.clone()),
            ("emitted", Json::num(self.emitted)),
            ("dropped", Json::num(self.dropped)),
            (
                "events",
                Json::Arr(self.events.iter().map(JournalEvent::to_json).collect()),
            ),
        ])
    }

    /// Parses a document produced by [`JournalSnapshot::to_json`].
    pub fn from_json(doc: &Json) -> Result<JournalSnapshot, String> {
        let events = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("journal document missing \"events\" array")?
            .iter()
            .map(JournalEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let number = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("journal document missing numeric {key:?}"))
        };
        Ok(JournalSnapshot {
            meta: doc.get("meta").cloned().unwrap_or(Json::Null),
            emitted: number("emitted")?,
            dropped: number("dropped")?,
            events,
        })
    }

    /// Checks the journal invariants: strictly monotone sequence numbers,
    /// `recorded + dropped == emitted`, and per-lane begin/end balance
    /// (unmatched *ends* are tolerated only when events were dropped —
    /// their begins may have been evicted; unmatched *begins* never are).
    pub fn validate(&self) -> Result<JournalCheck, String> {
        if self.recorded() + self.dropped != self.emitted {
            return Err(format!(
                "accounting broken: recorded {} + dropped {} != emitted {}",
                self.recorded(),
                self.dropped,
                self.emitted
            ));
        }
        let mut last_seq: Option<u64> = None;
        let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> =
            std::collections::BTreeMap::new();
        let mut check = JournalCheck::default();
        for event in &self.events {
            if let Some(prev) = last_seq {
                if event.seq <= prev {
                    return Err(format!(
                        "sequence not strictly monotone: {} after {}",
                        event.seq, prev
                    ));
                }
            }
            last_seq = Some(event.seq);
            let stack = stacks.entry(event.lane).or_default();
            if event.is_begin() {
                check.begins += 1;
                stack.push(&event.kind);
            } else if event.is_end() {
                check.ends += 1;
                let opener = event.kind.strip_suffix(END_SUFFIX).expect("is_end");
                match stack.pop() {
                    Some(top) if top.strip_suffix(BEGIN_SUFFIX) == Some(opener) => {}
                    Some(top) => {
                        return Err(format!(
                            "lane {}: {:?} closes {:?} (seq {})",
                            event.lane, event.kind, top, event.seq
                        ));
                    }
                    None if self.dropped > 0 => {} // begin evicted from the ring
                    None => {
                        return Err(format!(
                            "lane {}: {:?} without a begin (seq {})",
                            event.lane, event.kind, event.seq
                        ));
                    }
                }
            }
        }
        for (lane, stack) in &stacks {
            if !stack.is_empty() {
                return Err(format!(
                    "lane {lane}: {} unmatched begin event(s), first {:?}",
                    stack.len(),
                    stack[0]
                ));
            }
        }
        check.events = self.events.len();
        check.lanes = stacks.len();
        Ok(check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn journal(capacity: usize) -> Journal {
        Journal::new(
            JournalConfig {
                capacity,
                ..JournalConfig::light()
            },
            Counter::detached(),
        )
    }

    #[test]
    fn sequence_is_strictly_monotone_and_validates() {
        let j = journal(16);
        j.emit(0, 0, kind::SOURCE_CALL_BEGIN, Json::obj([("label", Json::str("B^oi"))]));
        j.emit(0, 3, kind::SOURCE_CALL_END, Json::obj([("ok", Json::Bool(true))]));
        j.emit(1, 1, kind::MEMBERSHIP, Json::Null);
        let snap = j.snapshot();
        let check = snap.validate().expect("valid journal");
        assert_eq!(check.events, 3);
        assert_eq!(check.begins, 1);
        assert_eq!(check.ends, 1);
        assert_eq!(check.lanes, 2);
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[2].seq, 2);
    }

    #[test]
    fn ring_overflow_counts_exactly_the_evicted_events() {
        let dropped = Counter::detached();
        let j = Journal::new(
            JournalConfig {
                capacity: 4,
                ..JournalConfig::light()
            },
            dropped.clone(),
        );
        for i in 0..10 {
            j.emit(0, i, kind::MEMBERSHIP, Json::num(i));
        }
        let snap = j.snapshot();
        assert_eq!(snap.events.len(), 4, "capacity bound honored");
        assert_eq!(snap.dropped, 6, "exactly the evicted events");
        assert_eq!(dropped.get(), 6, "mirrored to the counter");
        assert_eq!(snap.emitted, 10);
        assert_eq!(snap.events[0].seq, 6, "oldest retained is the 7th");
        snap.validate().expect("still valid after eviction");
    }

    #[test]
    fn truncated_ring_tolerates_orphan_ends_but_not_orphan_begins() {
        let j = journal(2);
        j.emit(0, 0, kind::BATCH_BEGIN, Json::Null);
        j.emit(0, 1, kind::MEMBERSHIP, Json::Null);
        j.emit(0, 2, kind::MEMBERSHIP, Json::Null);
        j.emit(0, 3, kind::BATCH_END, Json::Null);
        let snap = j.snapshot();
        assert!(snap.dropped > 0);
        snap.validate().expect("orphan end is fine once events dropped");

        let j = journal(16);
        j.emit(0, 0, kind::BATCH_END, Json::Null);
        assert!(j.snapshot().validate().is_err(), "end without begin");
        let j = journal(16);
        j.emit(0, 0, kind::BATCH_BEGIN, Json::Null);
        assert!(j.snapshot().validate().is_err(), "begin without end");
    }

    #[test]
    fn mismatched_pairs_are_rejected() {
        let j = journal(16);
        j.emit(0, 0, kind::BATCH_BEGIN, Json::Null);
        j.emit(0, 1, kind::SOURCE_CALL_END, Json::Null);
        assert!(j.snapshot().validate().is_err());
    }

    #[test]
    fn accounting_mismatch_is_rejected() {
        let j = journal(16);
        j.emit(0, 0, kind::MEMBERSHIP, Json::Null);
        let mut snap = j.snapshot();
        snap.emitted = 5;
        assert!(snap.validate().unwrap_err().contains("accounting"));
    }

    #[test]
    fn sampling_thins_calls_pairwise() {
        let j = Journal::new(
            JournalConfig {
                sample_every: 3,
                ..JournalConfig::light()
            },
            Counter::detached(),
        );
        let mut sampled = 0;
        for i in 0..9 {
            if j.should_sample_call() {
                sampled += 1;
                j.emit(0, i, kind::SOURCE_CALL_BEGIN, Json::Null);
                j.emit(0, i, kind::SOURCE_CALL_END, Json::Null);
            }
        }
        assert_eq!(sampled, 3, "every 3rd call records");
        let snap = j.snapshot();
        assert_eq!(snap.events.len(), 6);
        snap.validate().expect("sampled journal stays balanced");
    }

    /// Regression pin: `sample_every: 0` must behave exactly like 1
    /// (record everything), not divide or modulo by zero. The CLI rejects
    /// `--journal-sample 0` up front, but the library clamps defensively
    /// for direct construction — both halves are pinned so neither guard
    /// is "cleaned up" as redundant.
    #[test]
    fn sample_every_zero_is_clamped_to_record_all() {
        let j = Journal::new(
            JournalConfig {
                sample_every: 0,
                ..JournalConfig::light()
            },
            Counter::detached(),
        );
        for i in 0..5 {
            assert!(j.should_sample_call(), "call {i} must record under clamp");
            j.emit(0, i, kind::SOURCE_CALL_BEGIN, Json::Null);
            j.emit(0, i, kind::SOURCE_CALL_END, Json::Null);
        }
        let snap = j.snapshot();
        assert_eq!(snap.events.len(), 10, "every call recorded");
        snap.validate().expect("clamped journal stays balanced");
        // Zero capacity is clamped the same way.
        let j = Journal::new(
            JournalConfig {
                capacity: 0,
                ..JournalConfig::light()
            },
            Counter::detached(),
        );
        j.emit(0, 0, kind::SOURCE_CALL_BEGIN, Json::Null);
        assert_eq!(j.snapshot().events.len(), 1);
    }

    #[test]
    fn json_round_trip_through_in_repo_parser() {
        let j = journal(16);
        j.set_meta(Json::obj([("query", Json::str("Q"))]));
        j.emit(
            0,
            2,
            kind::SOURCE_CALL_BEGIN,
            Json::obj([
                ("relation", Json::str("B")),
                ("inputs", Json::Arr(vec![Json::num(1), Json::Null])),
            ]),
        );
        j.emit(0, 5, kind::SOURCE_CALL_END, Json::obj([("ok", Json::Bool(true))]));
        let snap = j.snapshot();
        let text = snap.to_json().to_pretty();
        let parsed = json::parse(&text).expect("parses");
        let back = JournalSnapshot::from_json(&parsed).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(back.meta.get("query").and_then(Json::as_str), Some("Q"));
    }

    #[test]
    fn compact_entries_expand_to_the_general_path_shapes() {
        // Mirror the same run through the compact fast path and the
        // general emit path; the snapshots must be indistinguishable.
        let fast = journal(64);
        let rich = journal(64);

        fast.record_call(0, 2, 5, "B", "oi", 1, WireOutcome::Ok { rows: 7, latency_ms: 3 });
        rich.emit(
            0,
            2,
            kind::SOURCE_CALL_BEGIN,
            Json::obj([
                ("label", Json::str("B^oi")),
                ("relation", Json::str("B")),
                ("pattern", Json::str("oi")),
                ("attempt", Json::num(1)),
            ]),
        );
        rich.emit(
            0,
            5,
            kind::SOURCE_CALL_END,
            Json::obj([
                ("relation", Json::str("B")),
                ("ok", Json::Bool(true)),
                ("rows", Json::num(7)),
                ("latency_ms", Json::num(3)),
                ("attempt", Json::num(1)),
            ]),
        );

        fast.record_call(
            1,
            5,
            9,
            "C",
            "ooo",
            2,
            WireOutcome::Timeout { latency_ms: 11, timeout_ms: 4 },
        );
        rich.emit(
            1,
            5,
            kind::SOURCE_CALL_BEGIN,
            Json::obj([
                ("label", Json::str("C^ooo")),
                ("relation", Json::str("C")),
                ("pattern", Json::str("ooo")),
                ("attempt", Json::num(2)),
            ]),
        );
        rich.emit(
            1,
            9,
            kind::SOURCE_CALL_END,
            Json::obj([
                ("relation", Json::str("C")),
                ("ok", Json::Bool(false)),
                ("fault", Json::str("timeout")),
                ("latency_ms", Json::num(11)),
                ("attempt", Json::num(2)),
                ("timeout_ms", Json::num(4)),
            ]),
        );

        fast.record_instant(1, 9, "C", InstantPayload::Timeout { latency_ms: 11, attempt: 2 });
        rich.emit(
            1,
            9,
            kind::TIMEOUT,
            Json::obj([
                ("relation", Json::str("C")),
                ("latency_ms", Json::num(11)),
                ("attempt", Json::num(2)),
            ]),
        );

        fast.record_instant(0, 9, "B", InstantPayload::Membership { present: true });
        rich.emit(
            0,
            9,
            kind::MEMBERSHIP,
            Json::obj([("relation", Json::str("B")), ("present", Json::Bool(true))]),
        );

        fast.record_instant(0, 9, "B", InstantPayload::CacheHit { rows: 7, membership: false });
        rich.emit(
            0,
            9,
            kind::CACHE_HIT,
            Json::obj([("relation", Json::str("B")), ("rows", Json::num(7))]),
        );

        fast.record_instant(0, 9, "B", InstantPayload::CacheHit { rows: 7, membership: true });
        rich.emit(
            0,
            9,
            kind::CACHE_HIT,
            Json::obj([
                ("relation", Json::str("B")),
                ("rows", Json::num(7)),
                ("membership", Json::Bool(true)),
            ]),
        );

        fast.record_instant(0, 10, "B", InstantPayload::Retry { attempt: 2, backoff_ms: 0 });
        rich.emit(
            0,
            10,
            kind::RETRY,
            Json::obj([("relation", Json::str("B")), ("attempt", Json::num(2))]),
        );

        fast.record_instant(0, 11, "B", InstantPayload::Retry { attempt: 3, backoff_ms: 16 });
        rich.emit(
            0,
            11,
            kind::RETRY,
            Json::obj([
                ("relation", Json::str("B")),
                ("attempt", Json::num(3)),
                ("backoff_ms", Json::num(16)),
            ]),
        );

        fast.record_instant(0, 10, "B", InstantPayload::Fault { latency_ms: 6, attempt: 2 });
        rich.emit(
            0,
            10,
            kind::FAULT,
            Json::obj([
                ("relation", Json::str("B")),
                ("latency_ms", Json::num(6)),
                ("attempt", Json::num(2)),
            ]),
        );

        let fast_snap = fast.snapshot();
        assert_eq!(fast_snap, rich.snapshot());
        fast_snap.validate().expect("compact journal validates");
    }

    #[test]
    fn pre_interned_ids_record_the_same_events() {
        let by_str = journal(64);
        let by_id = journal(64);
        let rel = by_id.intern("B");
        let pat = by_id.intern("oi");
        assert_eq!(by_id.intern("B"), rel, "interning is idempotent");

        let outcome = WireOutcome::Ok { rows: 3, latency_ms: 2 };
        by_str.record_call(0, 1, 3, "B", "oi", 1, outcome);
        by_id.record_call_by_id(0, 1, 3, rel, pat, 1, outcome);
        let probe = InstantPayload::Membership { present: false };
        by_str.record_instant(0, 3, "B", probe);
        by_id.record_instant_by_id(0, 3, rel, probe);

        assert_eq!(by_str.snapshot(), by_id.snapshot());
    }

    #[test]
    fn call_pair_eviction_accounts_two_events() {
        let dropped = Counter::detached();
        let j = Journal::new(
            JournalConfig {
                capacity: 4,
                ..JournalConfig::light()
            },
            dropped.clone(),
        );
        for i in 0..4u64 {
            j.record_call(0, i, i + 1, "R", "o", 1, WireOutcome::Ok { rows: 1, latency_ms: 1 });
        }
        let snap = j.snapshot();
        assert_eq!(snap.emitted, 8, "each call pair takes two seqs");
        assert_eq!(snap.events.len(), 4, "two retained pairs fill the ring");
        assert_eq!(snap.dropped, 4, "two evicted pairs, counted as events");
        assert_eq!(dropped.get(), 4, "mirrored to the counter");
        assert_eq!(snap.events[0].seq, 4, "oldest retained is the third pair");
        snap.validate().expect("whole pairs evict together, so balance holds");
    }

    #[test]
    fn merge_meta_overwrites_and_appends() {
        let j = journal(4);
        j.merge_meta([("a", Json::num(1))]);
        j.merge_meta([("a", Json::num(2)), ("b", Json::str("x"))]);
        let meta = j.snapshot().meta;
        assert_eq!(meta.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(meta.get("b").and_then(Json::as_str), Some("x"));
    }
}
