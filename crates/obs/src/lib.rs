//! `lap-obs`: unified tracing + metrics for the plan/answer pipeline.
//!
//! The crate has no dependencies (workspace policy, DESIGN.md §3) and three
//! layers:
//!
//! * **Instruments** ([`Counter`], [`Histogram`], [`MetricsRegistry`]) —
//!   named counters and log₂-bucket histograms, handed out once as cheap
//!   handles and bumped with relaxed atomics on the hot path.
//! * **Spans** ([`SpanNode`], [`SpanGuard`]) — phase timing with
//!   parent/child nesting covering parse → ANSWERABLE → PLAN\* → FEASIBLE →
//!   ANSWER\* → mediator unfolding, rendered as an `EXPLAIN ANALYZE`-style
//!   tree.
//! * **Sinks** ([`NoopSink`], [`TextSink`], [`JsonSink`]) — exporters over a
//!   frozen [`Snapshot`], including a hand-rolled [`json`] writer/parser.
//! * **Flight recorder** ([`Journal`], [`JournalSnapshot`]) — a bounded
//!   ring buffer of structured, virtual-clock-stamped events with strictly
//!   monotone sequence numbers, exportable as a [`chrome`] trace for
//!   Perfetto, replayable through the engine's `ReplaySource`, and
//!   summarisable via [`render_report`].
//!
//! Components receive a [`Recorder`] handle. The default,
//! [`Recorder::disabled`], hands out *detached* instruments — they still
//! count locally (so views like `CallStats` keep working) but register
//! nowhere and spans are inert, so the no-op configuration adds no
//! observable overhead.
//!
//! ```
//! use lap_obs::{Recorder, render_text};
//!
//! let rec = Recorder::with_tracing();
//! {
//!     let _pipeline = rec.span("pipeline");
//!     let _plan = rec.span("plan*");
//!     rec.counter("source.calls").incr();
//! }
//! let snapshot = rec.snapshot();
//! assert_eq!(snapshot.counter("source.calls"), 1);
//! assert!(render_text(&snapshot).contains("plan*"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod feedback;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod span;

pub use chrome::{chrome_trace, validate_chrome_trace};
pub use feedback::{
    DriftFlag, Expectation, FeedbackStore, FoldCursor, SourceProfile, DRIFT_FACTOR, HEALTH_ALPHA,
};
pub use journal::{
    InstantPayload, Journal, JournalCheck, JournalConfig, JournalEvent, JournalSnapshot,
    WireOutcome,
};
pub use json::{Json, JsonError};
pub use metrics::{
    bucket_bound, bucket_index, Counter, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{Recorder, Snapshot};
pub use report::render_report;
pub use sink::{render_text, snapshot_to_json, JsonSink, NoopSink, Sink, TextSink};
pub use span::{SpanGuard, SpanNode};
