//! Pluggable snapshot exporters.
//!
//! A [`Sink`] consumes a finished [`Snapshot`]. Three ship with the crate:
//! [`NoopSink`] (discards everything — the compiled-away default),
//! [`TextSink`] (human-readable span tree + metric listing, the `--trace`
//! renderer), and [`JsonSink`] (machine-readable document via the in-crate
//! [`Json`] writer, the `--metrics-json` exporter).

use crate::json::Json;
use crate::metrics::HistogramSnapshot;
use crate::recorder::Snapshot;
use crate::span::SpanNode;
use std::io::{self, Write};
use std::time::Duration;

/// Something that can consume a finished snapshot.
pub trait Sink {
    /// Exports `snapshot`. Called once per recording session.
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()>;
}

/// Discards the snapshot. The degenerate sink for pipelines that record
/// nothing; `export` is trivially inlined away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn export(&mut self, _snapshot: &Snapshot) -> io::Result<()> {
        Ok(())
    }
}

fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

fn render_span(out: &mut String, span: &SpanNode, prefix: &str, last: bool, root: bool) {
    if root {
        out.push_str(&format!("{} [{}]\n", span.name, fmt_duration(span.elapsed)));
    } else {
        let branch = if last { "`-- " } else { "|-- " };
        out.push_str(&format!(
            "{prefix}{branch}{} [{}]\n",
            span.name,
            fmt_duration(span.elapsed)
        ));
    }
    let child_prefix = if root {
        String::new()
    } else {
        format!("{prefix}{}", if last { "    " } else { "|   " })
    };
    for (i, child) in span.children.iter().enumerate() {
        render_span(out, child, &child_prefix, i + 1 == span.children.len(), false);
    }
}

/// Renders a snapshot as human-readable text: an `EXPLAIN ANALYZE`-style
/// span tree followed by counters and histogram summaries.
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        out.push_str("spans:\n");
        for root in &snapshot.spans {
            render_span(&mut out, root, "", true, true);
        }
    }
    if !snapshot.metrics.counters.is_empty() {
        out.push_str("counters:\n");
        let width = snapshot
            .metrics
            .counters
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (name, value) in &snapshot.metrics.counters {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
    }
    if !snapshot.metrics.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snapshot.metrics.histograms {
            out.push_str(&format!(
                "  {name}: count={} sum={} max={} mean={:.2} p50={:.1} p95={:.1} p99={:.1}\n",
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
            for (label, count) in h.nonzero_buckets() {
                out.push_str(&format!("    [{label}] {count}\n"));
            }
        }
    }
    if out.is_empty() {
        out.push_str("(empty snapshot)\n");
    }
    out
}

/// Writes [`render_text`] output to any writer.
#[derive(Debug)]
pub struct TextSink<W: Write> {
    writer: W,
}

impl<W: Write> TextSink<W> {
    /// A text sink over `writer`.
    pub fn new(writer: W) -> TextSink<W> {
        TextSink { writer }
    }
}

impl<W: Write> Sink for TextSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.writer.write_all(render_text(snapshot).as_bytes())
    }
}

fn span_to_json(span: &SpanNode) -> Json {
    Json::obj([
        ("name", Json::str(&span.name)),
        ("elapsed_us", Json::num(span.elapsed.as_micros() as u64)),
        (
            "children",
            Json::Arr(span.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::num(h.count)),
        ("sum", Json::num(h.sum)),
        ("max", Json::num(h.max)),
        ("p50", Json::Num(h.p50())),
        ("p95", Json::Num(h.p95())),
        ("p99", Json::Num(h.p99())),
        (
            "buckets",
            Json::Obj(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(label, count)| (label, Json::num(count)))
                    .collect(),
            ),
        ),
    ])
}

/// Converts a snapshot to its JSON document: an object with the required
/// keys `counters`, `histograms`, and `spans`.
pub fn snapshot_to_json(snapshot: &Snapshot) -> Json {
    Json::obj([
        ("counters", Json::counters(&snapshot.metrics.counters)),
        (
            "histograms",
            Json::Obj(
                snapshot
                    .metrics
                    .histograms
                    .iter()
                    .map(|(name, h)| (name.clone(), histogram_to_json(h)))
                    .collect(),
            ),
        ),
        (
            "spans",
            Json::Arr(snapshot.spans.iter().map(span_to_json).collect()),
        ),
    ])
}

/// Writes the snapshot as a pretty-printed JSON document.
#[derive(Debug)]
pub struct JsonSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonSink<W> {
    /// A JSON sink over `writer`.
    pub fn new(writer: W) -> JsonSink<W> {
        JsonSink { writer }
    }
}

impl<W: Write> Sink for JsonSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.writer
            .write_all(snapshot_to_json(snapshot).to_pretty().as_bytes())?;
        self.writer.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::with_tracing();
        {
            let _root = rec.span("pipeline");
            let _a = rec.span("parse");
            _a.end();
            let _b = rec.span("plan*");
        }
        rec.counter("source.calls").add(3);
        rec.histogram("source.rows_per_call").record(5);
        rec.snapshot()
    }

    #[test]
    fn text_renderer_shows_tree_and_metrics() {
        let text = render_text(&sample_snapshot());
        assert!(text.contains("pipeline ["), "{text}");
        assert!(text.contains("|-- parse ["), "{text}");
        assert!(text.contains("`-- plan* ["), "{text}");
        assert!(text.contains("source.calls"), "{text}");
        assert!(text.contains("[4-7] 1"), "{text}");
    }

    #[test]
    fn json_sink_emits_parseable_document_with_required_keys() {
        let mut buf = Vec::new();
        JsonSink::new(&mut buf).export(&sample_snapshot()).unwrap();
        let doc = json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        for key in ["counters", "histograms", "spans"] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("source.calls")).and_then(Json::as_u64),
            Some(3)
        );
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("pipeline"));
        assert_eq!(
            spans[0].get("children").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn sinks_surface_percentile_estimates() {
        let rec = Recorder::new();
        let h = rec.histogram("latency_ms");
        for v in [1u64, 2, 4, 8, 100] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let text = render_text(&snap);
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("p99="), "{text}");
        let doc = snapshot_to_json(&snap);
        let hist = doc.get("histograms").and_then(|h| h.get("latency_ms")).unwrap();
        for key in ["p50", "p95", "p99"] {
            assert!(hist.get(key).and_then(Json::as_f64).is_some(), "missing {key}");
        }
        assert!(hist.get("p99").and_then(Json::as_f64).unwrap() <= 100.0);
    }

    #[test]
    fn noop_sink_accepts_anything() {
        NoopSink.export(&sample_snapshot()).unwrap();
        NoopSink.export(&Snapshot::default()).unwrap();
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(render_text(&Snapshot::default()), "(empty snapshot)\n");
    }
}
