//! Named counters and log₂-bucket histograms.
//!
//! Instruments are *handles*: a component asks the registry once for a
//! [`Counter`] or [`Histogram`] by name (at construction time) and then
//! increments through the handle on the hot path — one relaxed atomic add,
//! no name lookup, no lock. Handles obtained from a
//! [`Recorder::disabled`](crate::Recorder::disabled) recorder are
//! *detached*: they still count (so per-component views such as
//! `CallStats` keep working) but belong to no registry and appear in no
//! snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone named counter. Cloning yields a handle to the *same*
/// underlying value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values `v` with `floor(log2(v)) = i - 1`, i.e. `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> HistogramInner {
        HistogramInner {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucket histogram of `u64` samples. Cloning yields a handle to
/// the same underlying distribution.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

/// The bucket index a value falls into (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        value.ilog2() as usize + 1
    }
}

/// The exclusive upper bound of bucket `i` (`None` for the last bucket).
pub fn bucket_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(1),
        _ if i < HISTOGRAM_BUCKETS - 1 => Some(1u64 << i),
        _ => None,
    }
}

impl Histogram {
    /// A detached histogram (not registered anywhere).
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        HistogramSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A frozen copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), linearly interpolated
    /// inside the log₂ bucket where the target rank falls. Bucket 0 is
    /// exactly the value 0; the unbounded last bucket uses `max` as its
    /// upper edge. The result is clamped to `[0, max]`, so the estimate
    /// is never off by more than the width of one bucket.
    ///
    /// Degenerate distributions are exact, not bucket artifacts: an empty
    /// histogram answers 0.0 at every quantile, a single sample answers
    /// that sample, and an all-equal distribution answers the common value
    /// (both recoverable from `sum`/`count`/`max` alone).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 {
            return self.sum as f64;
        }
        if self.sum == self.count.saturating_mul(self.max) {
            return self.max as f64;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                let hi = match bucket_bound(i) {
                    Some(b) => (b as f64).min(self.max as f64 + 1.0),
                    None => self.max as f64 + 1.0,
                };
                let f = (target - cum as f64) / n as f64;
                return (lo + f * (hi - lo)).min(self.max as f64);
            }
            cum = next;
        }
        self.max as f64
    }

    /// Median estimate ([`HistogramSnapshot::percentile`] at 0.50).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// The non-empty buckets as `(label, count)` rows, labels like
    /// `"0"`, `"1"`, `"2-3"`, `"4-7"`.
    pub fn nonzero_buckets(&self) -> Vec<(String, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let label = match i {
                    0 => "0".to_owned(),
                    1 => "1".to_owned(),
                    _ => match bucket_bound(i) {
                        Some(hi) => format!("{}-{}", 1u64 << (i - 1), hi - 1),
                        None => format!("{}+", 1u64 << (i - 1)),
                    },
                };
                (label, c)
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named instruments. Cheap to clone (shared interior); all
/// methods take `&self` and are thread-safe.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use. Repeated calls with
    /// the same name return handles to the same value.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry not poisoned");
        inner
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry not poisoned");
        inner
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// A frozen copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry not poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → distribution.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(reg.snapshot().counter("x"), 4);
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn detached_counters_count_but_do_not_register() {
        let reg = MetricsRegistry::new();
        let c = Counter::detached();
        c.add(7);
        assert_eq!(c.get(), 7);
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 1);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate_within_log2_buckets() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Exact p50 is 500; the estimate must land inside the crossing
        // bucket [256, 512) near the true value.
        assert!((s.p50() - 500.0).abs() < 16.0, "p50 = {}", s.p50());
        assert!((s.p95() - 950.0).abs() < 64.0, "p95 = {}", s.p95());
        assert!(s.p99() <= 1000.0 && s.p99() > 950.0, "p99 = {}", s.p99());
        assert_eq!(s.percentile(1.0), 1000.0, "q=1 clamps to max");

        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0.0);

        let zeros = Histogram::detached();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.snapshot().p99(), 0.0, "bucket 0 is exactly 0");

        let one = Histogram::detached();
        one.record(7);
        let s = one.snapshot();
        assert!(s.p50() >= 4.0 && s.p50() <= 7.0, "single-sample clamp: {}", s.p50());
        assert!(s.percentile(1.0) <= s.max as f64);
    }

    /// Satellite pin: degenerate histograms must answer exact values, not
    /// bucket-boundary artifacts.
    #[test]
    fn percentile_edge_cases_are_exact() {
        // Empty: every quantile is a defined 0.0.
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), 0.0, "empty at q={q}");
        }
        // Single sample: the answer is the sample itself, not the lower
        // edge of its log₂ bucket (7 lives in [4, 8), the old interpolation
        // could answer 4.x).
        let one = Histogram::detached();
        one.record(7);
        let s = one.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 7.0, "single sample at q={q}");
        }
        // A single zero sample stays 0.
        let zero = Histogram::detached();
        zero.record(0);
        assert_eq!(zero.snapshot().p95(), 0.0);
        // All-equal samples: the common value, at every quantile.
        let flat = Histogram::detached();
        for _ in 0..10 {
            flat.record(20);
        }
        let s = flat.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 20.0, "all-equal at q={q}");
        }
        // Monotonicity survives the special cases on a mixed distribution.
        let mixed = Histogram::detached();
        for v in [1u64, 3, 3, 9, 80, 81] {
            mixed.record(v);
        }
        let s = mixed.snapshot();
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99(), "p50={} p95={} p99={}", s.p50(), s.p95(), s.p99());
        assert!(s.p99() <= s.max as f64);
    }

    #[test]
    fn bucket_labels_render() {
        let h = Histogram::detached();
        h.record(0);
        h.record(5);
        let rows = h.snapshot().nonzero_buckets();
        assert_eq!(rows[0].0, "0");
        assert_eq!(rows[1].0, "4-7");
    }

    #[test]
    fn snapshot_orders_names() {
        let reg = MetricsRegistry::new();
        reg.counter("b").incr();
        reg.counter("a").incr();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
