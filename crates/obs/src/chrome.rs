//! Chrome trace-event JSON export for journal snapshots.
//!
//! Converts a [`JournalSnapshot`] into the Trace Event Format understood
//! by Perfetto and `chrome://tracing`: `*.begin`/`*.end` pairs become
//! duration events (`ph: "B"` / `ph: "E"`), everything else becomes an
//! instant event (`ph: "i"`). Lanes map to thread ids, so the main
//! execution and each parallel union worker render as separate tracks.
//!
//! The engine runs on a *virtual* clock with millisecond resolution, so
//! many events share a timestamp. Trace viewers require strictly ordered,
//! microsecond-resolution timestamps per track; we export
//! `ts = ts_ms * 1000 + seq` — order-preserving (sequence numbers are
//! strictly monotone) and off by less than 1ms as long as fewer than 1000
//! events share a wall millisecond, which a capacity-bounded journal
//! satisfies in practice.

use crate::journal::{JournalSnapshot, BEGIN_SUFFIX, END_SUFFIX};
use crate::json::Json;
use std::collections::BTreeMap;

/// Process id used for all exported events (the engine is one process).
pub const TRACE_PID: u64 = 1;

fn category(kind: &str) -> &str {
    kind.split('.').next().unwrap_or(kind)
}

fn display_name(kind: &str, data: &Json) -> String {
    if let Some(label) = data.get("label").and_then(Json::as_str) {
        return label.to_owned();
    }
    kind.trim_end_matches(BEGIN_SUFFIX)
        .trim_end_matches(END_SUFFIX)
        .to_owned()
}

/// Converts a journal snapshot to a Chrome trace document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
///
/// End events whose begin was evicted from the ring are skipped (tracked
/// per lane), so the exported nesting is always balanced; still-open
/// begins at the end of the snapshot are closed at the last timestamp.
pub fn chrome_trace(snapshot: &JournalSnapshot) -> Json {
    let mut events = Vec::with_capacity(snapshot.events.len());
    // Per-lane stack of open begin names, to drop orphan ends and close
    // orphan begins.
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts = 0u64;
    for event in &snapshot.events {
        let ts = event.ts_ms * 1000 + event.seq;
        last_ts = last_ts.max(ts);
        let name = display_name(&event.kind, &event.data);
        let ph = if event.kind.ends_with(BEGIN_SUFFIX) {
            open.entry(event.lane).or_default().push(name.clone());
            "B"
        } else if event.kind.ends_with(END_SUFFIX) {
            match open.entry(event.lane).or_default().pop() {
                Some(_) => "E",
                None => continue, // begin evicted from the ring: skip
            }
        } else {
            "i"
        };
        let mut fields = vec![
            ("name".to_owned(), Json::str(&name)),
            ("cat".to_owned(), Json::str(category(&event.kind))),
            ("ph".to_owned(), Json::str(ph)),
            ("ts".to_owned(), Json::num(ts)),
            ("pid".to_owned(), Json::num(TRACE_PID)),
            ("tid".to_owned(), Json::num(event.lane)),
        ];
        if ph == "i" {
            fields.push(("s".to_owned(), Json::str("t")));
        }
        fields.push((
            "args".to_owned(),
            Json::obj([
                ("seq", Json::num(event.seq)),
                ("kind", Json::str(&event.kind)),
                ("data", event.data.clone()),
            ]),
        ));
        events.push(Json::Obj(fields));
    }
    // Close any still-open begins so viewers never see a dangling "B".
    for (lane, stack) in open.iter().rev() {
        for name in stack.iter().rev() {
            last_ts += 1;
            events.push(Json::obj([
                ("name", Json::str(name)),
                ("cat", Json::str("truncated")),
                ("ph", Json::str("E")),
                ("ts", Json::num(last_ts)),
                ("pid", Json::num(TRACE_PID)),
                ("tid", Json::num(*lane)),
            ]));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// Validates a parsed Chrome trace document: required keys present on
/// every event and `B`/`E` balanced per `(pid, tid)` track. Returns the
/// number of trace events.
pub fn validate_chrome_trace(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if event.get(key).is_none() {
                return Err(format!("event {i} missing {key:?}"));
            }
        }
        let track = (
            event.get("pid").and_then(Json::as_u64).unwrap_or(0),
            event.get("tid").and_then(Json::as_u64).unwrap_or(0),
        );
        match event.get("ph").and_then(Json::as_str) {
            Some("B") => *depth.entry(track).or_default() += 1,
            Some("E") => {
                let d = depth.entry(track).or_default();
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: \"E\" without matching \"B\""));
                }
            }
            Some("i") | Some("I") => {}
            Some(other) => return Err(format!("event {i}: unsupported phase {other:?}")),
            None => return Err(format!("event {i}: non-string \"ph\"")),
        }
    }
    if let Some(((pid, tid), _)) = depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!("unbalanced B/E on track pid={pid} tid={tid}"));
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{kind, Journal, JournalConfig};
    use crate::json;
    use crate::metrics::Counter;

    fn sample() -> Journal {
        Journal::new(JournalConfig::light(), Counter::detached())
    }

    #[test]
    fn exports_balanced_duration_and_instant_events() {
        let j = sample();
        j.emit(0, 0, kind::BATCH_BEGIN, Json::obj([("label", Json::str("access B^oi"))]));
        j.emit(0, 1, kind::SOURCE_CALL_BEGIN, Json::Null);
        j.emit(0, 4, kind::SOURCE_CALL_END, Json::Null);
        j.emit(0, 4, kind::CACHE_HIT, Json::Null);
        j.emit(0, 5, kind::BATCH_END, Json::Null);
        let doc = chrome_trace(&j.snapshot());
        let n = validate_chrome_trace(&doc).expect("balanced trace");
        assert_eq!(n, 5);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("access B^oi"));
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(events[3].get("ph").and_then(Json::as_str), Some("i"));
        // ts = ts_ms * 1000 + seq keeps equal-millisecond events ordered.
        let ts: Vec<u64> = events
            .iter()
            .map(|e| e.get("ts").and_then(Json::as_u64).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
    }

    #[test]
    fn orphan_ends_are_skipped_and_orphan_begins_closed() {
        let j = Journal::new(
            JournalConfig {
                capacity: 2,
                ..JournalConfig::light()
            },
            Counter::detached(),
        );
        j.emit(0, 0, kind::BATCH_BEGIN, Json::Null);
        j.emit(0, 1, kind::MEMBERSHIP, Json::Null);
        j.emit(0, 2, kind::MEMBERSHIP, Json::Null);
        j.emit(0, 3, kind::BATCH_END, Json::Null); // begin was evicted
        let doc = chrome_trace(&j.snapshot());
        validate_chrome_trace(&doc).expect("orphan end dropped");

        let j = sample();
        j.emit(0, 0, kind::BATCH_BEGIN, Json::Null);
        let doc = chrome_trace(&j.snapshot());
        validate_chrome_trace(&doc).expect("orphan begin closed");
    }

    #[test]
    fn round_trips_through_in_repo_parser() {
        let j = sample();
        j.emit(3, 7, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("S"))]));
        j.emit(3, 9, kind::SOURCE_CALL_END, Json::obj([("ok", Json::Bool(false))]));
        let text = chrome_trace(&j.snapshot()).to_pretty();
        let parsed = json::parse(&text).expect("valid JSON");
        validate_chrome_trace(&parsed).expect("valid trace");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("tid").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn validator_rejects_broken_traces() {
        let doc = json::parse(r#"{"traceEvents": [{"name": "x", "ph": "E", "ts": 1, "pid": 1, "tid": 0}]}"#)
            .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
        let doc = json::parse(r#"{"traceEvents": [{"name": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 0}]}"#)
            .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
        let doc = json::parse(r#"{"events": []}"#).unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
    }
}
