//! Phase spans with parent/child nesting.
//!
//! A span marks one phase of the pipeline (`parse`, `plan*`, `feasible`,
//! `answer*.under`, …). Spans nest: a span opened while another is active
//! becomes its child, so the finished recording is a forest rendered as an
//! `EXPLAIN ANALYZE`-style tree. Guards end their span on drop, so early
//! returns and `?` are handled for free.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub(crate) struct SpanData {
    pub(crate) name: String,
    pub(crate) parent: Option<usize>,
    pub(crate) started_at: Duration,
    pub(crate) elapsed: Option<Duration>,
}

#[derive(Debug)]
pub(crate) struct SpanStore {
    epoch: Instant,
    spans: Vec<SpanData>,
    stack: Vec<usize>,
}

impl Default for SpanStore {
    fn default() -> SpanStore {
        SpanStore {
            epoch: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }
}

impl SpanStore {
    pub(crate) fn open(&mut self, name: &str) -> usize {
        let id = self.spans.len();
        self.spans.push(SpanData {
            name: name.to_owned(),
            parent: self.stack.last().copied(),
            started_at: self.epoch.elapsed(),
            elapsed: None,
        });
        self.stack.push(id);
        id
    }

    pub(crate) fn close(&mut self, id: usize) {
        let now = self.epoch.elapsed();
        if let Some(span) = self.spans.get_mut(id) {
            if span.elapsed.is_none() {
                span.elapsed = Some(now.saturating_sub(span.started_at));
            }
        }
        // Usually `id` is the top of the stack; out-of-order closes (e.g.
        // guards dropped in a surprising order) just remove the entry.
        if let Some(pos) = self.stack.iter().rposition(|&x| x == id) {
            self.stack.remove(pos);
        }
    }

    /// Freezes the recording into a tree (open spans report the time they
    /// have accumulated so far).
    pub(crate) fn tree(&self) -> Vec<SpanNode> {
        let now = self.epoch.elapsed();
        let mut nodes: Vec<SpanNode> = self
            .spans
            .iter()
            .map(|s| SpanNode {
                name: s.name.clone(),
                elapsed: s.elapsed.unwrap_or_else(|| now.saturating_sub(s.started_at)),
                children: Vec::new(),
            })
            .collect();
        // Children attach to parents back-to-front so each parent's
        // children arrive in start order.
        for id in (0..self.spans.len()).rev() {
            if let Some(parent) = self.spans[id].parent {
                let node = std::mem::take(&mut nodes[id]);
                nodes[parent].children.insert(0, node);
            }
        }
        let mut roots = Vec::new();
        for (id, node) in nodes.into_iter().enumerate() {
            if self.spans[id].parent.is_none() {
                roots.push(node);
            }
        }
        roots
    }
}

/// One node of the finished span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name, e.g. `"plan*"`.
    pub name: String,
    /// Wall time spent in the span (including children).
    pub elapsed: Duration,
    /// Nested phases, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first search for the first node named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Every name in this subtree, depth-first.
    pub fn names(&self) -> Vec<&str> {
        let mut out = vec![self.name.as_str()];
        for c in &self.children {
            out.extend(c.names());
        }
        out
    }
}

/// A guard that ends its span when dropped. Obtained from
/// [`Recorder::span`](crate::Recorder::span); inert when tracing is off.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    pub(crate) store: Option<&'a Mutex<SpanStore>>,
    pub(crate) id: usize,
}

impl SpanGuard<'_> {
    /// Ends the span now instead of at scope exit.
    pub fn end(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(store) = self.store {
            store.lock().expect("span store not poisoned").close(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_a_tree() {
        let mut store = SpanStore::default();
        let root = store.open("pipeline");
        let a = store.open("parse");
        store.close(a);
        let b = store.open("plan*");
        let c = store.open("answerable");
        store.close(c);
        store.close(b);
        store.close(root);
        let tree = store.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "pipeline");
        let names: Vec<&str> = tree[0].names();
        assert_eq!(names, vec!["pipeline", "parse", "plan*", "answerable"]);
        assert!(tree[0].find("answerable").is_some());
        assert!(tree[0].find("nope").is_none());
    }

    #[test]
    fn out_of_order_close_is_tolerated() {
        let mut store = SpanStore::default();
        let a = store.open("a");
        let b = store.open("b");
        store.close(a); // parent closed before child
        store.close(b);
        let tree = store.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].children.len(), 1);
    }

    #[test]
    fn open_spans_report_partial_time() {
        let mut store = SpanStore::default();
        store.open("still-running");
        let tree = store.tree();
        assert_eq!(tree[0].name, "still-running");
    }
}
