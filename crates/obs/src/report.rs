//! `lapq report`: roll a journal up into per-source / per-operator tables.
//!
//! The journal records individual events; this module aggregates them into
//! the profiling view an operator actually reads: one row per source
//! relation (calls, faults, retries, rows, latency p50/p95/p99 estimated
//! through the log₂ [`Histogram`] machinery) and one row per physical
//! operator (batches, rows in/out). Works on any journal — light or
//! replay-profile — since it only needs the always-present fields.

use crate::journal::{kind, JournalSnapshot};
use crate::json::Json;
use crate::metrics::Histogram;
use std::collections::BTreeMap;

#[derive(Default)]
struct SourceRow {
    calls: u64,
    ok: u64,
    faults: u64,
    timeouts: u64,
    retries: u64,
    rows: u64,
    cache_hits: u64,
    membership: u64,
    latency: Histogram,
    /// Total backoff wait charged to the virtual clock before retries.
    wait_ms: u64,
}

#[derive(Default)]
struct OperatorRow {
    batches: u64,
    rows_in: u64,
    rows_out: u64,
}

fn data_str<'a>(data: &'a Json, key: &str) -> Option<&'a str> {
    data.get(key).and_then(Json::as_str)
}

fn data_u64(data: &Json, key: &str) -> u64 {
    data.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Renders the profiling report for `snapshot` as fixed-width text.
pub fn render_report(snapshot: &JournalSnapshot) -> String {
    let mut sources: BTreeMap<String, SourceRow> = BTreeMap::new();
    let mut operators: BTreeMap<String, OperatorRow> = BTreeMap::new();
    let mut degraded: Vec<String> = Vec::new();
    let mut last_ts = 0u64;
    // Pending begin per lane, to attribute an end's relation when the end
    // event omits it.
    let mut open_call: BTreeMap<u64, String> = BTreeMap::new();

    for event in &snapshot.events {
        last_ts = last_ts.max(event.ts_ms);
        match event.kind.as_str() {
            kind::SOURCE_CALL_BEGIN => {
                let rel = data_str(&event.data, "relation").unwrap_or("?").to_owned();
                open_call.insert(event.lane, rel);
            }
            kind::SOURCE_CALL_END => {
                let rel = data_str(&event.data, "relation")
                    .map(str::to_owned)
                    .or_else(|| open_call.remove(&event.lane))
                    .unwrap_or_else(|| "?".to_owned());
                let row = sources.entry(rel).or_default();
                row.calls += 1;
                row.rows += data_u64(&event.data, "rows");
                row.latency.record(data_u64(&event.data, "latency_ms"));
                if event.data.get("ok") == Some(&Json::Bool(true)) {
                    row.ok += 1;
                }
            }
            kind::FAULT => {
                let rel = data_str(&event.data, "relation").unwrap_or("?");
                sources.entry(rel.to_owned()).or_default().faults += 1;
            }
            kind::TIMEOUT => {
                let rel = data_str(&event.data, "relation").unwrap_or("?");
                sources.entry(rel.to_owned()).or_default().timeouts += 1;
            }
            kind::RETRY => {
                let rel = data_str(&event.data, "relation").unwrap_or("?");
                let row = sources.entry(rel.to_owned()).or_default();
                row.retries += 1;
                row.wait_ms += data_u64(&event.data, "backoff_ms");
            }
            kind::CACHE_HIT => {
                let rel = data_str(&event.data, "relation").unwrap_or("?");
                sources.entry(rel.to_owned()).or_default().cache_hits += 1;
            }
            kind::MEMBERSHIP => {
                let rel = data_str(&event.data, "relation").unwrap_or("?");
                sources.entry(rel.to_owned()).or_default().membership += 1;
            }
            kind::BATCH_BEGIN => {
                let label = data_str(&event.data, "label").unwrap_or("?").to_owned();
                let row = operators.entry(label).or_default();
                row.batches += 1;
                row.rows_in += data_u64(&event.data, "rows_in");
            }
            kind::BATCH_END => {
                let label = data_str(&event.data, "label").unwrap_or("?").to_owned();
                operators.entry(label).or_default().rows_out +=
                    data_u64(&event.data, "rows_out");
            }
            kind::DISJUNCT_DEGRADED => {
                degraded.push(format!(
                    "disjunct {} ({}) after {} attempt(s): {}",
                    data_u64(&event.data, "index"),
                    data_str(&event.data, "relation").unwrap_or("?"),
                    data_u64(&event.data, "attempts"),
                    data_str(&event.data, "reason").unwrap_or("?"),
                ));
            }
            _ => {}
        }
    }

    let mut out = String::new();
    if let Some(query) = snapshot.meta.get("query").and_then(Json::as_str) {
        out.push_str(&format!("query: {query}\n"));
    }
    out.push_str(&format!(
        "journal: {} recorded, {} dropped, {} emitted; {} virtual ms\n",
        snapshot.recorded(),
        snapshot.dropped,
        snapshot.emitted,
        last_ts
    ));

    if !sources.is_empty() {
        out.push_str("\nsources:\n");
        let width = sources.keys().map(String::len).max().unwrap_or(6).max(6);
        out.push_str(&format!(
            "  {:width$}  {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7}\n",
            "source", "calls", "rows", "faults", "retry", "cached", "member", "p50ms", "p95ms", "p99ms", "waitms", "wait%",
        ));
        for (name, row) in &sources {
            let lat = row.latency.snapshot();
            // Backoff waits as a share of the run's virtual elapsed time:
            // what degradation actually cost, next to what calls cost. A
            // source that never retried has no wait to attribute — render
            // `-` rather than a 0/0 percentage (a journal whose events all
            // land on virtual ms 0 has `last_ts == 0`, and the naive
            // division used to print `NaN%`).
            let (wait_ms, wait_share) = if row.retries == 0 {
                ("-".to_owned(), "-".to_owned())
            } else {
                let share = if last_ts == 0 {
                    0.0
                } else {
                    100.0 * row.wait_ms as f64 / last_ts as f64
                };
                (row.wait_ms.to_string(), format!("{share:.1}%"))
            };
            out.push_str(&format!(
                "  {name:width$}  {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8} {:>7}\n",
                row.calls,
                row.rows,
                row.faults + row.timeouts,
                row.retries,
                row.cache_hits,
                row.membership,
                lat.p50(),
                lat.p95(),
                lat.p99(),
                wait_ms,
                wait_share,
            ));
        }
    }

    if !operators.is_empty() {
        out.push_str("\noperators:\n");
        let width = operators.keys().map(String::len).max().unwrap_or(8).max(8);
        out.push_str(&format!(
            "  {:width$}  {:>8} {:>9} {:>9}\n",
            "operator", "batches", "rows_in", "rows_out",
        ));
        for (label, row) in &operators {
            out.push_str(&format!(
                "  {label:width$}  {:>8} {:>9} {:>9}\n",
                row.batches, row.rows_in, row.rows_out,
            ));
        }
    }

    if !degraded.is_empty() {
        out.push_str("\ndegraded disjuncts:\n");
        for line in &degraded {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use crate::metrics::Counter;

    #[test]
    fn report_rolls_up_sources_and_operators() {
        let j = Journal::new(JournalConfig::light(), Counter::detached());
        j.set_meta(Json::obj([("query", Json::str("Q"))]));
        j.emit(0, 0, kind::BATCH_BEGIN, Json::obj([
            ("label", Json::str("access B^oi")),
            ("rows_in", Json::num(2)),
        ]));
        for latency in [3u64, 9] {
            j.emit(0, 0, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("B"))]));
            j.emit(0, latency, kind::SOURCE_CALL_END, Json::obj([
                ("relation", Json::str("B")),
                ("ok", Json::Bool(true)),
                ("rows", Json::num(4)),
                ("latency_ms", Json::num(latency)),
            ]));
        }
        j.emit(0, 9, kind::FAULT, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 9, kind::RETRY, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 10, kind::BATCH_END, Json::obj([
            ("label", Json::str("access B^oi")),
            ("rows_out", Json::num(8)),
        ]));
        j.emit(0, 11, kind::DISJUNCT_DEGRADED, Json::obj([
            ("index", Json::num(1)),
            ("relation", Json::str("S")),
            ("attempts", Json::num(4)),
            ("reason", Json::str("unavailable")),
        ]));
        let text = render_report(&j.snapshot());
        assert!(text.contains("query: Q"), "{text}");
        assert!(text.contains("sources:"), "{text}");
        assert!(text.contains("operators:"), "{text}");
        assert!(text.contains("access B^oi"), "{text}");
        assert!(text.contains("degraded disjuncts:"), "{text}");
        assert!(text.contains("disjunct 1 (S) after 4 attempt(s): unavailable"), "{text}");
        // B row: 2 calls, 8 rows.
        let b_line = text.lines().find(|l| l.trim_start().starts_with("B ")).unwrap();
        assert!(b_line.contains('2') && b_line.contains('8'), "{b_line}");
    }

    /// Satellite pin: retry markers carrying `backoff_ms` roll up into a
    /// per-source wait-time column plus its share of the virtual elapsed
    /// time, right next to the latency percentiles.
    #[test]
    fn retry_backoff_rolls_up_into_wait_columns() {
        let j = Journal::new(JournalConfig::light(), Counter::detached());
        j.emit(0, 0, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 5, kind::SOURCE_CALL_END, Json::obj([
            ("relation", Json::str("S")),
            ("ok", Json::Bool(false)),
            ("latency_ms", Json::num(5)),
        ]));
        j.emit(0, 5, kind::FAULT, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 25, kind::RETRY, Json::obj([
            ("relation", Json::str("S")),
            ("attempt", Json::num(2)),
            ("backoff_ms", Json::num(20)),
        ]));
        j.emit(0, 25, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 30, kind::SOURCE_CALL_END, Json::obj([
            ("relation", Json::str("S")),
            ("ok", Json::Bool(true)),
            ("rows", Json::num(1)),
            ("latency_ms", Json::num(5)),
        ]));
        j.emit(0, 70, kind::RETRY, Json::obj([
            ("relation", Json::str("S")),
            ("attempt", Json::num(3)),
            ("backoff_ms", Json::num(15)),
        ]));
        // A legacy retry marker with no backoff field counts as zero wait.
        j.emit(0, 80, kind::RETRY, Json::obj([
            ("relation", Json::str("S")),
            ("attempt", Json::num(4)),
        ]));
        j.emit(0, 100, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 100, kind::SOURCE_CALL_END, Json::obj([
            ("relation", Json::str("S")),
            ("ok", Json::Bool(true)),
            ("rows", Json::num(1)),
            ("latency_ms", Json::num(0)),
        ]));
        let text = render_report(&j.snapshot());
        assert!(text.contains("waitms"), "{text}");
        assert!(text.contains("wait%"), "{text}");
        let s_line = text.lines().find(|l| l.trim_start().starts_with("S ")).unwrap();
        // 20 + 15 + 0 = 35 wait ms over 100 virtual ms = 35.0%.
        assert!(s_line.contains("35"), "{s_line}");
        assert!(s_line.contains("35.0%"), "{s_line}");
    }

    /// Regression: a journal whose events all land on virtual ms 0 (so
    /// `last_ts == 0`) used to divide 0 by 0 for the wait share and print
    /// `NaN%`. A source with zero retries now renders `-` for both wait
    /// columns; retrying sources keep their numeric share.
    #[test]
    fn zero_retry_sources_render_dash_not_nan() {
        let j = Journal::new(JournalConfig::light(), Counter::detached());
        // Everything at virtual ms 0: instant call, no faults, no retries.
        j.emit(0, 0, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("B"))]));
        j.emit(0, 0, kind::SOURCE_CALL_END, Json::obj([
            ("relation", Json::str("B")),
            ("ok", Json::Bool(true)),
            ("rows", Json::num(3)),
            ("latency_ms", Json::num(0)),
        ]));
        let text = render_report(&j.snapshot());
        assert!(!text.contains("NaN"), "{text}");
        let b_line = text.lines().find(|l| l.trim_start().starts_with("B ")).unwrap();
        assert!(b_line.trim_end().ends_with('-'), "{b_line}");
        assert!(!b_line.contains('%'), "{b_line}");

        // And a mixed journal: the retrying source keeps its percentage
        // while the clean source stays dashed.
        let j = Journal::new(JournalConfig::light(), Counter::detached());
        j.emit(0, 0, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("B"))]));
        j.emit(0, 0, kind::SOURCE_CALL_END, Json::obj([
            ("relation", Json::str("B")),
            ("ok", Json::Bool(true)),
            ("rows", Json::num(1)),
            ("latency_ms", Json::num(0)),
        ]));
        j.emit(0, 50, kind::RETRY, Json::obj([
            ("relation", Json::str("S")),
            ("attempt", Json::num(2)),
            ("backoff_ms", Json::num(25)),
        ]));
        j.emit(0, 100, kind::SOURCE_CALL_BEGIN, Json::obj([("relation", Json::str("S"))]));
        j.emit(0, 100, kind::SOURCE_CALL_END, Json::obj([
            ("relation", Json::str("S")),
            ("ok", Json::Bool(true)),
            ("rows", Json::num(1)),
            ("latency_ms", Json::num(0)),
        ]));
        let text = render_report(&j.snapshot());
        let b_line = text.lines().find(|l| l.trim_start().starts_with("B ")).unwrap();
        assert!(b_line.trim_end().ends_with('-'), "{b_line}");
        let s_line = text.lines().find(|l| l.trim_start().starts_with("S ")).unwrap();
        assert!(s_line.contains("25.0%"), "{s_line}");
    }

    #[test]
    fn empty_journal_still_reports_accounting() {
        let j = Journal::new(JournalConfig::light(), Counter::detached());
        let text = render_report(&j.snapshot());
        assert!(text.contains("0 recorded, 0 dropped, 0 emitted"), "{text}");
    }
}
