//! The [`Recorder`] handle threaded through the pipeline.
//!
//! A recorder bundles a [`MetricsRegistry`] and an optional span store
//! behind one cheaply-cloneable handle. Three operating points:
//!
//! * [`Recorder::disabled`] — the hot-path default. No registry, no span
//!   store; instrument handles come back *detached* (they still count, so
//!   local views such as `CallStats` keep working, but nothing is
//!   exported) and [`Recorder::span`] is a no-op returning an inert guard.
//! * [`Recorder::new`] — metrics only. Counters and histograms register
//!   and export; spans are still no-ops.
//! * [`Recorder::with_tracing`] — metrics *and* spans.
//!
//! The cost model: a detached or registered counter increment is one
//! relaxed atomic add either way, so enabling metrics does not slow the
//! hot path — only the snapshot/export side changes. Span bookkeeping
//! (a mutex and an allocation per span) is only paid when tracing is on,
//! and spans mark *phases*, not per-tuple work.

use crate::journal::{Journal, JournalConfig};
use crate::metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::span::{SpanGuard, SpanNode, SpanStore};
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Debug, Default)]
struct RecorderInner {
    metrics: Option<MetricsRegistry>,
    spans: Option<Mutex<SpanStore>>,
    journal: Option<Journal>,
}

/// A handle to one observability session. Clone freely; clones share the
/// same registry and span store. All methods take `&self` and are
/// thread-safe.
#[derive(Clone, Debug)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// The no-op recorder: nothing registers, spans are inert. This is the
    /// default every component starts with; handles it hands out are
    /// detached but functional.
    pub fn disabled() -> Recorder {
        static DISABLED: OnceLock<Arc<RecorderInner>> = OnceLock::new();
        Recorder {
            inner: DISABLED
                .get_or_init(|| Arc::new(RecorderInner::default()))
                .clone(),
        }
    }

    /// A recorder that collects metrics but not spans.
    pub fn new() -> Recorder {
        Recorder::build(true, false, None)
    }

    /// A recorder that collects metrics *and* phase spans.
    pub fn with_tracing() -> Recorder {
        Recorder::build(true, true, None)
    }

    /// A recorder that collects metrics and a flight-recorder journal
    /// (see [`Journal`]); the journal mirrors evictions to the
    /// `journal.dropped` counter.
    pub fn with_journal(cfg: JournalConfig) -> Recorder {
        Recorder::build(true, false, Some(cfg))
    }

    /// Metrics, spans, *and* a journal.
    pub fn with_tracing_and_journal(cfg: JournalConfig) -> Recorder {
        Recorder::build(true, true, Some(cfg))
    }

    fn build(metrics: bool, tracing: bool, journal: Option<JournalConfig>) -> Recorder {
        let registry = if metrics {
            Some(MetricsRegistry::new())
        } else {
            None
        };
        let journal = journal.map(|cfg| {
            let dropped = match &registry {
                Some(reg) => reg.counter("journal.dropped"),
                None => Counter::detached(),
            };
            Journal::new(cfg, dropped)
        });
        Recorder {
            inner: Arc::new(RecorderInner {
                metrics: registry,
                spans: tracing.then(|| Mutex::new(SpanStore::default())),
                journal,
            }),
        }
    }

    /// True when this recorder exports metrics.
    pub fn metrics_enabled(&self) -> bool {
        self.inner.metrics.is_some()
    }

    /// True when this recorder collects spans.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.spans.is_some()
    }

    /// True when this recorder carries a flight-recorder journal.
    pub fn journal_enabled(&self) -> bool {
        self.inner.journal.is_some()
    }

    /// The journal handle, when one is attached.
    pub fn journal(&self) -> Option<&Journal> {
        self.inner.journal.as_ref()
    }

    /// The counter named `name` — registered when metrics are enabled,
    /// detached otherwise. Ask once, increment through the handle.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner.metrics {
            Some(reg) => reg.counter(name),
            None => Counter::detached(),
        }
    }

    /// The histogram named `name` — registered or detached like
    /// [`Recorder::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner.metrics {
            Some(reg) => reg.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Opens a span named `name`, nested under the currently-open span.
    /// Inert (no lock, no allocation) when tracing is off.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        match &self.inner.spans {
            Some(store) => {
                let id = store.lock().expect("span store not poisoned").open(name);
                SpanGuard {
                    store: Some(store),
                    id,
                }
            }
            None => SpanGuard { store: None, id: 0 },
        }
    }

    /// [`Recorder::span`] with a lazily-built name: the closure only runs
    /// when tracing is on, so formatted names cost nothing on the default
    /// path.
    pub fn span_lazy(&self, name: impl FnOnce() -> String) -> SpanGuard<'_> {
        if self.tracing_enabled() {
            self.span(&name())
        } else {
            SpanGuard { store: None, id: 0 }
        }
    }

    /// A frozen copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            spans: match &self.inner.spans {
                Some(store) => store.lock().expect("span store not poisoned").tree(),
                None => Vec::new(),
            },
            metrics: match &self.inner.metrics {
                Some(reg) => reg.snapshot(),
                None => MetricsSnapshot::default(),
            },
        }
    }
}

/// A frozen copy of one recorder: the span forest plus every instrument.
/// This is what sinks consume.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Root spans in start order (empty when tracing was off).
    pub spans: Vec<SpanNode>,
    /// Counters and histograms.
    pub metrics: MetricsSnapshot,
}

impl Snapshot {
    /// Depth-first search across all roots for a span named `name`.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_and_shared() {
        let rec = Recorder::disabled();
        assert!(!rec.metrics_enabled());
        assert!(!rec.tracing_enabled());
        let c = rec.counter("x");
        c.add(5);
        assert_eq!(c.get(), 5, "detached counters still count locally");
        let snap = rec.snapshot();
        assert!(snap.metrics.counters.is_empty());
        assert!(snap.spans.is_empty());
        {
            let _g = rec.span("ignored");
        }
        assert!(rec.snapshot().spans.is_empty());
    }

    #[test]
    fn metrics_only_recorder_registers_counters() {
        let rec = Recorder::new();
        rec.counter("a.calls").add(2);
        rec.histogram("a.rows").record(8);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a.calls"), 2);
        assert_eq!(snap.metrics.histograms["a.rows"].count, 1);
        assert!(snap.spans.is_empty(), "spans off by default");
    }

    #[test]
    fn tracing_recorder_collects_nested_spans() {
        let rec = Recorder::with_tracing();
        {
            let _root = rec.span("pipeline");
            {
                let _child = rec.span_lazy(|| format!("disjunct {}", 0));
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].children[0].name, "disjunct 0");
        assert!(snap.find_span("disjunct 0").is_some());
    }

    #[test]
    fn span_lazy_skips_formatting_when_disabled() {
        let rec = Recorder::new();
        let _g = rec.span_lazy(|| unreachable!("must not format when tracing is off"));
    }

    #[test]
    fn journal_recorder_wires_the_dropped_counter() {
        let cfg = JournalConfig {
            capacity: 2,
            ..JournalConfig::light()
        };
        let rec = Recorder::with_journal(cfg);
        assert!(rec.journal_enabled());
        let j = rec.journal().expect("journal attached").clone();
        for i in 0..5 {
            j.emit(0, i, "x.instant", crate::json::Json::Null);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter("journal.dropped"), 3);
        assert_eq!(j.snapshot().dropped, 3);
        assert!(!Recorder::new().journal_enabled());
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.counter("shared").incr();
        assert_eq!(rec.snapshot().counter("shared"), 1);
    }
}
