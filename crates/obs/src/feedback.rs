//! Journal-fed calibrated source statistics — the feedback half of the
//! observability loop.
//!
//! The flight recorder captures ground truth the planner's static
//! [`CostModel`](../../lap_planner) can only guess at: per-source,
//! per-access-pattern call latency, rows-per-call, failure/timeout rates,
//! retry backoff waits. A [`FeedbackStore`] folds any number of
//! [`JournalSnapshot`]s into per-`(relation, pattern)` [`SourceProfile`]s,
//! maintains an EWMA health score across folds, detects drift against a
//! caller-supplied model expectation, and serializes to/from the same
//! hand-rolled JSON as every other snapshot in the crate — so a
//! calibration profile is reproducible, diffable, and freezable (a run
//! driven by a frozen profile is bit-for-bit deterministic).
//!
//! The store is deliberately model-agnostic: it records what was
//! *observed* and exposes aggregates ([`SourceProfile::rows_per_call`],
//! [`SourceProfile::failure_rate`], latency percentiles). Turning those
//! into plan costs is the planner's job (`CostModel::calibrated`).

use crate::journal::{kind, JournalEvent, JournalSnapshot};
use crate::json::Json;
use crate::metrics::{bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;

/// EWMA smoothing factor for the per-profile health score: each fold
/// contributes 30% and history keeps 70%, so a recovering source climbs
/// back within a few folds while one bad fold cannot erase a good history.
pub const HEALTH_ALPHA: f64 = 0.3;

/// Divergence factor that flags drift: an observation ≥ 10× (or ≤ 1/10×)
/// of the model's expectation is no longer noise the interpolating cost
/// model can absorb — the plan should be re-costed.
pub const DRIFT_FACTOR: f64 = 10.0;

/// Calibrated statistics for one `(relation, access pattern)` pair, folded
/// from journal snapshots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SourceProfile {
    /// Relation name.
    pub relation: String,
    /// Access pattern the calls used (`"io"`, `"oo"`, …).
    pub pattern: String,
    /// Wire attempts observed (each retry is one attempt).
    pub attempts: u64,
    /// Attempts that returned rows.
    pub ok: u64,
    /// Attempts that failed with an unavailability fault.
    pub faults: u64,
    /// Attempts that exceeded their timeout budget.
    pub timeouts: u64,
    /// Retry markers attributed to this pattern.
    pub retries: u64,
    /// Total rows returned by successful attempts.
    pub rows: u64,
    /// Total backoff wait charged before retries, in virtual ms.
    pub wait_ms: u64,
    /// Per-attempt latency distribution (log₂ buckets, virtual ms).
    pub latency: HistogramSnapshot,
    /// EWMA health score in `[0, 1]`: the smoothed per-fold success
    /// ratio. 1.0 = every observed attempt succeeded.
    pub health: f64,
    /// Number of folds that contributed traffic to this profile.
    pub folds: u64,
}

impl SourceProfile {
    /// An empty profile for `(relation, pattern)` with the latency bucket
    /// vector materialized at full width, so a serialized profile (which
    /// always round-trips through the full-width vector) compares equal.
    fn empty(relation: String, pattern: String) -> SourceProfile {
        SourceProfile {
            relation,
            pattern,
            latency: HistogramSnapshot {
                buckets: vec![0; HISTOGRAM_BUCKETS],
                ..HistogramSnapshot::default()
            },
            ..SourceProfile::default()
        }
    }

    /// Observed mean rows per successful call (0.0 with no successes).
    pub fn rows_per_call(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.rows as f64 / self.ok as f64
        }
    }

    /// Share of attempts that failed (fault or timeout), in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            (self.faults + self.timeouts) as f64 / self.attempts as f64
        }
    }

    /// Share of attempts that timed out, in `[0, 1]`.
    pub fn timeout_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.timeouts as f64 / self.attempts as f64
        }
    }

    /// Mean backoff wait per successful call, in virtual ms.
    pub fn wait_per_call_ms(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.wait_ms as f64 / self.ok as f64
        }
    }

    /// Expected virtual milliseconds one *logical* call costs on this
    /// source: attempts-per-success × mean attempt latency, plus the
    /// backoff waits the retries charged. This is the number a calibrated
    /// cost model weighs calls by.
    pub fn effective_call_ms(&self) -> f64 {
        if self.ok == 0 {
            // Never succeeded: every attempt was wasted latency.
            return self.latency.mean() * self.attempts.max(1) as f64 + self.wait_ms as f64;
        }
        let attempts_per_success = self.attempts as f64 / self.ok as f64;
        attempts_per_success * self.latency.mean() + self.wait_per_call_ms()
    }

    /// The number of input (`i`) slots in this profile's pattern.
    pub fn num_inputs(&self) -> usize {
        self.pattern.chars().filter(|&c| c == 'i').count()
    }

    fn fold_health(&mut self, fold_ok: u64, fold_attempts: u64) {
        if fold_attempts == 0 {
            return;
        }
        let ratio = fold_ok as f64 / fold_attempts as f64;
        self.health = if self.folds == 0 {
            ratio
        } else {
            HEALTH_ALPHA * ratio + (1.0 - HEALTH_ALPHA) * self.health
        };
        self.folds += 1;
    }

    fn to_json(&self) -> Json {
        // Latency buckets serialize sparsely as [index, count] pairs.
        let buckets: Vec<Json> = self
            .latency
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::num(i as u64), Json::num(c)]))
            .collect();
        Json::obj([
            ("relation", Json::str(&self.relation)),
            ("pattern", Json::str(&self.pattern)),
            ("attempts", Json::num(self.attempts)),
            ("ok", Json::num(self.ok)),
            ("faults", Json::num(self.faults)),
            ("timeouts", Json::num(self.timeouts)),
            ("retries", Json::num(self.retries)),
            ("rows", Json::num(self.rows)),
            ("wait_ms", Json::num(self.wait_ms)),
            ("health", Json::Num(self.health)),
            ("folds", Json::num(self.folds)),
            (
                "latency",
                Json::obj([
                    ("count", Json::num(self.latency.count)),
                    ("sum", Json::num(self.latency.sum)),
                    ("max", Json::num(self.latency.max)),
                    ("buckets", Json::Arr(buckets)),
                ]),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<SourceProfile, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("profile missing numeric {key:?}"))
        };
        let text = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("profile missing string {key:?}"))
        };
        let lat = doc.get("latency").ok_or("profile missing \"latency\"")?;
        let lat_num = |key: &str| {
            lat.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("latency missing numeric {key:?}"))
        };
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        if let Some(Json::Arr(pairs)) = lat.get("buckets") {
            for pair in pairs {
                let Json::Arr(kv) = pair else {
                    return Err("latency bucket is not an [index, count] pair".to_owned());
                };
                let (Some(i), Some(c)) = (
                    kv.first().and_then(Json::as_u64),
                    kv.get(1).and_then(Json::as_u64),
                ) else {
                    return Err("latency bucket pair is not numeric".to_owned());
                };
                let slot = buckets
                    .get_mut(i as usize)
                    .ok_or_else(|| format!("latency bucket index {i} out of range"))?;
                *slot = c;
            }
        }
        Ok(SourceProfile {
            relation: text("relation")?,
            pattern: text("pattern")?,
            attempts: num("attempts")?,
            ok: num("ok")?,
            faults: num("faults")?,
            timeouts: num("timeouts")?,
            retries: num("retries")?,
            rows: num("rows")?,
            wait_ms: num("wait_ms")?,
            health: doc
                .get("health")
                .and_then(Json::as_f64)
                .ok_or("profile missing numeric \"health\"")?,
            folds: num("folds")?,
            latency: HistogramSnapshot {
                count: lat_num("count")?,
                sum: lat_num("sum")?,
                max: lat_num("max")?,
                buckets,
            },
        })
    }
}

/// What a static model expects of one relation, for drift detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Expectation {
    /// Modeled rows transferred per call.
    pub rows_per_call: f64,
    /// Modeled virtual latency per call, in ms (0.0 = no latency model).
    pub latency_ms: f64,
}

/// One detected divergence between an observed profile and the model.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftFlag {
    /// Relation name.
    pub relation: String,
    /// Access pattern.
    pub pattern: String,
    /// Which quantity diverged (`"rows_per_call"` or `"latency_ms"`).
    pub metric: String,
    /// The observed value.
    pub observed: f64,
    /// What the model expected.
    pub expected: f64,
}

impl std::fmt::Display for DriftFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}^{}: observed {} {:.1} vs modeled {:.1} (>= {DRIFT_FACTOR}x apart)",
            self.relation, self.pattern, self.metric, self.observed, self.expected
        )
    }
}

/// A watermark over one journal's global event sequence, for incremental
/// folding of a *live* journal ([`FeedbackStore::fold_since`]).
///
/// A session journal keeps growing while its connection lives; folding the
/// whole snapshot after every request would double-count the events that
/// were already folded. A cursor remembers the first sequence number that
/// has **not** been folded yet, so each incremental fold consumes exactly
/// the new suffix. Sequence numbers are globally monotone within one
/// journal and begin/end pairs occupy adjacent sequences inside one ring
/// entry, so a cursor taken between snapshots can never split a pair.
/// Events evicted from the ring before they were folded are simply gone
/// (the journal's `dropped` counter accounts for them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldCursor {
    next_seq: u64,
}

impl FoldCursor {
    /// A cursor positioned before the first event.
    pub fn new() -> FoldCursor {
        FoldCursor::default()
    }

    /// The first sequence number that has not been folded yet.
    pub fn position(&self) -> u64 {
        self.next_seq
    }
}

/// A calibrated statistics store: per-source, per-pattern profiles folded
/// from journal snapshots, serializable to a frozen JSON profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeedbackStore {
    /// Profiles keyed by `(relation, pattern)`.
    pub profiles: BTreeMap<(String, String), SourceProfile>,
    /// Number of journal snapshots folded in.
    pub folds: u64,
}

impl FeedbackStore {
    /// An empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Folds one journal snapshot into the store: attempts, outcomes, and
    /// latencies from `source.call.*` pairs, retry waits from
    /// `source.retry` markers, and one EWMA health update per profile that
    /// saw traffic in this snapshot.
    pub fn fold(&mut self, snapshot: &JournalSnapshot) {
        self.fold_events(&snapshot.events);
        self.folds += 1;
    }

    /// Incrementally folds the events of `snapshot` that `cursor` has not
    /// seen yet, advancing the cursor past them. Returns the number of
    /// events folded; a call that finds nothing new leaves the store (and
    /// its fold count) completely untouched, so idle polls do not dilute
    /// the EWMA health scores.
    ///
    /// This is the streaming counterpart of [`FeedbackStore::fold`]: a
    /// daemon session folds its live journal every N requests and once
    /// more at session end, and the cursor guarantees each event
    /// contributes exactly once. Counting statistics (attempts, rows,
    /// latency histograms) end up identical to a single fold of the final
    /// snapshot; only the EWMA health and the fold count depend on how the
    /// stream was sliced (each slice with traffic is one EWMA step).
    pub fn fold_since(&mut self, snapshot: &JournalSnapshot, cursor: &mut FoldCursor) -> u64 {
        let fresh: Vec<JournalEvent> = snapshot
            .events
            .iter()
            .filter(|e| e.seq >= cursor.next_seq)
            .cloned()
            .collect();
        if fresh.is_empty() {
            return 0;
        }
        cursor.next_seq = fresh.iter().map(|e| e.seq).max().unwrap_or(0) + 1;
        self.fold_events(&fresh);
        self.folds += 1;
        fresh.len() as u64
    }

    fn fold_events(&mut self, events: &[JournalEvent]) {
        // (relation, pattern) open per lane, so an end event (which omits
        // the pattern) can be attributed; plus the last pattern begun per
        // relation, for retry markers (which carry the relation only).
        let mut open: BTreeMap<u64, (String, String)> = BTreeMap::new();
        let mut last_pattern: BTreeMap<String, String> = BTreeMap::new();
        let mut fold_traffic: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for event in events {
            let rel = |key: &str| {
                event
                    .data
                    .get(key)
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned()
            };
            let num =
                |key: &str| event.data.get(key).and_then(Json::as_u64).unwrap_or(0);
            match event.kind.as_str() {
                kind::SOURCE_CALL_BEGIN => {
                    let relation = rel("relation");
                    let pattern = rel("pattern");
                    last_pattern.insert(relation.clone(), pattern.clone());
                    open.insert(event.lane, (relation, pattern));
                }
                kind::SOURCE_CALL_END => {
                    let (relation, pattern) = open
                        .remove(&event.lane)
                        .unwrap_or_else(|| (rel("relation"), "?".to_owned()));
                    let key = (relation.clone(), pattern.clone());
                    let profile = self
                        .profiles
                        .entry(key.clone())
                        .or_insert_with(|| SourceProfile::empty(relation, pattern));
                    profile.attempts += 1;
                    let latency = num("latency_ms");
                    profile.latency.count += 1;
                    profile.latency.sum += latency;
                    profile.latency.max = profile.latency.max.max(latency);
                    profile.latency.buckets[bucket_index(latency)] += 1;
                    let traffic = fold_traffic.entry(key).or_insert((0, 0));
                    traffic.1 += 1;
                    if event.data.get("ok") == Some(&Json::Bool(true)) {
                        profile.ok += 1;
                        profile.rows += num("rows");
                        traffic.0 += 1;
                    } else if event.data.get("fault").and_then(Json::as_str)
                        == Some("timeout")
                    {
                        profile.timeouts += 1;
                    } else {
                        profile.faults += 1;
                    }
                }
                kind::RETRY => {
                    let relation = rel("relation");
                    let pattern = last_pattern
                        .get(&relation)
                        .cloned()
                        .unwrap_or_else(|| "?".to_owned());
                    let profile = self
                        .profiles
                        .entry((relation.clone(), pattern.clone()))
                        .or_insert_with(|| SourceProfile::empty(relation, pattern));
                    profile.retries += 1;
                    profile.wait_ms += num("backoff_ms");
                }
                _ => {}
            }
        }
        for (key, (ok, attempts)) in fold_traffic {
            if let Some(profile) = self.profiles.get_mut(&key) {
                profile.fold_health(ok, attempts);
            }
        }
    }

    /// The profile for `(relation, pattern)`, if any traffic was folded.
    pub fn profile(&self, relation: &str, pattern: &str) -> Option<&SourceProfile> {
        self.profiles
            .get(&(relation.to_owned(), pattern.to_owned()))
    }

    /// All profiles of `relation`, across patterns.
    pub fn profiles_of<'a>(
        &'a self,
        relation: &'a str,
    ) -> impl Iterator<Item = &'a SourceProfile> {
        self.profiles
            .values()
            .filter(move |p| p.relation == relation)
    }

    /// Aggregated health of `relation` over its patterns, weighted by
    /// attempts (`None` with no traffic).
    pub fn relation_health(&self, relation: &str) -> Option<f64> {
        let (mut weighted, mut attempts) = (0.0, 0u64);
        for p in self.profiles_of(relation) {
            weighted += p.health * p.attempts as f64;
            attempts += p.attempts;
        }
        (attempts > 0).then(|| weighted / attempts as f64)
    }

    /// Drift flags against a model expectation per relation: a profile
    /// whose observed rows-per-call or mean latency is ≥ [`DRIFT_FACTOR`]×
    /// away from the expectation (in either direction) is flagged.
    pub fn drift_flags<F>(&self, expect: F) -> Vec<DriftFlag>
    where
        F: Fn(&str) -> Option<Expectation>,
    {
        self.drift_flags_by(|relation, _pattern| expect(relation))
    }

    /// Like [`FeedbackStore::drift_flags`], but with a per-`(relation,
    /// pattern)` expectation. The daemon's telemetry hub needs this
    /// granularity: rows-per-call for a full scan (`oo`) and a per-binding
    /// probe (`io`) of the same relation differ by orders of magnitude, so
    /// one per-relation baseline would self-flag immediately.
    pub fn drift_flags_by<F>(&self, expect: F) -> Vec<DriftFlag>
    where
        F: Fn(&str, &str) -> Option<Expectation>,
    {
        let mut flags = Vec::new();
        let apart = |observed: f64, expected: f64| {
            observed.max(expected) >= DRIFT_FACTOR * observed.min(expected).max(1e-9)
                && (observed - expected).abs() > 1e-9
        };
        for profile in self.profiles.values() {
            let Some(expectation) = expect(&profile.relation, &profile.pattern) else {
                continue;
            };
            if profile.ok > 0 && apart(profile.rows_per_call(), expectation.rows_per_call) {
                flags.push(DriftFlag {
                    relation: profile.relation.clone(),
                    pattern: profile.pattern.clone(),
                    metric: "rows_per_call".to_owned(),
                    observed: profile.rows_per_call(),
                    expected: expectation.rows_per_call,
                });
            }
            if expectation.latency_ms > 0.0
                && profile.latency.count > 0
                && apart(profile.latency.mean(), expectation.latency_ms)
            {
                flags.push(DriftFlag {
                    relation: profile.relation.clone(),
                    pattern: profile.pattern.clone(),
                    metric: "latency_ms".to_owned(),
                    observed: profile.latency.mean(),
                    expected: expectation.latency_ms,
                });
            }
        }
        flags
    }

    /// Serializes the store to a frozen JSON profile.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("feedback_version", Json::num(1)),
            ("folds", Json::num(self.folds)),
            (
                "profiles",
                Json::Arr(self.profiles.values().map(SourceProfile::to_json).collect()),
            ),
        ])
    }

    /// Reads a store back from [`FeedbackStore::to_json`] output.
    pub fn from_json(doc: &Json) -> Result<FeedbackStore, String> {
        let folds = doc
            .get("folds")
            .and_then(Json::as_u64)
            .ok_or("feedback snapshot missing numeric \"folds\"")?;
        let Some(Json::Arr(entries)) = doc.get("profiles") else {
            return Err("feedback snapshot missing \"profiles\" array".to_owned());
        };
        let mut profiles = BTreeMap::new();
        for entry in entries {
            let p = SourceProfile::from_json(entry)?;
            profiles.insert((p.relation.clone(), p.pattern.clone()), p);
        }
        Ok(FeedbackStore { profiles, folds })
    }

    /// Checks the store's invariants, as `lapq obs-validate` does for the
    /// other snapshot shapes: all rates and health scores in `[0, 1]`,
    /// latency percentiles monotone (p50 ≤ p95 ≤ p99 ≤ max), per-profile
    /// accounting consistent (`ok + faults + timeouts == attempts`,
    /// latency sample count == attempts), and a JSON round trip exact.
    pub fn validate(&self) -> Result<(), String> {
        for ((rel, pat), p) in &self.profiles {
            let ctx = format!("{rel}^{pat}");
            if p.relation != *rel || p.pattern != *pat {
                return Err(format!("{ctx}: profile key does not match its fields"));
            }
            for (name, rate) in [
                ("failure_rate", p.failure_rate()),
                ("timeout_rate", p.timeout_rate()),
                ("health", p.health),
            ] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("{ctx}: {name} {rate} outside [0, 1]"));
                }
            }
            if p.ok + p.faults + p.timeouts != p.attempts {
                return Err(format!(
                    "{ctx}: ok {} + faults {} + timeouts {} != attempts {}",
                    p.ok, p.faults, p.timeouts, p.attempts
                ));
            }
            if p.latency.count != p.attempts {
                return Err(format!(
                    "{ctx}: latency samples {} != attempts {}",
                    p.latency.count, p.attempts
                ));
            }
            let (p50, p95, p99) = (p.latency.p50(), p.latency.p95(), p.latency.p99());
            if !(p50 <= p95 && p95 <= p99 && p99 <= p.latency.max as f64) {
                return Err(format!(
                    "{ctx}: percentiles not monotone: p50 {p50} p95 {p95} p99 {p99} max {}",
                    p.latency.max
                ));
            }
        }
        let round = FeedbackStore::from_json(&self.to_json())
            .map_err(|e| format!("round trip failed to parse: {e}"))?;
        if &round != self {
            return Err("JSON round trip is not exact".to_owned());
        }
        Ok(())
    }

    /// A human-readable one-line summary per profile (for `lapq calibrate`).
    pub fn summary(&self) -> String {
        let mut out = format!("{} profile(s), {} fold(s)\n", self.profiles.len(), self.folds);
        for p in self.profiles.values() {
            out.push_str(&format!(
                "  {}^{}: {} call(s), {:.1} rows/call, {:.0}% failed, \
                 p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms, {:.1}ms eff/call, health {:.2}\n",
                p.relation,
                p.pattern,
                p.attempts,
                p.rows_per_call(),
                100.0 * p.failure_rate(),
                p.latency.p50(),
                p.latency.p95(),
                p.latency.p99(),
                p.effective_call_ms(),
                p.health,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig, WireOutcome};
    use crate::metrics::Counter;

    fn journal() -> Journal {
        Journal::new(JournalConfig::light(), Counter::detached())
    }

    fn ok(j: &Journal, ts: u64, rel: &str, pat: &str, rows: u64, latency: u64) {
        j.record_call(0, ts, ts + latency, rel, pat, 1, WireOutcome::Ok { rows, latency_ms: latency });
    }

    #[test]
    fn folding_builds_per_pattern_profiles() {
        let j = journal();
        ok(&j, 0, "B", "io", 4, 10);
        ok(&j, 10, "B", "io", 6, 20);
        ok(&j, 30, "B", "oo", 100, 5);
        j.record_call(0, 40, 45, "S", "o", 2, WireOutcome::Unavailable { latency_ms: 5 });
        j.record_instant(0, 65, "S", crate::journal::InstantPayload::Retry {
            attempt: 2,
            backoff_ms: 20,
        });
        ok(&j, 65, "S", "o", 3, 5);

        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        assert_eq!(store.folds, 1);

        let b_io = store.profile("B", "io").unwrap();
        assert_eq!((b_io.attempts, b_io.ok, b_io.rows), (2, 2, 10));
        assert_eq!(b_io.rows_per_call(), 5.0);
        assert_eq!(b_io.num_inputs(), 1);
        assert_eq!(b_io.health, 1.0);
        assert_eq!(b_io.failure_rate(), 0.0);

        let b_oo = store.profile("B", "oo").unwrap();
        assert_eq!(b_oo.rows_per_call(), 100.0);

        let s = store.profile("S", "o").unwrap();
        assert_eq!((s.attempts, s.ok, s.faults), (2, 1, 1));
        assert_eq!(s.failure_rate(), 0.5);
        assert_eq!(s.retries, 1);
        assert_eq!(s.wait_ms, 20);
        assert!(s.effective_call_ms() > 20.0, "{}", s.effective_call_ms());
        assert!(store.relation_health("S").unwrap() < store.relation_health("B").unwrap());
    }

    #[test]
    fn health_is_an_ewma_across_folds() {
        let mut store = FeedbackStore::new();
        let good = journal();
        ok(&good, 0, "S", "o", 1, 5);
        store.fold(&good.snapshot());
        assert_eq!(store.profile("S", "o").unwrap().health, 1.0);

        let bad = journal();
        bad.record_call(0, 0, 5, "S", "o", 1, WireOutcome::Unavailable { latency_ms: 5 });
        store.fold(&bad.snapshot());
        let h = store.profile("S", "o").unwrap().health;
        assert!((h - 0.7).abs() < 1e-9, "0.3*0 + 0.7*1.0 = 0.7, got {h}");

        // A fold with no S traffic leaves its health untouched.
        let idle = journal();
        ok(&idle, 0, "B", "oo", 1, 1);
        store.fold(&idle.snapshot());
        assert_eq!(store.profile("S", "o").unwrap().health, h);
        assert_eq!(store.folds, 3);
    }

    #[test]
    fn drift_flags_fire_at_10x() {
        let j = journal();
        ok(&j, 0, "B", "oo", 500, 3); // model expects 10 rows → 50× off
        ok(&j, 3, "T", "oo", 12, 3); // model expects 10 rows → fine
        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        let flags = store.drift_flags(|_| {
            Some(Expectation { rows_per_call: 10.0, latency_ms: 0.0 })
        });
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert_eq!(flags[0].relation, "B");
        assert_eq!(flags[0].metric, "rows_per_call");
        assert!(flags[0].to_string().contains("B^oo"), "{}", flags[0]);
        // Latency drift fires independently.
        let slow = journal();
        ok(&slow, 0, "L", "o", 10, 200);
        let mut store = FeedbackStore::new();
        store.fold(&slow.snapshot());
        let flags = store.drift_flags(|_| {
            Some(Expectation { rows_per_call: 10.0, latency_ms: 5.0 })
        });
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert_eq!(flags[0].metric, "latency_ms");
    }

    #[test]
    fn json_round_trip_is_exact_and_validates() {
        let j = journal();
        ok(&j, 0, "B", "io", 4, 10);
        ok(&j, 10, "B", "io", 6, 1000);
        j.record_call(0, 40, 45, "S", "o", 2, WireOutcome::Unavailable { latency_ms: 5 });
        j.record_call(
            0,
            50,
            55,
            "S",
            "o",
            3,
            WireOutcome::Timeout { latency_ms: 9, timeout_ms: 5 },
        );
        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        store.validate().expect("freshly folded store validates");

        let text = store.to_json().to_pretty();
        let parsed = crate::json::parse(&text).expect("profile JSON parses");
        let back = FeedbackStore::from_json(&parsed).expect("profile JSON loads");
        assert_eq!(back, store, "round trip must be exact");
        back.validate().expect("round-tripped store validates");
    }

    #[test]
    fn validate_rejects_broken_accounting() {
        let j = journal();
        ok(&j, 0, "B", "io", 4, 10);
        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        let key = ("B".to_owned(), "io".to_owned());
        store.profiles.get_mut(&key).unwrap().attempts = 2; // ok+faults != attempts
        let err = store.validate().unwrap_err();
        assert!(err.contains("attempts"), "{err}");

        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        store.profiles.get_mut(&key).unwrap().health = 1.5;
        let err = store.validate().unwrap_err();
        assert!(err.contains("health"), "{err}");
    }

    /// The order-invariant part of a profile: everything except the EWMA
    /// health and the per-profile fold count, which by design depend on
    /// how traffic was sliced into folds.
    fn counting(p: &SourceProfile) -> (u64, u64, u64, u64, u64, u64, u64, HistogramSnapshot) {
        (
            p.attempts,
            p.ok,
            p.faults,
            p.timeouts,
            p.retries,
            p.rows,
            p.wait_ms,
            p.latency.clone(),
        )
    }

    #[test]
    fn fold_since_consumes_each_event_exactly_once() {
        let j = journal();
        ok(&j, 0, "B", "io", 4, 10);
        ok(&j, 10, "B", "io", 6, 20);
        let mut store = FeedbackStore::new();
        let mut cursor = FoldCursor::new();
        assert_eq!(cursor.position(), 0);
        // Each call is one begin/end pair → two events.
        assert_eq!(store.fold_since(&j.snapshot(), &mut cursor), 4);
        assert_eq!(store.profile("B", "io").unwrap().attempts, 2);
        assert_eq!(store.folds, 1);

        // An idle poll folds nothing and changes nothing — not even the
        // fold count, so it cannot dilute the health EWMA.
        let before = store.clone();
        assert_eq!(store.fold_since(&j.snapshot(), &mut cursor), 0);
        assert_eq!(store, before);

        // New traffic folds only the unseen suffix.
        ok(&j, 40, "B", "io", 10, 5);
        assert_eq!(store.fold_since(&j.snapshot(), &mut cursor), 2);
        let p = store.profile("B", "io").unwrap();
        assert_eq!((p.attempts, p.rows), (3, 20));

        // Counting statistics match a one-shot fold of the final snapshot.
        let mut one = FeedbackStore::new();
        one.fold(&j.snapshot());
        assert_eq!(
            counting(store.profile("B", "io").unwrap()),
            counting(one.profile("B", "io").unwrap()),
        );
        store.validate().expect("incrementally folded store validates");
    }

    #[test]
    fn fold_order_is_invariant_for_counting_stats_and_drift() {
        // (relation, pattern, ok?, rows, latency)
        type Call = (&'static str, &'static str, bool, u64, u64);
        const A: &[Call] = &[("B", "io", true, 4, 10), ("S", "o", false, 0, 5)];
        const B: &[Call] = &[("B", "io", true, 6, 20), ("B", "oo", true, 500, 3)];
        const C: &[Call] = &[("S", "o", true, 3, 5)];
        let make = |specs: &[&[Call]]| {
            let j = journal();
            let mut ts = 0;
            for spec in specs {
                for &(rel, pat, is_ok, rows, latency) in *spec {
                    if is_ok {
                        ok(&j, ts, rel, pat, rows, latency);
                    } else {
                        j.record_call(
                            0,
                            ts,
                            ts + latency,
                            rel,
                            pat,
                            1,
                            WireOutcome::Unavailable { latency_ms: latency },
                        );
                    }
                    ts += latency + 1;
                }
            }
            j.snapshot()
        };
        let (a, b, c) = (make(&[A]), make(&[B]), make(&[C]));
        let fold_all = |order: &[&JournalSnapshot]| {
            let mut store = FeedbackStore::new();
            for snap in order {
                store.fold(snap);
            }
            store
        };
        let abc = fold_all(&[&a, &b, &c]);
        let cba = fold_all(&[&c, &b, &a]);
        let bac = fold_all(&[&b, &a, &c]);
        // The same traffic as one combined journal, folded once.
        let mut one = FeedbackStore::new();
        one.fold(&make(&[A, B, C]));

        for store in [&abc, &cba, &bac] {
            assert_eq!(store.folds, 3);
            assert_eq!(store.profiles.len(), one.profiles.len());
            for (key, p) in &one.profiles {
                let q = store.profiles.get(key).unwrap_or_else(|| panic!("{key:?}"));
                assert_eq!(counting(q), counting(p), "{key:?}");
            }
        }

        // Drift flags depend only on the counting stats, so any fold order
        // (and the combined fold) agrees.
        let expect = |_: &str| Some(Expectation { rows_per_call: 10.0, latency_ms: 0.0 });
        assert_eq!(abc.drift_flags(expect), one.drift_flags(expect));
        assert_eq!(cba.drift_flags(expect), one.drift_flags(expect));
        assert!(!abc.drift_flags(expect).is_empty(), "B^oo at 500 rows/call flags");

        // EWMA health is order-*dependent* by design — the latest fold
        // weighs HEALTH_ALPHA. S^o faulted in journal A and succeeded in
        // journal C, so the order of A and C decides where it lands.
        let s_abc = abc.profile("S", "o").unwrap().health;
        let s_cba = cba.profile("S", "o").unwrap().health;
        assert!((s_abc - HEALTH_ALPHA).abs() < 1e-9, "fault then ok: {s_abc}");
        assert!((s_cba - (1.0 - HEALTH_ALPHA)).abs() < 1e-9, "ok then fault: {s_cba}");
    }

    #[test]
    fn per_pattern_drift_expectations_are_independent() {
        let j = journal();
        ok(&j, 0, "B", "oo", 500, 3); // scans are expected to be wide
        ok(&j, 3, "B", "io", 4, 3); // probes are expected to be narrow
        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        // A per-relation baseline cannot describe both patterns at once...
        let flat = store.drift_flags(|_| {
            Some(Expectation { rows_per_call: 500.0, latency_ms: 0.0 })
        });
        assert_eq!(flat.len(), 1, "{flat:?}");
        assert_eq!((flat[0].pattern.as_str(), flat[0].metric.as_str()), ("io", "rows_per_call"));
        // ...while per-(relation, pattern) expectations fit each exactly.
        let by = store.drift_flags_by(|_, pat| {
            Some(Expectation {
                rows_per_call: if pat == "oo" { 500.0 } else { 4.0 },
                latency_ms: 0.0,
            })
        });
        assert!(by.is_empty(), "{by:?}");
    }

    #[test]
    fn summary_names_every_profile() {
        let j = journal();
        ok(&j, 0, "B", "io", 4, 10);
        let mut store = FeedbackStore::new();
        store.fold(&j.snapshot());
        let text = store.summary();
        assert!(text.contains("B^io"), "{text}");
        assert!(text.contains("rows/call"), "{text}");
    }
}
