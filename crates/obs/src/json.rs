//! A hand-rolled JSON value, writer, and parser.
//!
//! The workspace is dependency-free by policy (DESIGN.md §3), so the
//! metrics exporter and the bench harness share this ~200-line JSON layer
//! instead of pulling in `serde`. Only what snapshots need is supported:
//! objects, arrays, strings, booleans, null, and numbers (written from
//! `u64`/`i64`/`f64`; parsed into `f64`).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; `u64` counters below 2⁵³ round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Counter constructor (`u64` → number).
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// An object from a `BTreeMap` of counters.
    pub fn counters(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(map.iter().map(|(k, &v)| (k.clone(), Json::num(v))).collect())
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1, pretty);
                    item.write(out, indent + 1, pretty);
                }
                newline_indent(out, indent, pretty);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1, pretty);
                    write_escaped(k, out);
                    out.push_str(if pretty { ": " } else { ":" });
                    v.write(out, indent + 1, pretty);
                }
                newline_indent(out, indent, pretty);
                out.push('}');
            }
        }
    }

    /// Compact rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Two-space-indented rendering (ends without a newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

fn newline_indent(out: &mut String, indent: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document (used by `lapq obs-validate` and round-trip
/// tests; rejects trailing garbage).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_owned(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected {:?}", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected {lit}"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err("invalid \\u escape", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("invalid utf-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_snapshot_shaped_documents() {
        let doc = Json::obj([
            ("name", Json::str("lap")),
            ("calls", Json::num(42)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "spans",
                Json::Arr(vec![Json::obj([
                    ("name", Json::str("plan*")),
                    ("children", Json::Arr(vec![])),
                ])]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}f — ünïcode");
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("d").is_none());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(7).to_compact(), "7");
        assert_eq!(Json::Num(1.25).to_compact(), "1.25");
    }
}
