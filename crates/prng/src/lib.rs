//! A small, self-contained, seeded pseudo-random number generator with an
//! API shaped after the parts of `rand` this workspace uses.
//!
//! The workspace must build and test with **no network access** (tier-1
//! verification runs offline), so external crates are out. This crate
//! provides the only randomness primitive the repo needs: a deterministic,
//! seedable generator for workload generation and randomized testing.
//!
//! Determinism is part of the contract: for a fixed seed, the sequence of
//! values is identical on every platform and every run, so any test failure
//! reported with its seed is reproducible bit-for-bit. (This is the
//! "deterministic seeding audit" invariant — generators must *only* draw
//! randomness through [`StdRng`], never from time, addresses, or hashers.)
//!
//! The generator is xoshiro256\*\* seeded via SplitMix64, the standard
//! pairing recommended by the xoshiro authors: SplitMix64 expands a 64-bit
//! seed into well-mixed 256-bit state, and xoshiro256\*\* provides fast,
//! high-quality output from it.
//!
//! ```
//! use lap_prng::{SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let d6 = rng.gen_range(1..=6i64);
//! assert!((1..=6).contains(&d6));
//! let coin = rng.gen_bool(0.5);
//! let pick = *[10, 20, 30].choose(&mut rng).unwrap();
//! let again = (d6, coin, pick);
//! let mut rng2 = StdRng::seed_from_u64(42);
//! let replay = (
//!     rng2.gen_range(1..=6i64),
//!     rng2.gen_bool(0.5),
//!     *[10, 20, 30].choose(&mut rng2).unwrap(),
//! );
//! assert_eq!(again, replay);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic, seedable PRNG (xoshiro256\*\* seeded with SplitMix64).
///
/// The name matches `rand::rngs::StdRng` so call sites read the same; the
/// output stream is of course this crate's own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. Same seed ⇒ same sequence,
    /// on every platform.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64 bits (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`,
    /// over the integer types the workspace uses). Panics on an empty range,
    /// matching `rand`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform `u64` below `bound` (rejection sampling, no modulo bias).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        // Reject the first `2^64 mod bound` values so the remaining
        // `floor(2^64 / bound) * bound` values split into equal classes.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % bound;
            }
        }
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut StdRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        match hi.checked_sub(lo).and_then(|s| s.checked_add(1)) {
            Some(span) => lo + rng.below(span),
            None => rng.next_u64(),
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// A uniformly random element, or `None` on an empty slice.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.below(self.len() as u64) as usize])
        }
    }

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_reference_stream() {
        // Pin the stream so an accidental algorithm change (which would
        // silently re-shuffle every generated workload) fails loudly.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = StdRng::seed_from_u64(0);
        let replay: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, replay);
        assert!(first.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: i64 = r.gen_range(1..=6);
            assert!((1..=6).contains(&v));
            let u: usize = r.gen_range(0..10);
            assert!(u < 10);
            let n: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(4);
        let xs = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut r).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "20 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(5);
        let _: i64 = r.gen_range(5..5);
    }
}
