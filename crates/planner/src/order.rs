//! Cost-based ordering of orderable bodies.
//!
//! ANSWERABLE's discovery order proves *a* plan exists, but it is
//! arbitrary with respect to cost: it happily scans an enormous free-scan
//! relation first when a tiny one would have seeded the nested loops far
//! more cheaply. This module searches the space of *executable* orders for
//! a cheap one:
//!
//! * [`greedy_order`] — at each step, append the executable literal with
//!   the lowest estimated fan-out (classic heuristic, linear in n²);
//! * [`best_order`] — exhaustive branch-and-bound over executable
//!   prefixes, exact for the cost model, practical for bodies up to ~10–12
//!   literals;
//! * [`optimize_plan_pair`] — applies a strategy to every disjunct of a
//!   PLAN\* output, preserving executability.

use crate::cost::{estimate_cost, CostModel, PlanCost};
use lap_core::{literal_executable, PlanPair};
use lap_ir::{ConjunctiveQuery, Literal, Schema, Term, Var};
use std::collections::HashSet;

/// Ordering strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Keep ANSWERABLE's discovery order (the baseline).
    AnswerableOrder,
    /// Greedy minimum-fan-out (fast, good).
    Greedy,
    /// Exhaustive branch-and-bound (exact, exponential worst case).
    Exhaustive,
}

/// Greedily orders `body` into an executable sequence, choosing at each
/// step the literal with the smallest estimated surviving-bindings factor.
/// Returns `None` if no executable completion exists (the body is not
/// orderable).
pub fn greedy_order(
    cq: &ConjunctiveQuery,
    schema: &Schema,
    model: &CostModel,
) -> Option<ConjunctiveQuery> {
    let mut remaining: Vec<Literal> = cq.body.clone();
    let mut ordered: Vec<Literal> = Vec::with_capacity(remaining.len());
    let mut bound: HashSet<Var> = HashSet::new();
    while !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, lit) in remaining.iter().enumerate() {
            if !literal_executable(lit, &bound, schema) {
                continue;
            }
            let fanout = fanout_estimate(lit, &bound, schema, model);
            if best.is_none_or(|(_, f)| fanout < f) {
                best = Some((i, fanout));
            }
        }
        let (i, _) = best?;
        let lit = remaining.remove(i);
        bound.extend(lit.vars());
        ordered.push(lit);
    }
    Some(ConjunctiveQuery::new(cq.head.clone(), ordered))
}

/// Expected number of bindings each incoming binding expands into when
/// `lit` executes with the given bound set.
fn fanout_estimate(
    lit: &Literal,
    bound: &HashSet<Var>,
    schema: &Schema,
    model: &CostModel,
) -> f64 {
    if !lit.positive {
        return 0.5;
    }
    let Some(decl) = schema.relation(lit.atom.predicate.name) else {
        return f64::INFINITY;
    };
    let arg_bound = |j: usize| match lit.atom.args[j] {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(&v),
    };
    let Some(pattern) = decl.usable_pattern(arg_bound) else {
        return f64::INFINITY;
    };
    let bound_positions = (0..lit.atom.args.len()).filter(|&j| arg_bound(j)).count();
    model.extent(lit.atom.predicate.name) * model.selectivity.powi(bound_positions as i32)
        * model
            .selectivity
            .powi(0i32.max(pattern.num_inputs() as i32 - bound_positions as i32))
}

/// Exhaustive branch-and-bound search for the cheapest executable order.
/// Exact with respect to [`estimate_cost`]; exponential worst case — use
/// for bodies up to roughly a dozen literals.
pub fn best_order(
    cq: &ConjunctiveQuery,
    schema: &Schema,
    model: &CostModel,
) -> Option<(ConjunctiveQuery, PlanCost)> {
    // Seed the upper bound with the greedy solution.
    let greedy = greedy_order(cq, schema, model)?;
    let greedy_cost = estimate_cost(&greedy, schema, model)?;
    let mut best = (greedy.body.clone(), greedy_cost.total());

    let mut prefix: Vec<Literal> = Vec::with_capacity(cq.body.len());
    let mut used = vec![false; cq.body.len()];
    search(
        cq,
        schema,
        model,
        &mut prefix,
        &mut used,
        &mut best,
    );
    let ordered = ConjunctiveQuery::new(cq.head.clone(), best.0);
    let cost = estimate_cost(&ordered, schema, model)?;
    Some((ordered, cost))
}

fn search(
    cq: &ConjunctiveQuery,
    schema: &Schema,
    model: &CostModel,
    prefix: &mut Vec<Literal>,
    used: &mut Vec<bool>,
    best: &mut (Vec<Literal>, f64),
) {
    // Cost of the current prefix (always executable by construction).
    let partial = ConjunctiveQuery::new(cq.head.clone(), prefix.clone());
    let Some(cost) = estimate_cost(&partial, schema, model) else {
        return;
    };
    if cost.total() >= best.1 {
        return; // bound: extending only adds cost
    }
    if prefix.len() == cq.body.len() {
        *best = (prefix.clone(), cost.total());
        return;
    }
    let bound: HashSet<Var> = prefix.iter().flat_map(|l| l.vars()).collect();
    for i in 0..cq.body.len() {
        if used[i] || !literal_executable(&cq.body[i], &bound, schema) {
            continue;
        }
        used[i] = true;
        prefix.push(cq.body[i].clone());
        search(cq, schema, model, prefix, used, best);
        prefix.pop();
        used[i] = false;
    }
}

/// Re-orders every disjunct of a PLAN\* output according to `strategy`.
/// Disjuncts that cannot be improved (or where the strategy fails) keep
/// their ANSWERABLE order.
pub fn optimize_plan_pair(
    pair: &PlanPair,
    schema: &Schema,
    model: &CostModel,
    strategy: Strategy,
) -> PlanPair {
    let mut out = pair.clone();
    for plan_list in [&mut out.under.parts, &mut out.over.parts] {
        for part in plan_list.iter_mut() {
            let replacement = match strategy {
                Strategy::AnswerableOrder => None,
                Strategy::Greedy => greedy_order(&part.cq, schema, model),
                Strategy::Exhaustive => best_order(&part.cq, schema, model).map(|(q, _)| q),
            };
            if let Some(better) = replacement {
                part.cq = better;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_core::{is_executable_cq, plan_star};
    use lap_ir::parse_program;

    fn setup(text: &str) -> (ConjunctiveQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().disjuncts[0].clone(), p.schema)
    }

    fn model() -> CostModel {
        CostModel::new()
            .with_extent("L", 5.0)
            .with_extent("B", 10_000.0)
            .with_extent("C", 2_000.0)
    }

    #[test]
    fn greedy_prefers_the_small_seed() {
        let (q, schema) = setup(
            "L^o. B^ioo. C^oo.\n\
             Q(t) :- C(i, a), B(i, a, t), L(i).",
        );
        let ordered = greedy_order(&q, &schema, &model()).unwrap();
        assert!(is_executable_cq(&ordered, &schema));
        assert_eq!(ordered.body[0].atom.predicate.name.as_str(), "L");
    }

    #[test]
    fn greedy_fails_on_unorderable_bodies() {
        let (q, schema) = setup("B^ii.\nQ(x, y) :- B(x, y).");
        assert!(greedy_order(&q, &schema, &CostModel::new()).is_none());
    }

    #[test]
    fn exhaustive_never_beats_by_less_and_is_executable() {
        let (q, schema) = setup(
            "L^o. B^ioo. C^oo. P^io.\n\
             Q(t, p) :- C(i, a), B(i, a, t), L(i), P(i, p).",
        );
        let m = model().with_extent("P", 10_000.0);
        let greedy = greedy_order(&q, &schema, &m).unwrap();
        let g_cost = estimate_cost(&greedy, &schema, &m).unwrap();
        let (best, b_cost) = best_order(&q, &schema, &m).unwrap();
        assert!(is_executable_cq(&best, &schema));
        assert!(b_cost.total() <= g_cost.total() + 1e-9);
    }

    #[test]
    fn exhaustive_finds_a_better_order_when_greedy_is_myopic() {
        // Greedy picks the locally cheapest scan; a join-aware order can
        // beat it: S tiny but useless (binds nothing B needs), A medium
        // binding x for the huge B^io.
        let p = parse_program(
            "S^o. A^o. B^io.\n\
             Q(x, y) :- A(x), B(x, y), S(z).",
        )
        .unwrap();
        let (q, schema) = (p.single_query().unwrap().disjuncts[0].clone(), p.schema);
        let m = CostModel::new()
            .with_extent("S", 2.0)
            .with_extent("A", 50.0)
            .with_extent("B", 10_000.0);
        let (best, best_cost) = best_order(&q, &schema, &m).unwrap();
        let ans_cost = estimate_cost(&q, &schema, &m);
        // The original order (A, B, S) is executable; best must be ≤ it.
        assert!(best_cost.total() <= ans_cost.unwrap().total() + 1e-9);
        assert!(is_executable_cq(&best, &schema));
    }

    #[test]
    fn optimize_plan_pair_preserves_plan_shape() {
        let p = parse_program(
            "L^o. B^ioo. C^oo.\n\
             Q(t) :- B(i, a, t), C(i, a), not L(i).",
        )
        .unwrap();
        let q = p.single_query().unwrap();
        let pair = plan_star(q, &p.schema);
        let optimized = optimize_plan_pair(&pair, &p.schema, &model(), Strategy::Greedy);
        assert_eq!(optimized.under.parts.len(), pair.under.parts.len());
        for part in &optimized.under.parts {
            assert!(is_executable_cq(&part.cq, &p.schema));
            assert_eq!(part.cq.body.len(), pair.under.parts[0].cq.body.len());
        }
    }
}
