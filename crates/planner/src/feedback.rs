//! Adaptive re-planning from flight-recorder feedback.
//!
//! The static [`CostModel`] guesses extents; the journal records what the
//! sources actually did. [`CostModel::calibrated`] turns a folded
//! [`FeedbackStore`] into a re-costed model; [`recalibrate_prepared`]
//! closes the loop for a long-lived [`PreparedQuery`]: re-order its plan
//! bodies under the calibrated model, re-lower with **dual** cost
//! annotations (static `est` next to calibrated `cal`), and swap the
//! physical trees in place so the *next* execution runs the new plan.
//!
//! Re-ordering the same bodies is answer-preserving — every order of one
//! executable body computes the same relation — so a calibrated plan may
//! only differ in calls and latency, never in answers. That invariant is
//! what lets the mid-query escape hatch stay lazy: when an execution blows
//! an estimate (the engine's `exec.estimate.blown` marker), the current
//! run completes correctly and only the next one re-plans.

use crate::cost::CostModel;
use crate::lower::lower_dual;
use crate::order::{optimize_plan_pair, Strategy};
use lap_core::PreparedQuery;
use lap_obs::FeedbackStore;

/// Re-plans `prepared` under `static_model` calibrated with `feedback`:
/// the plan bodies are re-ordered by `strategy` under the calibrated
/// model and re-lowered with dual (static + calibrated) cost annotations.
/// Returns `true` when the calibrated ordering differs from the compiled
/// one (the next [`PreparedQuery::execute`] runs a different plan).
pub fn recalibrate_prepared(
    prepared: &mut PreparedQuery,
    static_model: &CostModel,
    feedback: &FeedbackStore,
    strategy: Strategy,
) -> bool {
    let calibrated = static_model.calibrated(feedback);
    let optimized = optimize_plan_pair(prepared.plans(), prepared.schema(), &calibrated, strategy);
    let changed = optimized != *prepared.plans();
    let physical = lower_dual(&optimized, prepared.schema(), static_model, &calibrated);
    prepared.replace_plans(optimized, physical);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_engine::{Database, PhysOp, SourceRegistry};
    use lap_ir::parse_program;
    use lap_obs::Recorder;

    /// A schema where the static model (uniform extents) seeds the plan
    /// with the free-scan A and hammers D^io once per A row, while the
    /// true extents make the D^oo scan-first order far cheaper.
    const PROGRAM: &str = "A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).";

    fn scenario() -> (PreparedQuery, Database) {
        let p = parse_program(PROGRAM).unwrap();
        let q = p.single_query().unwrap();
        let prepared = PreparedQuery::compile(q, &p.schema);
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("A({i}). "));
        }
        for i in 0..8 {
            facts.push_str(&format!("D({i}, {}). ", 100 + i));
        }
        let db = Database::from_facts(&facts).unwrap();
        (prepared, db)
    }

    /// Folds a feedback store out of one recorded execution of `prepared`.
    fn record_feedback(prepared: &PreparedQuery, db: &Database) -> FeedbackStore {
        let rec = Recorder::with_journal(lap_obs::journal::JournalConfig::light());
        let mut reg = SourceRegistry::new(db, prepared.schema()).recording(&rec);
        lap_engine::execute_physical_union(
            &prepared.physical().under,
            &mut reg,
            lap_engine::ExecConfig::default(),
        )
        .unwrap();
        let mut store = FeedbackStore::new();
        store.fold(&rec.journal().unwrap().snapshot());
        store
    }

    #[test]
    fn recalibration_reorders_and_dual_annotates() {
        let (mut prepared, db) = scenario();
        let before = prepared.execute(&db).unwrap();
        let static_model = CostModel::new();
        let feedback = record_feedback(&prepared, &db);

        let changed =
            recalibrate_prepared(&mut prepared, &static_model, &feedback, Strategy::Exhaustive);
        assert!(changed, "calibrated extents must flip the join order");
        // The calibrated plan leads with the D^oo scan (8 rows observed)
        // instead of the 40-row A scan.
        let first = &prepared.physical().under.parts[0].ops[0];
        let PhysOp::Access(op) = first else { panic!("leaf is an access op") };
        assert_eq!(op.relation.as_str(), "D", "{}", prepared.physical().under.parts[0]);
        // Dual annotations: every operator carries est and cal.
        for op in &prepared.physical().under.parts[0].ops {
            assert!(op.cost().is_some(), "static estimate on {}", op.label());
            assert!(op.calibrated().is_some(), "calibrated estimate on {}", op.label());
        }
        let shown = prepared.physical().under.parts[0].to_string();
        assert!(shown.contains("est "), "{shown}");
        assert!(shown.contains("; cal "), "{shown}");

        // Re-ordering is answer-preserving.
        let after = prepared.execute(&db).unwrap();
        assert_eq!(before.under, after.under);
        assert_eq!(before.over, after.over);
        // And cheaper: the D-first order scans once and probes A once per
        // distinct binding batch instead of calling D per A row.
        assert!(
            after.stats.calls < before.stats.calls,
            "{} vs {}",
            after.stats.calls,
            before.stats.calls
        );
    }

    #[test]
    fn blown_estimates_surface_then_recalibration_clears_the_plan() {
        let (mut prepared, db) = scenario();
        let static_model = CostModel::new();
        // Annotate the compiled plan with static estimates so the executor
        // can compare observed cardinality against them. Understate A's
        // extent so its scan (40 real rows vs 1 estimated) blows the
        // 10× threshold.
        let skewed = CostModel::new().with_extent("A", 1.0).with_extent("D", 1.0);
        let physical = crate::lower::lower(prepared.plans(), prepared.schema(), &skewed);
        prepared.replace_plans(prepared.plans().clone(), physical);

        let rec = Recorder::with_journal(lap_obs::journal::JournalConfig::light());
        {
            let mut reg = SourceRegistry::new(&db, prepared.schema()).recording(&rec);
            lap_engine::execute_physical_union(
                &prepared.physical().under,
                &mut reg,
                lap_engine::ExecConfig::default(),
            )
            .unwrap();
        }
        assert!(
            rec.snapshot().counter("exec.estimate_blown") > 0,
            "misestimated join must leave the escape-hatch marker"
        );
        let snap = rec.journal().unwrap().snapshot();
        assert!(
            snap.events.iter().any(|e| e.kind == lap_obs::journal::kind::ESTIMATE_BLOWN),
            "journal carries the estimate-blown event"
        );

        // The recorded journal feeds the recalibration that fixes the plan.
        let mut feedback = FeedbackStore::new();
        feedback.fold(&snap);
        let changed =
            recalibrate_prepared(&mut prepared, &static_model, &feedback, Strategy::Exhaustive);
        assert!(changed);
    }
}
