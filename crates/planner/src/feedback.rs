//! Adaptive re-planning from flight-recorder feedback.
//!
//! The static [`CostModel`] guesses extents; the journal records what the
//! sources actually did. [`CostModel::calibrated`] turns a folded
//! [`FeedbackStore`] into a re-costed model; [`recalibrate_prepared`]
//! closes the loop for a long-lived [`PreparedQuery`]: re-order its plan
//! bodies under the calibrated model, re-lower with **dual** cost
//! annotations (static `est` next to calibrated `cal`), and swap the
//! physical trees in place so the *next* execution runs the new plan.
//!
//! Re-ordering the same bodies is answer-preserving — every order of one
//! executable body computes the same relation — so a calibrated plan may
//! only differ in calls and latency, never in answers. That invariant is
//! what lets the mid-query escape hatch stay lazy: when an execution blows
//! an estimate (the engine's `exec.estimate.blown` marker), the current
//! run completes correctly and only the next one re-plans.

use crate::cost::CostModel;
use crate::lower::lower_dual;
use crate::order::{optimize_plan_pair, Strategy};
use lap_core::{PlanCache, PreparedProgram, PreparedQuery};
use lap_obs::FeedbackStore;

/// Re-plans `prepared` under `static_model` calibrated with `feedback`:
/// the plan bodies are re-ordered by `strategy` under the calibrated
/// model and re-lowered with dual (static + calibrated) cost annotations.
/// Returns `true` when the calibrated ordering differs from the compiled
/// one (the next [`PreparedQuery::execute`] runs a different plan).
///
/// **Ownership invariant:** this mutates `prepared` in place, so it is
/// only sound for an entry the caller *exclusively owns* (the `&mut`
/// enforces it locally, but an owner must also not have handed out
/// clones-by-`Arc` of the entry). A query mutated while another session
/// executes it would tear — plans and physical trees swapped mid-read.
/// For entries shared through a [`PlanCache`] use
/// [`recalibrate_published`], which builds the recalibrated entry aside
/// and swaps the cache slot atomically instead.
pub fn recalibrate_prepared(
    prepared: &mut PreparedQuery,
    static_model: &CostModel,
    feedback: &FeedbackStore,
    strategy: Strategy,
) -> bool {
    let calibrated = static_model.calibrated(feedback);
    let optimized = optimize_plan_pair(prepared.plans(), prepared.schema(), &calibrated, strategy);
    let changed = optimized != *prepared.plans();
    let physical = lower_dual(&optimized, prepared.schema(), static_model, &calibrated);
    prepared.replace_plans(optimized, physical);
    changed
}

/// Replace-on-publish recalibration of a **cache-shared** program: looks
/// the entry up without disturbing the hit/miss accounting, clones its
/// queries, recalibrates the clones aside ([`recalibrate_prepared`] on
/// owned copies), and — only when some ordering actually changed —
/// publishes the rebuilt [`PreparedProgram`] through
/// [`PlanCache::publish`], which swaps the slot atomically.
///
/// From the cache's view the entry is never in a half-recalibrated state:
/// a lookup observes either the old program or the new one, and sessions
/// already holding the old `Arc` finish on internally-consistent plans.
/// Returns `true` when a recalibrated entry was published, `false` when
/// the key is absent or calibration left every ordering unchanged (in
/// which case the cache is untouched).
pub fn recalibrate_published(
    cache: &PlanCache<PreparedProgram>,
    key: &str,
    static_model: &CostModel,
    feedback: &FeedbackStore,
    strategy: Strategy,
) -> bool {
    let Some(current) = cache.peek(key) else {
        return false;
    };
    // Build aside: recalibrate owned clones, never the shared entry.
    let mut queries: Vec<PreparedQuery> = current.queries().to_vec();
    let mut changed = false;
    for q in &mut queries {
        changed |= recalibrate_prepared(q, static_model, feedback, strategy);
    }
    if !changed {
        return false;
    }
    let next = current.with_queries(queries);
    let bytes = next.estimated_bytes();
    cache.publish(key, next, bytes);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_engine::{Database, PhysOp, SourceRegistry};
    use lap_ir::parse_program;
    use lap_obs::Recorder;

    /// A schema where the static model (uniform extents) seeds the plan
    /// with the free-scan A and hammers D^io once per A row, while the
    /// true extents make the D^oo scan-first order far cheaper.
    const PROGRAM: &str = "A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).";

    fn scenario() -> (PreparedQuery, Database) {
        let p = parse_program(PROGRAM).unwrap();
        let q = p.single_query().unwrap();
        let prepared = PreparedQuery::compile(q, &p.schema);
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("A({i}). "));
        }
        for i in 0..8 {
            facts.push_str(&format!("D({i}, {}). ", 100 + i));
        }
        let db = Database::from_facts(&facts).unwrap();
        (prepared, db)
    }

    /// Folds a feedback store out of one recorded execution of `prepared`.
    fn record_feedback(prepared: &PreparedQuery, db: &Database) -> FeedbackStore {
        let rec = Recorder::with_journal(lap_obs::journal::JournalConfig::light());
        let mut reg = SourceRegistry::new(db, prepared.schema()).recording(&rec);
        lap_engine::execute_physical_union(
            &prepared.physical().under,
            &mut reg,
            lap_engine::ExecConfig::default(),
        )
        .unwrap();
        let mut store = FeedbackStore::new();
        store.fold(&rec.journal().unwrap().snapshot());
        store
    }

    #[test]
    fn recalibration_reorders_and_dual_annotates() {
        let (mut prepared, db) = scenario();
        let before = prepared.execute(&db).unwrap();
        let static_model = CostModel::new();
        let feedback = record_feedback(&prepared, &db);

        let changed =
            recalibrate_prepared(&mut prepared, &static_model, &feedback, Strategy::Exhaustive);
        assert!(changed, "calibrated extents must flip the join order");
        // The calibrated plan leads with the D^oo scan (8 rows observed)
        // instead of the 40-row A scan.
        let first = &prepared.physical().under.parts[0].ops[0];
        let PhysOp::Access(op) = first else { panic!("leaf is an access op") };
        assert_eq!(op.relation.as_str(), "D", "{}", prepared.physical().under.parts[0]);
        // Dual annotations: every operator carries est and cal.
        for op in &prepared.physical().under.parts[0].ops {
            assert!(op.cost().is_some(), "static estimate on {}", op.label());
            assert!(op.calibrated().is_some(), "calibrated estimate on {}", op.label());
        }
        let shown = prepared.physical().under.parts[0].to_string();
        assert!(shown.contains("est "), "{shown}");
        assert!(shown.contains("; cal "), "{shown}");

        // Re-ordering is answer-preserving.
        let after = prepared.execute(&db).unwrap();
        assert_eq!(before.under, after.under);
        assert_eq!(before.over, after.over);
        // And cheaper: the D-first order scans once and probes A once per
        // distinct binding batch instead of calling D per A row.
        assert!(
            after.stats.calls < before.stats.calls,
            "{} vs {}",
            after.stats.calls,
            before.stats.calls
        );
    }

    #[test]
    fn publish_swap_recalibration_is_atomic_from_the_caches_view() {
        use lap_core::{canonical_text, PlanCache, PreparedProgram};

        let (prepared, db) = scenario();
        let feedback = record_feedback(&prepared, &db);
        let static_model = CostModel::new();

        let cache: PlanCache<PreparedProgram> = PlanCache::new(lap_core::DEFAULT_CACHE_BYTES);
        let key = canonical_text(PROGRAM);
        let prog = PreparedProgram::compile(PROGRAM).unwrap();
        let bytes = prog.estimated_bytes();
        cache.insert(&key, prog, bytes);

        // A session mid-execution holds the shared entry.
        let held = cache.get(&key).unwrap();
        let before_plans = held.queries()[0].plans().clone();

        let published = recalibrate_published(
            &cache,
            &key,
            &static_model,
            &feedback,
            Strategy::Exhaustive,
        );
        assert!(published, "calibrated extents must flip the ordering and publish");

        // The held handle still sees the *old*, internally-consistent entry —
        // the recalibration was built aside, not applied in place.
        assert_eq!(*held.queries()[0].plans(), before_plans);

        // New lookups see the swapped entry, whose underestimate now leads
        // with the cheap D scan.
        let fresh = cache.get(&key).unwrap();
        assert_ne!(*fresh.queries()[0].plans(), before_plans);
        let first = &fresh.queries()[0].physical().under.parts[0].ops[0];
        let PhysOp::Access(op) = first else { panic!("leaf is an access op") };
        assert_eq!(op.relation.as_str(), "D");

        // Answer-preserving: old and new entries agree on every answer.
        let old_rep = held.queries()[0].execute(&db).unwrap();
        let new_rep = fresh.queries()[0].execute(&db).unwrap();
        assert_eq!(old_rep.under, new_rep.under);
        assert_eq!(old_rep.over, new_rep.over);

        // Accounting: one publish; the maintenance peek did not pollute the
        // hit/miss counters (only our two explicit gets did).
        let stats = cache.stats();
        assert_eq!(stats.publishes, 1, "{stats:?}");
        assert_eq!((stats.hits, stats.misses), (2, 0), "{stats:?}");

        // Re-running with the same feedback is a no-op — the published
        // entry is already calibrated — and an absent key never publishes.
        assert!(!recalibrate_published(&cache, &key, &static_model, &feedback, Strategy::Exhaustive));
        assert!(!recalibrate_published(&cache, "no-such-key", &static_model, &feedback, Strategy::Exhaustive));
        assert_eq!(cache.stats().publishes, 1);
    }

    #[test]
    fn blown_estimates_surface_then_recalibration_clears_the_plan() {
        let (mut prepared, db) = scenario();
        let static_model = CostModel::new();
        // Annotate the compiled plan with static estimates so the executor
        // can compare observed cardinality against them. Understate A's
        // extent so its scan (40 real rows vs 1 estimated) blows the
        // 10× threshold.
        let skewed = CostModel::new().with_extent("A", 1.0).with_extent("D", 1.0);
        let physical = crate::lower::lower(prepared.plans(), prepared.schema(), &skewed);
        prepared.replace_plans(prepared.plans().clone(), physical);

        let rec = Recorder::with_journal(lap_obs::journal::JournalConfig::light());
        {
            let mut reg = SourceRegistry::new(&db, prepared.schema()).recording(&rec);
            lap_engine::execute_physical_union(
                &prepared.physical().under,
                &mut reg,
                lap_engine::ExecConfig::default(),
            )
            .unwrap();
        }
        assert!(
            rec.snapshot().counter("exec.estimate_blown") > 0,
            "misestimated join must leave the escape-hatch marker"
        );
        let snap = rec.journal().unwrap().snapshot();
        assert!(
            snap.events.iter().any(|e| e.kind == lap_obs::journal::kind::ESTIMATE_BLOWN),
            "journal carries the estimate-blown event"
        );

        // The recorded journal feeds the recalibration that fixes the plan.
        let mut feedback = FeedbackStore::new();
        feedback.fold(&snap);
        let changed =
            recalibrate_prepared(&mut prepared, &static_model, &feedback, Strategy::Exhaustive);
        assert!(changed);
    }
}
