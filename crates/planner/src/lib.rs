//! Cost-based plan optimization over limited-access sources — the
//! "capability-based optimization" layer the paper's introduction situates
//! itself in (\[FLMS99, PGH98\]).
//!
//! The paper's algorithms settle *whether* an executable plan exists
//! (FEASIBLE) and produce *a* plan (PLAN\*'s ANSWERABLE order). This crate
//! makes those plans cheap to run:
//!
//! * [`CostModel`] / [`estimate_cost`] — calls-and-tuples estimates for an
//!   ordered body executed as nested-loop source calls;
//! * [`greedy_order`] / [`best_order`] — heuristic and exact search over
//!   *executable* orders;
//! * [`optimize_plan_pair`] — re-orders PLAN\* output per [`Strategy`];
//! * [`lower`] — lowers a plan pair to physical operator trees with
//!   per-operator cost annotations;
//! * [`CostModel::calibrated`] / [`lower_dual`] / [`recalibrate_prepared`]
//!   — the feedback loop: re-cost a model from a journal-fed
//!   [`lap_obs::FeedbackStore`], annotate plans with both the static and
//!   the calibrated estimate, and re-plan a prepared query whose
//!   estimates were blown at run time;
//! * [`minimal_executable_plan`] — shrinks a feasible query's `ans(Q)`
//!   plan to an equivalent executable plan with no removable disjunct or
//!   literal (fewer source calls than the Theorem-16 witness).
//!
//! ```
//! use lap_planner::{greedy_order, CostModel};
//! use lap_ir::parse_program;
//!
//! let p = parse_program(
//!     "L^o. B^ioo. C^oo.\n\
//!      Q(t) :- C(i, a), B(i, a, t), L(i).",
//! )
//! .unwrap();
//! let q = &p.single_query().unwrap().disjuncts[0];
//! let model = CostModel::new()
//!     .with_extent("L", 5.0)
//!     .with_extent("C", 2_000.0)
//!     .with_extent("B", 10_000.0);
//! let ordered = greedy_order(q, &p.schema, &model).unwrap();
//! // The cheap seed L(i) now leads the plan.
//! assert_eq!(ordered.body[0].atom.predicate.name.as_str(), "L");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod feedback;
mod lower;
mod minimize;
mod order;

pub use cost::{estimate_cost, CostModel, PlanCost};
pub use feedback::{recalibrate_prepared, recalibrate_published};
pub use lower::{annotate_union, annotate_union_calibrated, lower, lower_dual};
pub use minimize::minimal_executable_plan;
pub use order::{best_order, greedy_order, optimize_plan_pair, Strategy};
