//! A simple System-R-style cost model for executable bodies over
//! limited-access sources.
//!
//! Executable plans run as nested-loop joins where every positive literal
//! is a *remote call* (paper, Section 3: "execute … from left to right").
//! The dominant costs are therefore the **number of source calls** (one
//! per binding of the outer loops) and the **tuples transferred** (rows
//! matching the pushed input slots). Both are estimated from per-relation
//! extents and a per-bound-column selectivity, in the spirit of the
//! capability-based optimizers the paper builds on \[FLMS99, PGH98\].

use lap_engine::Database;
use lap_ir::{ConjunctiveQuery, Schema, Symbol, Term, Var};
use lap_obs::FeedbackStore;
use std::collections::{HashMap, HashSet};

/// Per-relation statistics driving the estimates.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fallback extent for relations without statistics.
    pub default_extent: f64,
    /// Fraction of an extent matching one bound column (applied once per
    /// input slot *and* per bound output column filtered client-side).
    pub selectivity: f64,
    /// Batch width the vectorized executor is assumed to run at; the
    /// width-aware `batches` term of an [`OpCost`](lap_engine::OpCost) is
    /// incoming bindings over this. Matches `ExecConfig`'s default width.
    pub batch_width: f64,
    extents: HashMap<Symbol, f64>,
    /// Per-relation call-cost multipliers in units of one healthy-baseline
    /// call. Empty (weight 1.0 everywhere) for static models; a calibrated
    /// model weighs calls to slow or failing sources by their observed
    /// effective latency, so the `calls` component of a [`PlanCost`] reads
    /// as "healthy-call equivalents".
    call_weights: HashMap<Symbol, f64>,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            default_extent: 100.0,
            selectivity: 0.1,
            batch_width: 1024.0,
            extents: HashMap::new(),
            call_weights: HashMap::new(),
        }
    }
}

impl CostModel {
    /// A model with uniform defaults (no statistics).
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Builds a model with exact extents taken from a database instance.
    pub fn from_database(db: &Database) -> CostModel {
        let mut model = CostModel::default();
        for (name, rel) in db.iter() {
            model.extents.insert(name, rel.len() as f64);
        }
        model
    }

    /// Overrides one relation's extent (builder style).
    pub fn with_extent(mut self, name: &str, extent: f64) -> CostModel {
        self.extents.insert(Symbol::intern(name), extent);
        self
    }

    /// Overrides the assumed executor batch width (builder style). Clamped
    /// to at least one row per window.
    pub fn with_batch_width(mut self, batch_width: usize) -> CostModel {
        self.batch_width = batch_width.max(1) as f64;
        self
    }

    /// The (estimated) extent of a relation.
    pub fn extent(&self, name: Symbol) -> f64 {
        self.extents.get(&name).copied().unwrap_or(self.default_extent)
    }

    /// Overrides one relation's call-cost multiplier (builder style).
    pub fn with_call_weight(mut self, name: &str, weight: f64) -> CostModel {
        self.call_weights.insert(Symbol::intern(name), weight.max(0.0));
        self
    }

    /// The call-cost multiplier of a relation (1.0 without statistics).
    pub fn call_weight(&self, name: Symbol) -> f64 {
        self.call_weights.get(&name).copied().unwrap_or(1.0)
    }

    /// True iff any relation carries a non-unit call weight (i.e. the
    /// model was calibrated against observed source health).
    pub fn has_call_weights(&self) -> bool {
        self.call_weights.values().any(|&w| (w - 1.0).abs() > 1e-9)
    }

    /// Re-costs this model from journal-fed observations: per-relation
    /// extents are backed out of the observed rows-per-call (a pattern
    /// with *k* input slots observes `extent × selectivity^k` rows per
    /// call, so `extent ≈ rows_per_call / selectivity^k`, averaged over
    /// patterns weighted by successful calls), and per-relation call
    /// weights are the observed effective per-call virtual milliseconds —
    /// attempts-per-success × mean latency plus retry backoff — relative
    /// to the cheapest observed source. Relations with no folded traffic
    /// keep the static extent and unit weight, so an uncalibrated source
    /// is treated like the healthy baseline.
    pub fn calibrated(&self, feedback: &FeedbackStore) -> CostModel {
        let mut out = self.clone();
        // Extents from observed rows-per-call.
        let mut extent_acc: HashMap<Symbol, (f64, f64)> = HashMap::new();
        // Effective per-call cost per relation, weighted by attempts.
        let mut effective: HashMap<Symbol, (f64, f64)> = HashMap::new();
        for profile in feedback.profiles.values() {
            let name = Symbol::intern(&profile.relation);
            if profile.ok > 0 {
                let backed_out = profile.rows_per_call()
                    / self.selectivity.powi(profile.num_inputs() as i32).max(1e-12);
                let weight = profile.ok as f64;
                let acc = extent_acc.entry(name).or_insert((0.0, 0.0));
                acc.0 += backed_out * weight;
                acc.1 += weight;
            }
            if profile.attempts > 0 {
                let weight = profile.attempts as f64;
                let acc = effective.entry(name).or_insert((0.0, 0.0));
                acc.0 += profile.effective_call_ms() * weight;
                acc.1 += weight;
            }
        }
        for (name, (sum, weight)) in extent_acc {
            out.extents.insert(name, (sum / weight).max(1.0));
        }
        let per_call: Vec<(Symbol, f64)> = effective
            .into_iter()
            .map(|(name, (sum, weight))| (name, sum / weight))
            .collect();
        let baseline = per_call
            .iter()
            .map(|&(_, ms)| ms)
            .fold(f64::INFINITY, f64::min)
            .max(1.0);
        for (name, ms) in per_call {
            out.call_weights.insert(name, (ms / baseline).max(1.0));
        }
        out
    }
}

/// Estimated execution cost of an ordered body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanCost {
    /// Estimated number of source calls.
    pub calls: f64,
    /// Estimated number of tuples transferred from sources.
    pub tuples: f64,
}

impl PlanCost {
    /// Scalar objective: calls dominate (a remote round-trip is much more
    /// expensive than one extra row on an open connection).
    pub fn total(&self) -> f64 {
        self.calls + 0.01 * self.tuples
    }

    /// Zero cost.
    pub fn zero() -> PlanCost {
        PlanCost {
            calls: 0.0,
            tuples: 0.0,
        }
    }
}

/// Estimates the cost of executing `cq`'s body **in its given order**.
/// Returns `None` if the order is not executable under `schema`.
///
/// The estimate walks the body once, tracking the expected number of
/// binding tuples flowing into each literal:
///
/// * a positive literal issues one call per incoming binding; each call
///   returns `extent × selectivity^(#input slots)` rows, thinned further by
///   `selectivity` for every *additional* bound position filtered
///   client-side;
/// * a negative literal issues one membership call per binding and keeps
///   half of them (a conventional default).
///
/// Calls are weighted by the model's per-relation call weight (unit for a
/// static model), so a calibrated model charges calls to degraded sources
/// at their observed effective latency.
pub fn estimate_cost(cq: &ConjunctiveQuery, schema: &Schema, model: &CostModel) -> Option<PlanCost> {
    let mut bound: HashSet<Var> = HashSet::new();
    let mut bindings = 1.0f64; // tuples flowing into the next literal
    let mut cost = PlanCost::zero();
    for lit in &cq.body {
        let decl = schema.relation(lit.atom.predicate.name)?;
        let arg_bound = |j: usize| match lit.atom.args[j] {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(&v),
        };
        let bound_positions = (0..lit.atom.args.len()).filter(|&j| arg_bound(j)).count();
        if lit.positive {
            let pattern = decl.usable_pattern(arg_bound)?;
            let per_call_transfer = (model.extent(lit.atom.predicate.name)
                * model.selectivity.powi(pattern.num_inputs() as i32))
            .max(0.0);
            // Client-side filtering on bound outputs / repeated vars.
            let extra_filters = bound_positions.saturating_sub(pattern.num_inputs());
            let surviving = per_call_transfer * model.selectivity.powi(extra_filters as i32);
            cost.calls += bindings * model.call_weight(lit.atom.predicate.name);
            cost.tuples += bindings * per_call_transfer;
            bindings *= surviving.max(0.0);
        } else {
            if bound_positions != lit.atom.args.len() || decl.patterns.is_empty() {
                return None; // unbound negation: not executable
            }
            cost.calls += bindings * model.call_weight(lit.atom.predicate.name);
            // Membership probes transfer at most the matching row(s).
            cost.tuples += bindings;
            bindings *= 0.5;
        }
        bound.extend(lit.vars());
    }
    Some(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::{parse_cq, parse_program};

    fn setup(text: &str) -> (ConjunctiveQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().disjuncts[0].clone(), p.schema)
    }

    #[test]
    fn selective_first_literal_is_cheaper() {
        // Scanning tiny L first, then calling B by isbn, beats scanning
        // huge C first.
        let (q1, schema) = setup(
            "L^o. B^ioo. C^oo.\n\
             Q(t) :- L(i), B(i, a, t), C(i, a).",
        );
        let q2 = parse_cq("Q(t) :- C(i, a), B(i, a, t), L(i).").unwrap();
        let model = CostModel::new()
            .with_extent("L", 5.0)
            .with_extent("B", 10_000.0)
            .with_extent("C", 2_000.0);
        let c1 = estimate_cost(&q1, &schema, &model).unwrap();
        let c2 = estimate_cost(&q2, &schema, &model).unwrap();
        assert!(c1.total() < c2.total(), "{c1:?} vs {c2:?}");
    }

    #[test]
    fn non_executable_order_has_no_cost() {
        let (q, schema) = setup(
            "B^ioo. C^oo.\n\
             Q(t) :- B(i, a, t), C(i, a).",
        );
        let model = CostModel::new();
        assert!(estimate_cost(&q, &schema, &model).is_none());
    }

    #[test]
    fn negative_literal_needs_all_bound() {
        let (q, schema) = setup(
            "L^o. C^oo.\n\
             Q(i) :- not L(i), C(i, a).",
        );
        assert!(estimate_cost(&q, &schema, &CostModel::new()).is_none());
        let ok = parse_cq("Q(i) :- C(i, a), not L(i).").unwrap();
        assert!(estimate_cost(&ok, &schema, &CostModel::new()).is_some());
    }

    #[test]
    fn from_database_uses_real_extents() {
        let db = Database::from_facts("R(1). R(2). R(3). S(1).").unwrap();
        let model = CostModel::from_database(&db);
        assert_eq!(model.extent(Symbol::intern("R")), 3.0);
        assert_eq!(model.extent(Symbol::intern("S")), 1.0);
        assert_eq!(model.extent(Symbol::intern("Z")), model.default_extent);
    }

    #[test]
    fn more_input_slots_transfer_fewer_tuples() {
        let (q_io, schema_io) = setup("S^o. R^io.\nQ(x, y) :- S(x), R(x, y).");
        let (q_oo, schema_oo) = setup("S^o. R^oo.\nQ(x, y) :- S(x), R(x, y).");
        let model = CostModel::new();
        let pushed = estimate_cost(&q_io, &schema_io, &model).unwrap();
        let scanned = estimate_cost(&q_oo, &schema_oo, &model).unwrap();
        assert!(pushed.tuples < scanned.tuples);
    }
}
