//! Cost-annotated lowering: PLAN\* output → physical operator trees with
//! per-operator [`OpCost`] estimates.
//!
//! [`lower`] is the planner's counterpart of [`lap_core::lower_pair`]: the
//! same total lowering pass, followed by an annotation walk that mirrors
//! [`estimate_cost`](crate::estimate_cost) operator by operator — each
//! access/join operator is charged one call per expected incoming binding
//! and `extent × selectivity^inputs` transferred tuples per call, each
//! negation one membership probe per binding. The final projection carries
//! the pipeline totals, so the root of the printed tree reads as the
//! whole-plan estimate.
//!
//! Annotation stops at the first non-executable operator (no usable
//! pattern, unknown relation, or unbound negation): downstream estimates
//! would be meaningless, and such plans only exist to raise their error
//! lazily.

use crate::cost::CostModel;
use lap_core::{PhysicalPair, PlanPair};
use lap_engine::{ArgSource, OpCost, PhysOp, PhysicalPlan, PhysicalUnion};
use lap_ir::{Schema, Var};
use std::collections::HashSet;

/// Which annotation slot a pass writes: the static estimate shown as
/// `est …`, or the journal-calibrated one shown as `cal …`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CostSlot {
    Static,
    Calibrated,
}

/// Lowers both PLAN\* estimate plans to physical trees and annotates every
/// operator with its [`OpCost`] under `model`.
pub fn lower(pair: &PlanPair, schema: &Schema, model: &CostModel) -> PhysicalPair {
    let mut physical = lap_core::lower_pair(pair, schema);
    annotate_union(&mut physical.under, model);
    annotate_union(&mut physical.over, model);
    physical
}

/// [`lower`] with **both** annotations: every operator carries the static
/// estimate under `static_model` *and* the calibrated one under
/// `calibrated_model`, so `explain` renders `(est …; cal …)` and the
/// reader sees why the calibrated plan differs from the static one.
pub fn lower_dual(
    pair: &PlanPair,
    schema: &Schema,
    static_model: &CostModel,
    calibrated_model: &CostModel,
) -> PhysicalPair {
    let mut physical = lap_core::lower_pair(pair, schema);
    for union in [&mut physical.under, &mut physical.over] {
        for plan in &mut union.parts {
            annotate_plan(plan, static_model, CostSlot::Static);
            annotate_plan(plan, calibrated_model, CostSlot::Calibrated);
        }
    }
    physical
}

/// Annotates one lowered union in place (exposed for callers that lowered
/// through [`lap_core::UnionPlan::lower`] directly).
pub fn annotate_union(union: &mut PhysicalUnion, model: &CostModel) {
    for plan in &mut union.parts {
        annotate_plan(plan, model, CostSlot::Static);
    }
}

/// Like [`annotate_union`], but fills the *calibrated* annotation slot,
/// leaving any static estimates in place.
pub fn annotate_union_calibrated(union: &mut PhysicalUnion, model: &CostModel) {
    for plan in &mut union.parts {
        annotate_plan(plan, model, CostSlot::Calibrated);
    }
}

fn annotate_plan(plan: &mut PhysicalPlan, model: &CostModel, slot: CostSlot) {
    let mut bound: HashSet<Var> = HashSet::new();
    let mut bindings = 1.0f64;
    let mut total = OpCost {
        calls: 0.0,
        tuples: 0.0,
        batches: 0.0,
    };
    // Batch windows an operator sees: its incoming bindings over the
    // vectorized executor's width, never less than one window.
    let windows = |bindings: f64| (bindings / model.batch_width).ceil().max(1.0);
    // Split borrows: the walk needs each op mutably plus the slot table.
    let slots = plan.slots.clone();
    let arg_bound = |arg: &ArgSource, bound: &HashSet<Var>| match arg {
        ArgSource::Const(_) => true,
        ArgSource::Slot(s) => bound.contains(&slots[*s]),
    };
    for op in &mut plan.ops {
        let cost = match &*op {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => {
                let Some(pattern) = a.pattern else { return };
                let bound_positions =
                    a.args.iter().filter(|arg| arg_bound(arg, &bound)).count();
                let per_call_transfer = (model.extent(a.relation)
                    * model.selectivity.powi(pattern.num_inputs() as i32))
                .max(0.0);
                let extra_filters = bound_positions.saturating_sub(pattern.num_inputs());
                let surviving =
                    per_call_transfer * model.selectivity.powi(extra_filters as i32);
                let weighted_calls = bindings * model.call_weight(a.relation);
                let cost = OpCost {
                    calls: weighted_calls,
                    tuples: bindings * per_call_transfer,
                    batches: windows(bindings),
                };
                total.calls += weighted_calls;
                total.tuples += bindings * per_call_transfer;
                total.batches += cost.batches;
                bindings *= surviving.max(0.0);
                bound.extend(a.bound_after.iter().copied());
                cost
            }
            PhysOp::NegFilter(n) => {
                if !n.unbound.is_empty() {
                    return;
                }
                let weighted_calls = bindings * model.call_weight(n.relation);
                let cost = OpCost {
                    calls: weighted_calls,
                    tuples: bindings,
                    batches: windows(bindings),
                };
                total.calls += weighted_calls;
                total.tuples += bindings;
                total.batches += cost.batches;
                bindings *= 0.5;
                bound.extend(n.bound_after.iter().copied());
                cost
            }
            PhysOp::Project(_) => total,
        };
        match slot {
            CostSlot::Static => *op.cost_mut() = Some(cost),
            CostSlot::Calibrated => *op.calibrated_mut() = Some(cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_cost;
    use lap_core::plan_star;
    use lap_ir::parse_program;

    fn setup(text: &str) -> (PlanPair, Schema) {
        let p = parse_program(text).unwrap();
        (plan_star(p.single_query().unwrap(), &p.schema), p.schema)
    }

    #[test]
    fn project_cost_matches_estimate_cost_totals() {
        let (pair, schema) = setup(
            "L^o. B^ioo. C^oo.\n\
             Q(t) :- L(i), B(i, a, t), C(i, a).",
        );
        let model = CostModel::new()
            .with_extent("L", 5.0)
            .with_extent("B", 10_000.0)
            .with_extent("C", 2_000.0);
        let physical = lower(&pair, &schema, &model);
        let plan = &physical.under.parts[0];
        let expected = estimate_cost(&pair.under.parts[0].cq, &schema, &model).unwrap();
        let PhysOp::Project(p) = plan.ops.last().unwrap() else { panic!() };
        let got = p.cost.unwrap();
        assert!((got.calls - expected.calls).abs() < 1e-9, "{got} vs {expected:?}");
        assert!((got.tuples - expected.tuples).abs() < 1e-9, "{got} vs {expected:?}");
        // Every operator carries an estimate, and the first scan costs one call.
        assert!(plan.ops.iter().all(|op| op.cost().is_some()));
        assert!((plan.ops[0].cost().unwrap().calls - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_width_scales_the_batches_term_only() {
        let (pair, schema) = setup(
            "L^o. B^ioo.\n\
             Q(t) :- L(i), B(i, a, t).",
        );
        // 5000 L rows reach the join: width 1024 → 5 windows, width 64 →
        // 79 windows, while calls/tuples are untouched by the width.
        let wide = CostModel::new().with_extent("L", 5_000.0).with_extent("B", 10.0);
        let narrow = wide.clone().with_batch_width(64);
        let join_wide = lower(&pair, &schema, &wide).under.parts[0].ops[1].cost().unwrap();
        let join_narrow =
            lower(&pair, &schema, &narrow).under.parts[0].ops[1].cost().unwrap();
        assert!((join_wide.batches - 5.0).abs() < 1e-9, "{join_wide}");
        assert!((join_narrow.batches - 79.0).abs() < 1e-9, "{join_narrow}");
        assert_eq!(join_wide.calls, join_narrow.calls);
        assert_eq!(join_wide.tuples, join_narrow.tuples);
        // A leaf access always sees exactly the one unit window.
        let leaf = lower(&pair, &schema, &wide).under.parts[0].ops[0].cost().unwrap();
        assert!((leaf.batches - 1.0).abs() < 1e-9, "{leaf}");
    }

    #[test]
    fn negation_halves_the_bindings() {
        let (pair, schema) = setup(
            "C^oo. L^o.\n\
             Q(i) :- C(i, a), not L(i), C(i, b).",
        );
        let model = CostModel::new().with_extent("C", 10.0).with_extent("L", 10.0);
        let physical = lower(&pair, &schema, &model);
        let ops = &physical.under.parts[0].ops;
        let neg = ops[1].cost().unwrap();
        let after = ops[2].cost().unwrap();
        assert!((neg.calls - 10.0).abs() < 1e-9); // one probe per C row
        assert!((after.calls - 5.0).abs() < 1e-9); // half survive
    }

    #[test]
    fn annotation_stops_at_non_executable_operators() {
        // Overestimate of a B^ii query: the answerable part is empty, so
        // the only ops are the projection — but force a broken pipeline via
        // an unorderable disjunct that PLAN* keeps (answerable prefix, then
        // nothing): use a query whose over plan keeps an executable prefix.
        let (pair, schema) = setup(
            "R^oo. B^ii.\n\
             Q(x) :- R(x, y), B(x, y).",
        );
        let model = CostModel::new();
        let physical = lower(&pair, &schema, &model);
        // The over plan is R(x, y) only (B is unanswerable and dropped), so
        // it annotates fully…
        assert!(physical.over.parts[0].ops.iter().all(|op| op.cost().is_some()));
        // …while a hand-lowered unexecutable order (B first, nothing bound)
        // stops at the error node.
        let p = parse_program("R^oo. B^ii.\nQ(x) :- B(x, y), R(x, y).").unwrap();
        let q = p.single_query().unwrap();
        let mut broken =
            lap_engine::lower_union(&[(q.disjuncts[0].clone(), vec![])], &schema);
        annotate_union(&mut broken, &model);
        let ops = &broken.parts[0].ops;
        assert!(ops[0].cost().is_none(), "error node gets no estimate");
        assert!(ops.last().unwrap().cost().is_none());
    }
}
