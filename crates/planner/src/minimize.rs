//! Minimal executable plans.
//!
//! Theorem 16 makes `ans(Q)` the *minimal feasible query containing* `Q` —
//! minimal as a query, not as a plan: it can still carry literals that are
//! redundant given the equivalence with `Q`, and every retained literal is
//! a source call at runtime. This module shrinks a feasible query's plan:
//! starting from `ans(Q)`, it drops disjuncts absorbed by the rest and
//! literals whose removal keeps the plan (a) orderable and (b) equivalent
//! to the original `Q` — so the result is still a correct executable plan,
//! with fewer calls.

use lap_containment::ucqn_equivalent;
use lap_core::{ans, executable_order, feasible, is_orderable_cq};
use lap_ir::{Schema, UnionQuery};

/// Computes a minimal executable plan for a **feasible** `q`: an
/// executable query equivalent to `q` from which no disjunct or literal
/// can be dropped without breaking equivalence. Returns `None` when `q` is
/// not feasible.
pub fn minimal_executable_plan(q: &UnionQuery, schema: &Schema) -> Option<UnionQuery> {
    if !feasible(q, schema) {
        return None;
    }
    let mut current = ans(q, schema);
    if current.is_false() {
        // Every disjunct was unsatisfiable: the minimal plan is `false`.
        return Some(current);
    }
    debug_assert!(ucqn_equivalent(&current, q));

    // Drop whole disjuncts while equivalence persists.
    let mut i = 0;
    while i < current.disjuncts.len() {
        let without = current.without_disjunct(i);
        if !without.disjuncts.is_empty() && ucqn_equivalent(&without, q) {
            current = without;
            i = 0;
        } else {
            i += 1;
        }
    }

    // Drop literals while the disjunct stays orderable and the union
    // equivalent.
    let mut d = 0;
    while d < current.disjuncts.len() {
        let mut l = 0;
        while l < current.disjuncts[d].body.len() {
            if current.disjuncts[d].body.len() == 1 {
                break;
            }
            let mut candidate_cq = current.disjuncts[d].clone();
            candidate_cq.body.remove(l);
            if candidate_cq.is_safe() && is_orderable_cq(&candidate_cq, schema) {
                let candidate = current.with_disjunct(d, candidate_cq);
                if ucqn_equivalent(&candidate, q) {
                    current = candidate;
                    l = 0;
                    continue;
                }
            }
            l += 1;
        }
        d += 1;
    }

    // Emit in executable order.
    let ordered: Vec<_> = current
        .disjuncts
        .iter()
        .map(|cq| executable_order(cq, schema).expect("minimized plan stays orderable"))
        .collect();
    Some(UnionQuery::new(ordered).expect("heads unchanged"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_core::is_executable;
    use lap_ir::parse_program;

    fn setup(text: &str) -> (UnionQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().clone(), p.schema)
    }

    #[test]
    fn example_9_plan_shrinks_to_the_core() {
        // ans(Q) = F(x), B(x), F(z); the minimal plan drops F(z).
        let (q, schema) = setup("F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).");
        let plan = minimal_executable_plan(&q, &schema).unwrap();
        assert_eq!(plan.disjuncts.len(), 1);
        assert_eq!(plan.disjuncts[0].body.len(), 2);
        assert!(is_executable(&plan, &schema));
        assert!(ucqn_equivalent(&plan, &q));
    }

    #[test]
    fn example_10_plan_shrinks_to_one_disjunct() {
        let (q, schema) = setup(
            "F^o. G^o. H^o. B^i.\n\
             Q(x) :- F(x), G(x).\n\
             Q(x) :- F(x), H(x), B(y).\n\
             Q(x) :- F(x).",
        );
        let plan = minimal_executable_plan(&q, &schema).unwrap();
        assert_eq!(plan.disjuncts.len(), 1);
        assert_eq!(plan.disjuncts[0].to_string(), "Q(x) :- F(x).");
    }

    #[test]
    fn example_3_plan_collapses_the_twin_disjuncts() {
        let (q, schema) = setup(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        let plan = minimal_executable_plan(&q, &schema).unwrap();
        assert_eq!(plan.disjuncts.len(), 1);
        assert_eq!(plan.disjuncts[0].body.len(), 2);
        assert!(is_executable(&plan, &schema));
        assert!(ucqn_equivalent(&plan, &q));
    }

    #[test]
    fn all_unsat_query_gets_the_false_plan() {
        let (q, schema) = setup("R^oo.\nQ(x) :- R(x, y), not R(x, y).");
        let plan = minimal_executable_plan(&q, &schema).unwrap();
        assert!(plan.is_false());
    }

    #[test]
    fn infeasible_queries_have_no_plan() {
        let (q, schema) = setup("F^o. B^i.\nQ(x) :- F(x), B(y).");
        assert!(minimal_executable_plan(&q, &schema).is_none());
    }

    #[test]
    fn already_minimal_plans_are_unchanged_up_to_order() {
        let (q, schema) = setup("S^o. R^io.\nQ(x, y) :- S(x), R(x, y).");
        let plan = minimal_executable_plan(&q, &schema).unwrap();
        assert_eq!(plan.disjuncts[0].body.len(), 2);
        assert!(ucqn_equivalent(&plan, &q));
    }

    #[test]
    fn negated_redundancy_is_removed() {
        // ¬L(i) twice: one copy suffices.
        let (q, schema) = setup(
            "C^oo. L^o.\n\
             Q(i) :- C(i, a), not L(i), not L(i).",
        );
        let plan = minimal_executable_plan(&q, &schema).unwrap();
        assert_eq!(plan.disjuncts[0].body.len(), 2);
    }
}
