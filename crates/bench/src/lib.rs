//! Benchmark harness regenerating the paper's examples and the E1–E11
//! experiment tables.
//!
//! The paper (a theory paper) has no empirical tables; its "figures" are
//! the four algorithm listings and its empirical content is ten worked
//! examples plus complexity claims. This crate turns each of those into a
//! measured, reproducible experiment:
//!
//! * `cargo run --release -p lap-bench --bin experiments` prints every
//!   table (E1–E11); `--markdown` emits the EXPERIMENTS.md body; a list of
//!   ids (e.g. `e2 e11`) restricts the run.
//! * `cargo bench -p lap-bench` runs the micro-benchmarks (self-contained harness, see `microbench`), one
//!   group per algorithm figure plus containment and the baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;
pub mod runner;
pub mod tables;
