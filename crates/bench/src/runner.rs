//! The experiment suite E1–E24 (see DESIGN.md §6 and EXPERIMENTS.md).
//!
//! Each experiment returns a [`Table`]; the `experiments` binary prints
//! them all. Everything is seeded — rerunning reproduces identical
//! workloads (timings vary with the machine, shapes should not).

use crate::tables::{fmt_duration, time_median, Table};
use lap_baselines::{cq_stable, cq_stable_star, ucq_stable, ucq_stable_star};
use lap_containment::{
    contained, cq_contained, cq_contained_acyclic, cq_contained_canonical, is_acyclic,
    ucqn_contained,
};
use lap_core::{
    answer_star, answer_star_with_domain, answerable_split, containment_to_feasibility, feasible,
    feasible_detailed, plan_star, Completeness, DecisionPath,
};
use lap_constraints::{feasible_under, prune_unsatisfiable, ConstraintSet, InclusionDep};
use lap_containment::ucqn_contained_stats;
use lap_engine::{eval_oracle, eval_ordered_union, SourceRegistry};
use lap_mediator::Mediator;
use lap_planner::{minimal_executable_plan, optimize_plan_pair, CostModel, Strategy};
use lap_ir::{parse_program, Predicate, Schema, UnionQuery};
use lap_workload::families::{
    excluded_middle_pair, feasible_not_orderable, forward_chain, gav_unfolding, reversed_chain,
    star,
};
use lap_workload::scenario::{bookstore, BookstoreConfig};
use lap_workload::{
    gen_instance, gen_instance_with_inclusion, gen_query, gen_schema, InstanceConfig, QueryConfig,
    SchemaConfig,
};
use lap_prng::StdRng;
use std::time::Duration;

/// Number of timing iterations per measured point.
const TIMING_ITERS: usize = 9;

fn default_schema(seed: u64) -> Schema {
    gen_schema(
        &SchemaConfig {
            num_relations: 5,
            min_arity: 1,
            max_arity: 3,
            patterns_per_relation: 2,
            input_fraction: 0.4,
            free_scan_fraction: 0.5,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

fn query_cfg(disjuncts: usize, positives: usize, negatives: usize) -> QueryConfig {
    QueryConfig {
        num_disjuncts: disjuncts,
        positive_per_disjunct: positives,
        negative_per_disjunct: negatives,
        extra_vars: 2,
        head_arity: 2,
        constant_fraction: 0.1,
        constant_pool: 3,
    }
}

/// E1 — example fidelity: each of the paper's ten worked examples produces
/// exactly the outcome the paper states.
pub fn e1_example_fidelity() -> Table {
    let mut t = Table::new(
        "E1 — paper example fidelity",
        "Each worked example of the paper, checked programmatically (see tests/paper_examples.rs for the full assertions).",
        &["example", "paper's claim", "reproduced"],
    );
    let checks: Vec<(&str, &str, bool)> = vec![
        ("Ex. 1", "bookstore query not executable, but feasible via reordering", {
            let p = parse_program(
                "B^ioo. B^oio. C^oo. L^o.\nQ(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
            )
            .unwrap();
            let q = p.single_query().unwrap();
            !lap_core::is_executable(q, &p.schema)
                && feasible_detailed(q, &p.schema).decided_by == DecisionPath::PlansCoincide
        }),
        ("Ex. 2", "B^ioo/B^oio admit by-isbn and by-author calls, not a free scan", {
            let schema = Schema::from_patterns(&[("B", "ioo"), ("B", "oio")]).unwrap();
            let decl = schema.relation(lap_ir::Symbol::intern("B")).unwrap();
            decl.callable_with(|j| j == 0)
                && decl.callable_with(|j| j == 1)
                && !decl.callable_with(|_| false)
        }),
        ("Ex. 3", "two-rule union feasible but not orderable", {
            let inst = feasible_not_orderable(1);
            !lap_core::is_orderable(&inst.query, &inst.schema)
                && feasible(&inst.query, &inst.schema)
        }),
        ("Ex. 4", "PLAN* yields the printed Qu (T only) and Qo (with y = null)", {
            let p = parse_program(
                "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
            )
            .unwrap();
            let pair = plan_star(p.single_query().unwrap(), &p.schema);
            pair.under.parts.len() == 1
                && pair.over.parts.len() == 2
                && pair.over.parts[0].to_string() == "Q(x, y) :- R(x, z), not S(z), y = null."
        }),
        ("Ex. 5", "infeasible query, yet runtime-complete on an R.z ⊆ S instance", {
            let p = parse_program(
                "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
            )
            .unwrap();
            let q = p.single_query().unwrap();
            let db = lap_engine::Database::from_facts("R(1, 10). S(10). T(7, 8). B(1, 4).").unwrap();
            !feasible(q, &p.schema) && answer_star(q, &p.schema, &db).unwrap().is_complete()
        }),
        ("Ex. 6", "foreign-key-closed instances are always runtime-complete", {
            let p = parse_program(
                "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
            )
            .unwrap();
            let q = p.single_query().unwrap();
            (0..5u64).all(|seed| {
                let db = gen_instance_with_inclusion(
                    &p.schema,
                    &InstanceConfig { domain_size: 8, tuples_per_relation: 10 },
                    "R", 1, "S", 0,
                    &mut StdRng::seed_from_u64(seed),
                );
                answer_star(q, &p.schema, &db).unwrap().is_complete()
            })
        }),
        ("Ex. 7", "surviving overestimate binding yields (a, null), no numeric bound", {
            let p = parse_program(
                "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
            )
            .unwrap();
            let db = lap_engine::Database::from_facts("R(1, 2). S(3). B(1, 9).").unwrap();
            let rep = answer_star(p.single_query().unwrap(), &p.schema, &db).unwrap();
            rep.delta.contains(&vec![lap_engine::Value::int(1), lap_engine::Value::Null])
                && rep.completeness == Completeness::Unknown
        }),
        ("Ex. 8", "dom(y) view turns the false underestimate into a working plan", {
            let p = parse_program(
                "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
            )
            .unwrap();
            let db = lap_engine::Database::from_facts("R(1, 2). S(3). B(1, 2). T(5, 6).").unwrap();
            let rep = answer_star_with_domain(p.single_query().unwrap(), &p.schema, &db, 10_000)
                .unwrap();
            rep.improved_under.len() == 2 && rep.base.under.len() == 1
        }),
        ("Ex. 9", "CQstable minimizes to F,B; CQstable*/FEASIBLE check ans ⊑ Q; all accept", {
            let p = parse_program("F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).").unwrap();
            let q = p.single_query().unwrap();
            let cq = &q.disjuncts[0];
            lap_containment::minimize_cq(cq).body.len() == 2
                && cq_stable(cq, &p.schema)
                && cq_stable_star(cq, &p.schema)
                && feasible(q, &p.schema)
        }),
        ("Ex. 10", "UCQstable minimizes to F; UCQstable*/FEASIBLE accept the union", {
            let p = parse_program(
                "F^o. G^o. H^o. B^i.\nQ(x) :- F(x), G(x).\nQ(x) :- F(x), H(x), B(y).\nQ(x) :- F(x).",
            )
            .unwrap();
            let q = p.single_query().unwrap();
            lap_containment::minimize_ucq(q).disjuncts.len() == 1
                && ucq_stable(q, &p.schema)
                && ucq_stable_star(q, &p.schema)
                && feasible(q, &p.schema)
        }),
    ];
    for (id, claim, ok) in checks {
        t.row(vec![
            id.to_owned(),
            claim.to_owned(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// Fits the growth exponent between consecutive (n, time) points.
fn growth_exponent(prev: (usize, Duration), cur: (usize, Duration)) -> f64 {
    let dn = (cur.0 as f64 / prev.0 as f64).ln();
    let dt = (cur.1.as_nanos().max(1) as f64 / prev.1.as_nanos().max(1) as f64).ln();
    dt / dn
}

/// E2 — ANSWERABLE scaling (Fig. 1; Proposition 2 claims quadratic time).
pub fn e2_answerable_scaling(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E2 — ANSWERABLE scaling (Fig. 1)",
        "Reversed chains force one discovery per pass (worst case, claim: quadratic); forward chains finish in one pass (claim: linear). exponent = log-log slope vs previous row.",
        &["n (literals)", "reversed chain", "exp", "forward chain", "exp"],
    );
    let mut prev: Option<((usize, Duration), (usize, Duration))> = None;
    for &n in sizes {
        let rev = reversed_chain(n);
        let fwd = forward_chain(n);
        let d_rev = time_median(TIMING_ITERS, || {
            std::hint::black_box(answerable_split(&rev.query.disjuncts[0], &rev.schema));
        });
        let d_fwd = time_median(TIMING_ITERS, || {
            std::hint::black_box(answerable_split(&fwd.query.disjuncts[0], &fwd.schema));
        });
        let (e_rev, e_fwd) = match prev {
            Some((pr, pf)) => (
                format!("{:.2}", growth_exponent(pr, (n, d_rev))),
                format!("{:.2}", growth_exponent(pf, (n, d_fwd))),
            ),
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            n.to_string(),
            fmt_duration(d_rev),
            e_rev,
            fmt_duration(d_fwd),
            e_fwd,
        ]);
        prev = Some(((n, d_rev), (n, d_fwd)));
    }
    t
}

/// E3 — PLAN\* scaling (Fig. 2; claim: quadratic).
pub fn e3_plan_star_scaling(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E3 — PLAN* scaling (Fig. 2)",
        "PLAN* = ANSWERABLE per disjunct + plan assembly; same quadratic worst case. Star queries have maximal fan-out at one variable.",
        &["n (literals)", "reversed chain", "star", "2-disjunct union"],
    );
    for &n in sizes {
        let rev = reversed_chain(n);
        let st = star(n);
        let fno = feasible_not_orderable(n);
        let d_rev = time_median(TIMING_ITERS, || {
            std::hint::black_box(plan_star(&rev.query, &rev.schema));
        });
        let d_star = time_median(TIMING_ITERS, || {
            std::hint::black_box(plan_star(&st.query, &st.schema));
        });
        let d_fno = time_median(TIMING_ITERS, || {
            std::hint::black_box(plan_star(&fno.query, &fno.schema));
        });
        t.row(vec![
            n.to_string(),
            fmt_duration(d_rev),
            fmt_duration(d_star),
            fmt_duration(d_fno),
        ]);
    }
    t
}

/// E4 — how often FEASIBLE's fast paths decide without containment.
pub fn e4_fast_path_effectiveness(num_queries: usize) -> Table {
    let mut t = Table::new(
        "E4 — FEASIBLE fast-path effectiveness (Fig. 3)",
        "Random UCQ¬ workloads: fraction of feasibility decisions reached by each branch, and the mean decision time per branch.",
        &["negatives/disjunct", "plans coincide", "null shortcut", "containment needed", "mean time (coincide)", "mean time (containment)"],
    );
    for negs in 0..=3usize {
        let mut counts = [0usize; 3];
        let mut time_fast = Duration::ZERO;
        let mut time_slow = Duration::ZERO;
        for seed in 0..num_queries as u64 {
            let schema = default_schema(seed % 16);
            let q = gen_query(&schema, &query_cfg(2, 3, negs), &mut StdRng::seed_from_u64(seed));
            let t0 = std::time::Instant::now();
            let report = feasible_detailed(&q, &schema);
            let dt = t0.elapsed();
            match report.decided_by {
                DecisionPath::PlansCoincide => {
                    counts[0] += 1;
                    time_fast += dt;
                }
                DecisionPath::OverestimateHasNull => counts[1] += 1,
                DecisionPath::ContainmentCheck => {
                    counts[2] += 1;
                    time_slow += dt;
                }
            }
        }
        let pct = |c: usize| format!("{:.0}%", 100.0 * c as f64 / num_queries as f64);
        let mean = |total: Duration, c: usize| {
            if c == 0 {
                "-".to_owned()
            } else {
                fmt_duration(total / c as u32)
            }
        };
        t.row(vec![
            negs.to_string(),
            pct(counts[0]),
            pct(counts[1]),
            pct(counts[2]),
            mean(time_fast, counts[0]),
            mean(time_slow, counts[2]),
        ]);
    }
    t
}

/// E5 — CQ baselines: CQstable vs CQstable\* (≡ FEASIBLE on CQ).
pub fn e5_cq_baselines(num_queries: usize) -> Table {
    let mut t = Table::new(
        "E5 — CQ feasibility: CQstable vs CQstable*/FEASIBLE (§5.3)",
        "Random plain CQs; the three algorithms must agree; CQstable pays for minimization up front, CQstable* can skip the containment when ans(Q) = Q.",
        &["positives", "agreement", "CQstable", "CQstable*", "FEASIBLE"],
    );
    for positives in [3usize, 5, 7] {
        let mut agree = true;
        let queries: Vec<(UnionQuery, Schema)> = (0..num_queries as u64)
            .map(|seed| {
                let schema = default_schema(seed % 16);
                let q = gen_query(
                    &schema,
                    &query_cfg(1, positives, 0),
                    &mut StdRng::seed_from_u64(1000 + seed),
                );
                (q, schema)
            })
            .collect();
        for (q, schema) in &queries {
            let f = feasible(q, schema);
            agree &= cq_stable(&q.disjuncts[0], schema) == f
                && cq_stable_star(&q.disjuncts[0], schema) == f;
        }
        let d_stable = time_median(3, || {
            for (q, schema) in &queries {
                std::hint::black_box(cq_stable(&q.disjuncts[0], schema));
            }
        });
        let d_star = time_median(3, || {
            for (q, schema) in &queries {
                std::hint::black_box(cq_stable_star(&q.disjuncts[0], schema));
            }
        });
        let d_feasible = time_median(3, || {
            for (q, schema) in &queries {
                std::hint::black_box(feasible(q, schema));
            }
        });
        t.row(vec![
            positives.to_string(),
            if agree { "100%".into() } else { "DISAGREE".into() },
            fmt_duration(d_stable / num_queries as u32),
            fmt_duration(d_star / num_queries as u32),
            fmt_duration(d_feasible / num_queries as u32),
        ]);
    }
    t
}

/// E6 — UCQ baselines: UCQstable vs UCQstable\* vs FEASIBLE.
pub fn e6_ucq_baselines(num_queries: usize) -> Table {
    let mut t = Table::new(
        "E6 — UCQ feasibility: UCQstable vs UCQstable* vs FEASIBLE (§5.4)",
        "Random plain UCQs; all three must agree. UCQstable minimizes the union first; UCQstable* and FEASIBLE avoid minimization.",
        &["disjuncts", "agreement", "UCQstable", "UCQstable*", "FEASIBLE"],
    );
    for disjuncts in [2usize, 4, 6] {
        let mut agree = true;
        let queries: Vec<(UnionQuery, Schema)> = (0..num_queries as u64)
            .map(|seed| {
                let schema = default_schema(seed % 16);
                let q = gen_query(
                    &schema,
                    &query_cfg(disjuncts, 3, 0),
                    &mut StdRng::seed_from_u64(2000 + seed),
                );
                (q, schema)
            })
            .collect();
        for (q, schema) in &queries {
            let f = feasible(q, schema);
            agree &= ucq_stable(q, schema) == f && ucq_stable_star(q, schema) == f;
        }
        let d_stable = time_median(3, || {
            for (q, schema) in &queries {
                std::hint::black_box(ucq_stable(q, schema));
            }
        });
        let d_star = time_median(3, || {
            for (q, schema) in &queries {
                std::hint::black_box(ucq_stable_star(q, schema));
            }
        });
        let d_feasible = time_median(3, || {
            for (q, schema) in &queries {
                std::hint::black_box(feasible(q, schema));
            }
        });
        t.row(vec![
            disjuncts.to_string(),
            if agree { "100%".into() } else { "DISAGREE".into() },
            fmt_duration(d_stable / num_queries as u32),
            fmt_duration(d_star / num_queries as u32),
            fmt_duration(d_feasible / num_queries as u32),
        ]);
    }
    t
}

/// E7 — cost of negation and union width on the full UCQ¬ decision.
pub fn e7_negation_cost(num_queries: usize) -> Table {
    let mut t = Table::new(
        "E7 — feasibility cost vs negation and union width (Cor. 19)",
        "Mean FEASIBLE time on random UCQ¬; the Π₂ᴾ worst case hides behind the fast paths until negation and width grow.",
        &["disjuncts", "neg = 0", "neg = 1", "neg = 2", "neg = 3"],
    );
    for disjuncts in [1usize, 2, 4] {
        let mut cells = vec![disjuncts.to_string()];
        for negs in 0..=3usize {
            let queries: Vec<(UnionQuery, Schema)> = (0..num_queries as u64)
                .map(|seed| {
                    let schema = default_schema(seed % 16);
                    let q = gen_query(
                        &schema,
                        &query_cfg(disjuncts, 3, negs),
                        &mut StdRng::seed_from_u64(3000 + seed),
                    );
                    (q, schema)
                })
                .collect();
            let d = time_median(3, || {
                for (q, schema) in &queries {
                    std::hint::black_box(feasible(q, schema));
                }
            });
            cells.push(fmt_duration(d / num_queries as u32));
        }
        t.row(cells);
    }
    t
}

/// E8 — containment engines: mapping vs canonical DB vs acyclic fast path.
pub fn e8_containment_engines(num_pairs: usize) -> Table {
    let mut t = Table::new(
        "E8 — CONT(CQ) engines (§5.1, [CR97] fast path)",
        "Random CQ pairs: the two generic engines agree 100%; when Q is acyclic the GYO+Yannakakis path applies (poly-time).",
        &["positives", "agreement", "acyclic Q", "mapping", "canonical DB", "acyclic path"],
    );
    for positives in [3usize, 5, 7] {
        let pairs: Vec<_> = (0..num_pairs as u64)
            .map(|seed| {
                let schema = default_schema(seed % 16);
                let p = gen_query(&schema, &query_cfg(1, positives, 0), &mut StdRng::seed_from_u64(seed))
                    .disjuncts[0]
                    .clone();
                let q = gen_query(
                    &schema,
                    &query_cfg(1, positives, 0),
                    &mut StdRng::seed_from_u64(seed + 5000),
                )
                .disjuncts[0]
                    .clone();
                (p, q)
            })
            .collect();
        let mut agree = true;
        let mut acyclic_count = 0usize;
        for (p, q) in &pairs {
            let a = cq_contained(p, q);
            agree &= a == cq_contained_canonical(p, q);
            if is_acyclic(q) {
                acyclic_count += 1;
                agree &= cq_contained_acyclic(p, q) == Some(a);
            }
        }
        let d_map = time_median(3, || {
            for (p, q) in &pairs {
                std::hint::black_box(cq_contained(p, q));
            }
        });
        let d_canon = time_median(3, || {
            for (p, q) in &pairs {
                std::hint::black_box(cq_contained_canonical(p, q));
            }
        });
        let d_acyc = time_median(3, || {
            for (p, q) in &pairs {
                std::hint::black_box(cq_contained_acyclic(p, q));
            }
        });
        t.row(vec![
            positives.to_string(),
            if agree { "100%".into() } else { "DISAGREE".into() },
            format!("{:.0}%", 100.0 * acyclic_count as f64 / num_pairs as f64),
            fmt_duration(d_map / num_pairs as u32),
            fmt_duration(d_canon / num_pairs as u32),
            fmt_duration(d_acyc / num_pairs as u32),
        ]);
    }
    t
}

/// E9 — runtime completeness of infeasible plans (Fig. 4; Examples 5–6).
pub fn e9_runtime_completeness(num_runs: usize) -> Table {
    let mut t = Table::new(
        "E9 — runtime completeness for infeasible queries (Fig. 4)",
        "GAV-style plans with blocked disjuncts over random instances vs foreign-key-closed instances (Example 6's semantic constraint).",
        &["instance family", "runs", "infeasible", "complete at runtime", "mean lower bound (incomplete, null-free Δ)"],
    );
    let p = parse_program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    )
    .unwrap();
    let q = p.single_query().unwrap();
    assert!(!feasible(q, &p.schema));
    let cfg = InstanceConfig {
        domain_size: 8,
        tuples_per_relation: 10,
    };
    for (label, fk_closed) in [("random", false), ("R.z ⊆ S.z (fk-closed)", true)] {
        let mut complete = 0usize;
        let mut bounds: Vec<f64> = Vec::new();
        for seed in 0..num_runs as u64 {
            let mut rng = StdRng::seed_from_u64(7000 + seed);
            let db = if fk_closed {
                gen_instance_with_inclusion(&p.schema, &cfg, "R", 1, "S", 0, &mut rng)
            } else {
                gen_instance(&p.schema, &cfg, &mut rng)
            };
            let rep = answer_star(q, &p.schema, &db).unwrap();
            match rep.completeness {
                Completeness::Complete => complete += 1,
                Completeness::AtLeast(r) => bounds.push(r),
                Completeness::Unknown => {}
            }
        }
        let mean_bound = if bounds.is_empty() {
            "-".to_owned()
        } else {
            format!("{:.2}", bounds.iter().sum::<f64>() / bounds.len() as f64)
        };
        t.row(vec![
            label.to_owned(),
            num_runs.to_string(),
            "yes".into(),
            format!("{:.0}%", 100.0 * complete as f64 / num_runs as f64),
            mean_bound,
        ]);
    }
    t
}

/// E10 — domain enumeration: recall recovered vs calls spent (Example 8).
pub fn e10_domain_enumeration(num_runs: usize) -> Table {
    let mut t = Table::new(
        "E10 — domain-enumeration refinement of the underestimate (Ex. 8, [DL97])",
        "GAV plans with blocked disjuncts: recall of ansᵤ against the oracle, without and with dom(x) views, and the extra source calls spent.",
        &["blocked disjuncts", "recall (plain)", "recall (dom)", "mean dom calls", "fixpoint reached"],
    );
    for blocked in [1usize, 2, 3] {
        let inst = gav_unfolding(2, blocked, 1);
        let cfg = InstanceConfig {
            domain_size: 6,
            tuples_per_relation: 8,
        };
        let mut plain_hits = 0usize;
        let mut dom_hits = 0usize;
        let mut oracle_total = 0usize;
        let mut calls = 0u64;
        let mut fixpoints = 0usize;
        for seed in 0..num_runs as u64 {
            let db = gen_instance(&inst.schema, &cfg, &mut StdRng::seed_from_u64(8000 + seed));
            let oracle = eval_oracle(&inst.query, &db).unwrap();
            let rep =
                answer_star_with_domain(&inst.query, &inst.schema, &db, 100_000).unwrap();
            oracle_total += oracle.len();
            plain_hits += rep.base.under.intersection(&oracle).count();
            dom_hits += rep.improved_under.intersection(&oracle).count();
            calls += rep.domain_calls;
            fixpoints += rep.domain_complete as usize;
        }
        let recall = |hits: usize| {
            if oracle_total == 0 {
                "-".to_owned()
            } else {
                format!("{:.0}%", 100.0 * hits as f64 / oracle_total as f64)
            }
        };
        t.row(vec![
            blocked.to_string(),
            recall(plain_hits),
            recall(dom_hits),
            format!("{:.0}", calls as f64 / num_runs as f64),
            format!("{}/{}", fixpoints, num_runs),
        ]);
    }
    t
}

/// E11 — hardness stress: Theorem 18 instances and the excluded-middle
/// family driving the Wei–Lausen recursion.
pub fn e11_hardness_stress() -> Table {
    let mut t = Table::new(
        "E11 — worst-case stress (Thm. 18, Π₂ᴾ core)",
        "Excluded-middle family: P(x):-R(x) vs the union over all 2^n sign patterns of S1..Sn. Both the direct containment and the Theorem-18 feasibility instance are measured; verdicts must agree (always contained/feasible).",
        &["n", "disjuncts", "CONT time", "FEASIBLE(thm18) time", "verdicts agree"],
    );
    for n in [2usize, 4, 6, 8] {
        let (p, q) = excluded_middle_pair(n);
        let d_cont = time_median(3, || {
            std::hint::black_box(ucqn_contained(&p, &q));
        });
        let inst = containment_to_feasibility(&p, &q);
        let d_feas = time_median(3, || {
            std::hint::black_box(feasible(&inst.query, &inst.schema));
        });
        let cont = contained(&p, &q);
        let feas = feasible(&inst.query, &inst.schema);
        t.row(vec![
            n.to_string(),
            (1usize << n).to_string(),
            fmt_duration(d_cont),
            fmt_duration(d_feas),
            if cont && feas { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// Builds the E12 family: `k` Example-6-style blocked disjuncts (each with
/// its own relations and foreign key) plus one executable disjunct, and the
/// matching constraint set.
pub fn example6_family(k: usize) -> (UnionQuery, Schema, ConstraintSet) {
    let mut text = String::from("T^oo.\n");
    for j in 0..k {
        text.push_str(&format!("S{j}^o. R{j}^oo. B{j}^ii.\n"));
    }
    text.push_str("Q(x, y) :- T(x, y).\n");
    for j in 0..k {
        text.push_str(&format!(
            "Q(x, y) :- not S{j}(z), R{j}(x, z), B{j}(x, y).\n"
        ));
    }
    let p = parse_program(&text).expect("family parses");
    let mut cs = ConstraintSet::new();
    for j in 0..k {
        cs = cs.with_inclusion(InclusionDep::new(
            Predicate::new(&format!("R{j}"), 2),
            vec![1],
            Predicate::new(&format!("S{j}"), 1),
            vec![0],
        ));
    }
    (p.single_query().unwrap().clone(), p.schema, cs)
}

/// E12 — the semantic optimizer (Example 6): integrity constraints prune
/// the blocked disjuncts at compile time, flipping feasibility.
pub fn e12_semantic_optimizer() -> Table {
    let mut t = Table::new(
        "E12 — semantic optimizer under integrity constraints (Ex. 6)",
        "k blocked Example-6 disjuncts, each with a foreign key Rj.z ⊆ Sj.z: plain FEASIBLE rejects; chase-based pruning discards every blocked disjunct and the remainder is feasible.",
        &["blocked disjuncts", "feasible (plain)", "pruned disjuncts", "feasible (under Σ)", "prune+decide time"],
    );
    for k in [1usize, 2, 4, 8] {
        let (q, schema, cs) = example6_family(k);
        let plain = feasible(&q, &schema);
        let pruned = prune_unsatisfiable(&q, &cs);
        let d = time_median(TIMING_ITERS, || {
            std::hint::black_box(feasible_under(&q, &cs, &schema));
        });
        let constrained = feasible_under(&q, &cs, &schema).feasible;
        t.row(vec![
            k.to_string(),
            plain.to_string(),
            format!("{} of {}", q.disjuncts.len() - pruned.disjuncts.len(), q.disjuncts.len()),
            constrained.to_string(),
            fmt_duration(d),
        ]);
    }
    t
}

/// E13 — where the Π₂ᴾ effort goes: instrumentation of the Wei–Lausen
/// recursion on the excluded-middle family.
pub fn e13_recursion_profile() -> Table {
    let mut t = Table::new(
        "E13 — Wei–Lausen recursion profile (Thms. 12–13)",
        "Counters for P(x):-R(x) ⊑ ∨ sign patterns over S1..Sn: the recursion visits the sign tree; memoization collapses repeated subproblems.",
        &["n", "recursive calls", "cache hits", "mappings checked", "peak |P⁺|"],
    );
    for n in [2usize, 4, 6, 8] {
        let (p, q) = excluded_middle_pair(n);
        let (result, stats) = ucqn_contained_stats(&p, &q);
        assert!(result);
        t.row(vec![
            n.to_string(),
            stats.recursive_calls.to_string(),
            stats.cache_hits.to_string(),
            stats.mappings_checked.to_string(),
            stats.max_p_atoms.to_string(),
        ]);
    }
    t
}

/// E14 — cost-based plan ordering and plan minimization: *actual* source
/// calls through the pattern-enforcing engine, per strategy.
pub fn e14_plan_ordering(num_runs: usize) -> Table {
    let mut t = Table::new(
        "E14 — plan ordering and minimization (capability-based optimization)",
        "Feasible random queries + instances: mean source calls to evaluate the overestimate plan under each ordering strategy, and with the minimal executable plan. Lower is better; all orders return identical answers.",
        &["workload", "ANSWERABLE order", "greedy", "exhaustive", "minimal plan"],
    );
    for (label, positives) in [("3 literals/disjunct", 3usize), ("5 literals/disjunct", 5)] {
        let mut calls = [0u64; 4];
        let mut runs = 0u64;
        let mut seed = 0u64;
        while runs < num_runs as u64 && seed < 10 * num_runs as u64 {
            seed += 1;
            let schema = default_schema(seed % 16);
            let q = gen_query(
                &schema,
                &query_cfg(2, positives, 0),
                &mut StdRng::seed_from_u64(40_000 + seed),
            );
            let report = feasible_detailed(&q, &schema);
            if !report.feasible || report.plans.over.has_null() {
                continue;
            }
            let db = gen_instance(
                &schema,
                &InstanceConfig { domain_size: 8, tuples_per_relation: 20 },
                &mut StdRng::seed_from_u64(50_000 + seed),
            );
            let model = CostModel::from_database(&db);
            let strategies = [
                optimize_plan_pair(&report.plans, &schema, &model, Strategy::AnswerableOrder),
                optimize_plan_pair(&report.plans, &schema, &model, Strategy::Greedy),
                optimize_plan_pair(&report.plans, &schema, &model, Strategy::Exhaustive),
            ];
            let mut answers = None;
            let mut ok = true;
            let mut measured = [0u64; 4];
            for (k, pair) in strategies.iter().enumerate() {
                let mut reg = SourceRegistry::new(&db, &schema);
                match eval_ordered_union(&pair.over.eval_parts(), &mut reg) {
                    Ok(rows) => {
                        if let Some(prev) = &answers {
                            assert_eq!(prev, &rows, "strategies must agree (seed {seed})");
                        } else {
                            answers = Some(rows);
                        }
                        measured[k] = reg.stats().calls;
                    }
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            // The minimal executable plan (equivalent, possibly fewer
            // literals/disjuncts) — answers may legitimately equal the
            // query's, which is what the other plans compute too.
            let Some(min_plan) = minimal_executable_plan(&q, &schema) else {
                continue;
            };
            let parts: Vec<_> = min_plan
                .disjuncts
                .iter()
                .map(|cq| (cq.clone(), Vec::new()))
                .collect();
            let mut reg = SourceRegistry::new(&db, &schema);
            let Ok(rows) = eval_ordered_union(&parts, &mut reg) else {
                continue;
            };
            assert_eq!(answers.as_ref(), Some(&rows), "minimal plan must agree (seed {seed})");
            measured[3] = reg.stats().calls;
            for k in 0..4 {
                calls[k] += measured[k];
            }
            runs += 1;
        }
        let mean = |c: u64| {
            if runs == 0 { "-".to_owned() } else { format!("{:.1}", c as f64 / runs as f64) }
        };
        t.row(vec![
            format!("{label} ({runs} runs)"),
            mean(calls[0]),
            mean(calls[1]),
            mean(calls[2]),
            mean(calls[3]),
        ]);
    }
    t
}

/// Builds a mediator with `k` interchangeable source views per global
/// relation (all-output sources), plus an atomic `Lib` view.
fn scaled_mediator(k: usize) -> Mediator {
    let mut text = String::new();
    for j in 0..k {
        text.push_str(&format!("SrcB{j}^oooo. SrcC{j}^oo.\n"));
    }
    text.push_str("Shelf^o.\n");
    for j in 0..k {
        text.push_str(&format!("Book(i, a, t) :- SrcB{j}(i, a, t, p).\n"));
        text.push_str(&format!("Catalog(i, a) :- SrcC{j}(i, a).\n"));
    }
    text.push_str("Lib(i) :- Shelf(i).\n");
    Mediator::from_program(&text).expect("mediator parses")
}

/// E15 — the mediator pipeline: unfolding growth and end-to-end compile
/// time (unfold → prune → FEASIBLE) as views multiply.
pub fn e15_mediator_pipeline() -> Table {
    let mut t = Table::new(
        "E15 — GAV mediator pipeline (§6, BIRN context)",
        "Global query Q(i,a,t) :- Book, Catalog, ¬Lib over k interchangeable views per global relation: the unfolding has k² disjuncts; the pipeline (unfold + prune + FEASIBLE) stays fast because every disjunct is orderable.",
        &["views/relation", "unfolded disjuncts", "feasible", "pipeline time"],
    );
    let q = lap_ir::parse_query(
        "Q(i, a, t) :- Book(i, a, t), Catalog(i, a), not Lib(i).",
    )
    .expect("query parses");
    for k in [1usize, 2, 4, 8] {
        let mediator = scaled_mediator(k);
        let plan = mediator.plan(&q).expect("plans");
        let d = time_median(TIMING_ITERS, || {
            std::hint::black_box(mediator.plan(&q).expect("plans"));
        });
        t.row(vec![
            k.to_string(),
            plan.unfolded.disjuncts.len().to_string(),
            plan.feasibility.feasible.to_string(),
            fmt_duration(d),
        ]);
    }
    t
}

/// E16 — source-side hash indexes vs scans (engine ablation): wall time to
/// evaluate a join-heavy executable plan as the instance grows.
pub fn e16_index_ablation() -> Table {
    let mut t = Table::new(
        "E16 — source index ablation (engine substrate)",
        "Chain join S ⋈ R ⋈ R ⋈ R through R^io over growing instances: lazily-built hash indexes vs full scans per call. Answers are identical; only the source-side lookup differs.",
        &["tuples in R", "indexed", "scan", "speedup"],
    );
    let program = parse_program(
        "S^o. R^io.\n\
         Q(x0, x3) :- S(x0), R(x0, x1), R(x1, x2), R(x2, x3).",
    )
    .expect("parses");
    let q = program.single_query().expect("one query");
    let pair = plan_star(q, &program.schema);
    let parts = pair.under.eval_parts();
    for n in [200usize, 800, 3200] {
        let mut db = lap_engine::Database::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..n {
            let a = rng.gen_range(0..(n as i64 / 4).max(4));
            let b = rng.gen_range(0..(n as i64 / 4).max(4));
            db.insert("R", vec![lap_engine::Value::int(a), lap_engine::Value::int(b)])
                .expect("arity ok");
        }
        for v in 0..10i64 {
            db.insert("S", vec![lap_engine::Value::int(v)]).expect("arity ok");
        }
        let d_indexed = time_median(5, || {
            let mut reg = SourceRegistry::new(&db, &program.schema);
            std::hint::black_box(eval_ordered_union(&parts, &mut reg).expect("runs"));
        });
        let d_scan = time_median(5, || {
            let mut reg = SourceRegistry::without_indexes(&db, &program.schema);
            std::hint::black_box(eval_ordered_union(&parts, &mut reg).expect("runs"));
        });
        t.row(vec![
            n.to_string(),
            fmt_duration(d_indexed),
            fmt_duration(d_scan),
            format!("{:.1}x", d_scan.as_secs_f64() / d_indexed.as_secs_f64().max(1e-12)),
        ]);
    }
    t
}

/// E17 — end-to-end federated-bookstore scenario: compile-time vs runtime
/// breakdown as the universe scales.
pub fn e17_end_to_end_scenario() -> Table {
    let mut t = Table::new(
        "E17 — end-to-end federated bookstore (motivating scenario at scale)",
        "v×c-disjunct standing query over v vendors, c catalogs, a library, and an ISBN-only price service: prepare-once (PLAN* + FEASIBLE) vs execute-per-instance (ANSWER* evaluation), plus answers and source calls.",
        &["books", "disjuncts", "compile", "execute", "answers", "source calls"],
    );
    for books in [100usize, 400, 1600] {
        let cfg = BookstoreConfig {
            vendors: 2,
            catalogs: 2,
            books,
            authors: books / 5,
            ..BookstoreConfig::default()
        };
        let scenario = bookstore(&cfg, &mut StdRng::seed_from_u64(17));
        let program = parse_program(&scenario.program_text()).expect("scenario parses");
        let q = program.single_query().expect("one query").clone();
        let d_compile = time_median(TIMING_ITERS, || {
            std::hint::black_box(lap_core::PreparedQuery::compile(&q, &program.schema));
        });
        let prepared = lap_core::PreparedQuery::compile(&q, &program.schema);
        assert!(prepared.is_feasible(), "standing query must be feasible");
        let d_exec = time_median(5, || {
            std::hint::black_box(prepared.execute(&scenario.db).expect("executes"));
        });
        let rep = prepared.execute(&scenario.db).expect("executes");
        assert!(rep.is_complete());
        t.row(vec![
            books.to_string(),
            q.disjuncts.len().to_string(),
            fmt_duration(d_compile),
            fmt_duration(d_exec),
            rep.under.len().to_string(),
            rep.stats.calls.to_string(),
        ]);
    }
    t
}

/// E18 — batched physical executor vs the retired tuple-at-a-time
/// evaluator: the same overestimate plans on dup-key-rich instances (a
/// small value domain makes outer bindings repeat their join keys, so the
/// executor's per-batch source-call dedup pays off).
pub fn e18_batched_executor() -> Table {
    use lap_engine::{eval_ordered_union_tuple, execute_physical_union, lower_union, ExecConfig};
    let mut t = Table::new(
        "E18 — batched physical executor vs tuple-at-a-time reference",
        "Overestimate plans over dup-key-rich instances (domain 8, 200 tuples per relation). The batched executor issues one source call per distinct input key per 1024-row batch; the reference issues one per binding. Times are medians over the full evaluation; answers are asserted identical first.",
        &[
            "family",
            "tuple-at-a-time",
            "batched (w=1024)",
            "speedup",
            "calls (tuple)",
            "calls (batched)",
        ],
    );
    let fams = [
        ("forward_chain(6)", forward_chain(6)),
        ("star(5)", star(5)),
        ("feasible_not_orderable(3)", feasible_not_orderable(3)),
        ("gav_unfolding(3,2,1)", gav_unfolding(3, 2, 1)),
    ];
    for (name, inst) in fams {
        let cfg = InstanceConfig {
            domain_size: 8,
            tuples_per_relation: 200,
        };
        let db = gen_instance(&inst.schema, &cfg, &mut StdRng::seed_from_u64(18));
        let pair = plan_star(&inst.query, &inst.schema);
        let parts = pair.over.eval_parts();
        let union = lower_union(&parts, &inst.schema);
        let mut reg = SourceRegistry::new(&db, &inst.schema);
        let want = eval_ordered_union_tuple(&parts, &mut reg).expect("reference evaluates");
        let tuple_calls = reg.stats().calls;
        let mut reg = SourceRegistry::new(&db, &inst.schema);
        let got = execute_physical_union(&union, &mut reg, ExecConfig::default())
            .expect("batched evaluates");
        let batched_calls = reg.stats().calls;
        assert_eq!(want, got, "executors disagree on {name}");
        let d_tuple = time_median(TIMING_ITERS, || {
            let mut reg = SourceRegistry::new(&db, &inst.schema);
            std::hint::black_box(eval_ordered_union_tuple(&parts, &mut reg).unwrap());
        });
        let d_batched = time_median(TIMING_ITERS, || {
            let mut reg = SourceRegistry::new(&db, &inst.schema);
            std::hint::black_box(
                execute_physical_union(&union, &mut reg, ExecConfig::default()).unwrap(),
            );
        });
        t.row(vec![
            name.to_owned(),
            fmt_duration(d_tuple),
            fmt_duration(d_batched),
            format!(
                "{:.2}x",
                d_tuple.as_secs_f64() / d_batched.as_secs_f64().max(1e-12)
            ),
            tuple_calls.to_string(),
            batched_calls.to_string(),
        ]);
    }
    t
}

/// E19 — completeness vs fault rate: the chaos ladder over the federated
/// bookstore. Each rung runs ANSWER\* under a seeded fault profile with
/// the standard retry policy; the table reports how much of the fault-free
/// answer survives (|degraded under| / |fault-free under|), how many
/// disjuncts were dropped, and the retry/failure counts. The rate-0 rung
/// doubles as the overhead control: the resilient path must return the
/// identical answer, and its relative cost vs plain ANSWER\* is recorded.
pub fn e19_fault_resilience() -> Table {
    use lap_core::answer_star_resilient;
    use lap_obs::Recorder;
    use lap_workload::chaos_ladder;
    let mut t = Table::new(
        "E19 — completeness vs fault rate (chaos ladder, federated bookstore)",
        "Seeded fault injection over the E17 scenario (2 vendors × 2 catalogs, 200 books): sources fail with probability p per call, retried up to 4 times with exponential backoff. A disjunct whose source stays down is dropped whole, so the degraded answer is always a subset of the fault-free one; 'answers kept' is that subset ratio. At rate 0 the answer is asserted identical and the timing overhead of the resilient path is recorded.",
        &[
            "fault rate",
            "answers",
            "answers kept",
            "completeness",
            "dropped disjuncts",
            "retries",
            "failures",
            "overhead at rate 0",
        ],
    );
    let cfg = BookstoreConfig {
        books: 200,
        authors: 40,
        ..BookstoreConfig::default()
    };
    let scenario = bookstore(&cfg, &mut StdRng::seed_from_u64(19));
    let program = parse_program(&scenario.program_text()).expect("scenario parses");
    let q = program.single_query().expect("one query").clone();
    let plain = answer_star(&q, &program.schema, &scenario.db).expect("plain run");
    let d_plain = time_median(TIMING_ITERS, || {
        std::hint::black_box(answer_star(&q, &program.schema, &scenario.db).unwrap());
    });
    for rung in chaos_ladder(19) {
        let recorder = Recorder::disabled();
        let outcome =
            answer_star_resilient(&q, &program.schema, &scenario.db, &recorder, &rung.resilience)
                .expect("resilient run");
        assert!(
            outcome.report.under.is_subset(&plain.under),
            "degraded answers must be a subset of fault-free answers"
        );
        let rate = rung.resilience.fault.expect("ladder always injects").error_rate;
        let kept = if plain.under.is_empty() {
            1.0
        } else {
            outcome.report.under.len() as f64 / plain.under.len() as f64
        };
        let overhead = if rate == 0.0 {
            assert_eq!(outcome.report.under, plain.under, "rate 0 must be answer-identical");
            assert!(!outcome.degradation.is_degraded());
            let d_res = time_median(TIMING_ITERS, || {
                std::hint::black_box(
                    answer_star_resilient(
                        &q,
                        &program.schema,
                        &scenario.db,
                        &recorder,
                        &rung.resilience,
                    )
                    .unwrap(),
                );
            });
            format!(
                "{:+.1}%",
                (d_res.as_secs_f64() / d_plain.as_secs_f64().max(1e-12) - 1.0) * 100.0
            )
        } else {
            "-".to_owned()
        };
        let completeness = match outcome.report.completeness {
            Completeness::Complete => "complete".to_owned(),
            Completeness::AtLeast(r) => format!(">= {:.0}%", r * 100.0),
            Completeness::Unknown => "unknown".to_owned(),
        };
        t.row(vec![
            format!("{rate:.2}"),
            outcome.report.under.len().to_string(),
            format!("{:.2}", kept),
            completeness,
            outcome.degradation.total().to_string(),
            outcome.retries.to_string(),
            outcome.failures.to_string(),
            overhead,
        ]);
    }
    t
}

/// E20 — flight-recorder overhead: the same resilient ANSWER\* run under
/// a disabled recorder, metrics only, metrics + the always-on light
/// journal, and metrics + the replay-fidelity journal (inputs and rows
/// captured). The acceptance bar is that the light journal stays within
/// 10% of the metrics-only tier — cheap enough to leave on — while the
/// replay tier documents the price of bit-for-bit reproducibility.
pub fn e20_journal_overhead() -> Table {
    use lap_core::answer_star_resilient;
    use lap_obs::{JournalConfig, Recorder};
    let mut t = Table::new(
        "E20 — flight-recorder overhead (resilient ANSWER*, federated bookstore)",
        "One chaotic resilient run (rate 0.1, standard retry) per recorder tier over the E19 scenario (2 vendors × 2 catalogs, 200 books), sampled round-robin; 'best time' is the per-tier minimum over 45 rounds, robust to drift and interference. 'vs metrics' is the overhead over the metrics-only recorder — the journal's marginal cost; the light tier (no captured rows) is the always-on configuration, the replay tier additionally serialises every bound input and returned row so `lapq replay` can reproduce the run without the database.",
        &[
            "recorder tier",
            "best time",
            "vs disabled",
            "vs metrics",
            "journal events",
            "journal dropped",
        ],
    );
    let cfg = BookstoreConfig {
        books: 200,
        authors: 40,
        ..BookstoreConfig::default()
    };
    let scenario = bookstore(&cfg, &mut StdRng::seed_from_u64(20));
    let program = parse_program(&scenario.program_text()).expect("scenario parses");
    let q = program.single_query().expect("one query").clone();
    let resilience = lap_engine::ResilienceConfig::chaos(0.1, 20);
    type Tier<'a> = (&'a str, Box<dyn Fn() -> Recorder>);
    let tiers: Vec<Tier<'_>> = vec![
        ("disabled", Box::new(Recorder::disabled)),
        ("metrics", Box::new(Recorder::new)),
        (
            "metrics + journal (light)",
            Box::new(|| Recorder::with_journal(JournalConfig::light())),
        ),
        (
            "metrics + journal (replay)",
            Box::new(|| Recorder::with_journal(JournalConfig::replay())),
        ),
    ];
    let run = |recorder: &Recorder| {
        std::hint::black_box(
            answer_star_resilient(&q, &program.schema, &scenario.db, recorder, &resilience)
                .unwrap(),
        )
    };
    // Warm up, and check that every tier sees the same fault schedule
    // (same seed, recording must not perturb the run).
    let reference = run(&Recorder::disabled());
    for (_, make) in &tiers {
        assert_eq!(run(&make()).failures, reference.failures);
    }
    // Sample the tiers round-robin rather than one tier at a time, and
    // compare *minimum* times: the overhead columns divide one tier by
    // another, so clock-frequency drift (sequential sampling) and cache
    // pollution from a neighbouring tier's run would masquerade as
    // journal overhead, while interference only ever adds time — the
    // per-tier best over 45 rounds is the stable estimate of real work.
    // Rotating the start index spreads the expensive replay tier's cache
    // fallout evenly instead of always billing it to the same successor.
    let mut samples: Vec<Vec<std::time::Duration>> = vec![Vec::new(); tiers.len()];
    for round in 0..5 * TIMING_ITERS {
        for k in 0..tiers.len() {
            let i = (round + k) % tiers.len();
            let recorder = tiers[i].1();
            let t0 = std::time::Instant::now();
            run(&recorder);
            samples[i].push(t0.elapsed());
        }
    }
    let mut medians: Vec<f64> = Vec::new();
    let mut rows: Vec<(String, std::time::Duration, String, String)> = Vec::new();
    for (i, (tier, make)) in tiers.iter().enumerate() {
        let d = *samples[i].iter().min().expect("sampled");
        medians.push(d.as_secs_f64());
        let recorder = make();
        run(&recorder);
        let (events, dropped) = match recorder.journal() {
            Some(j) => {
                let snap = j.snapshot();
                (snap.recorded().to_string(), snap.dropped.to_string())
            }
            None => ("-".to_owned(), "-".to_owned()),
        };
        rows.push((tier.to_string(), d, events, dropped));
    }
    let base_disabled = medians[0].max(1e-12);
    let base_metrics = medians[1].max(1e-12);
    for (i, (tier, d, events, dropped)) in rows.into_iter().enumerate() {
        t.row(vec![
            tier,
            fmt_duration(d),
            format!("{:+.1}%", (medians[i] / base_disabled - 1.0) * 100.0),
            format!("{:+.1}%", (medians[i] / base_metrics - 1.0) * 100.0),
            events,
            dropped,
        ]);
    }
    t
}

/// E21 — overlapped source I/O: the 20ms-latency chaos workload under an
/// increasing `io_workers` budget. Virtual wall-clock is the scheduler's
/// deterministic model of elapsed time: at 1 worker it is the *sum* of
/// per-call latencies (serial waits); with overlap it approaches the
/// *max* per-lane critical path. Answers, completeness, retries, and
/// failures are asserted identical to the serial oracle at every width —
/// overlap changes when calls wait, never what they return. The
/// acceptance bar is wall-clock at 8 workers ≤ 0.5× serial.
pub fn e21_overlapped_io() -> Table {
    use lap_core::answer_star_resilient_cfg;
    use lap_engine::ExecConfig;
    use lap_obs::Recorder;
    use lap_workload::overlapped_chaos;
    let mut t = Table::new(
        "E21 — overlapped source I/O (20ms-latency chaos, federated bookstore)",
        "The E19 scenario (2 vendors × 2 catalogs, 200 books) under the overlapped-chaos profile: every wire call carries a flat 20ms virtual latency plus a 0.10 error rate with up to 3 attempts. One resilient ANSWER* run per io_workers width; 'virtual ms' is the deterministic virtual wall-clock (latency + backoff waits as scheduled, not host time). Serial execution pays the sum of per-call latencies; overlapped execution pays per-lane critical paths, so the ratio falls toward 1/workers until retry chains and batch boundaries dominate. Answers and resilience counters are asserted bit-identical to the serial run at every width.",
        &["io workers", "answers", "virtual ms", "vs serial", "retries", "failures", "calls"],
    );
    let cfg = BookstoreConfig {
        books: 200,
        authors: 40,
        ..BookstoreConfig::default()
    };
    let scenario = bookstore(&cfg, &mut StdRng::seed_from_u64(21));
    let program = parse_program(&scenario.program_text()).expect("scenario parses");
    let q = program.single_query().expect("one query").clone();
    let chaos = overlapped_chaos(21);
    let recorder = Recorder::disabled();
    let serial = answer_star_resilient_cfg(
        &q,
        &program.schema,
        &scenario.db,
        &recorder,
        &chaos.resilience,
        ExecConfig::default(),
    )
    .expect("serial run");
    for workers in [1usize, 2, 4, 8, 16] {
        let outcome = answer_star_resilient_cfg(
            &q,
            &program.schema,
            &scenario.db,
            &recorder,
            &chaos.resilience,
            ExecConfig::default().with_io_workers(workers),
        )
        .expect("overlapped run");
        assert_eq!(outcome.report.under, serial.report.under, "answers must not change");
        assert_eq!(outcome.report.completeness, serial.report.completeness);
        assert_eq!(outcome.report.stats, serial.report.stats, "call counters must not change");
        assert_eq!(outcome.retries, serial.retries, "retry schedule must not change");
        assert_eq!(outcome.failures, serial.failures, "fault schedule must not change");
        assert!(
            outcome.virtual_ms <= serial.virtual_ms,
            "overlap can only shorten the virtual wall-clock"
        );
        if workers == 8 {
            assert!(
                (outcome.virtual_ms as f64) <= 0.5 * serial.virtual_ms as f64,
                "acceptance: 8 workers must at least halve the serial wall-clock \
                 ({} vs {} virtual ms)",
                outcome.virtual_ms,
                serial.virtual_ms
            );
        }
        t.row(vec![
            workers.to_string(),
            outcome.report.under.len().to_string(),
            outcome.virtual_ms.to_string(),
            format!(
                "{:.2}x",
                outcome.virtual_ms as f64 / (serial.virtual_ms as f64).max(1e-12)
            ),
            outcome.retries.to_string(),
            outcome.failures.to_string(),
            outcome.report.stats.calls.to_string(),
        ]);
    }
    t
}

/// E22 — calibrated re-planning: the feedback loop closed end to end. A
/// schema where the static model's uniform extents pick the wrong join
/// order (seed the plan with the 40-row A scan and call D^io once per
/// row) runs under seeded latency chaos with the flight recorder on; the
/// journal is folded into a feedback profile, frozen through its JSON
/// round-trip, and fed back as a calibrated cost model. The acceptance
/// bar is that the calibrated plan recovers at least 80% of the oracle
/// speedup — `(static − calibrated) / (static − oracle)` in virtual ms,
/// where the oracle model is built from the true database extents — with
/// answers identical to the static plan and the whole loop bit-for-bit
/// deterministic (two runs from the frozen profile agree exactly).
pub fn e22_calibrated_replanning() -> Table {
    use lap_core::{answer_star_resilient_cfg, answer_star_resilient_planned_cfg, AnswerOutcome};
    use lap_engine::{Database, ExecConfig, FaultConfig, ResilienceConfig, RetryPolicy};
    use lap_obs::{FeedbackStore, JournalConfig, Recorder};
    let mut t = Table::new(
        "E22 — calibrated re-planning (journal-fed feedback, latency chaos)",
        "Q(x, y) :- A(x), D(x, y) over A^o (40 rows), D^oo, D^io (8 rows), under 10ms-latency chaos (rate 0.05, standard retry, seed 22). The static uniform cost model orders A first and pays one D^io call per A row; the journal of that run is folded into a feedback profile (frozen through its JSON round-trip), and the calibrated model re-orders the body to scan D^oo first. 'recovery' is the fraction of the oracle speedup (cost model built from true extents) the calibrated plan achieves in virtual ms; acceptance is >= 80%, identical answers, and bit-identical repetition from the frozen profile.",
        &["plan", "answers", "calls", "virtual ms", "vs static", "recovery"],
    );
    let program = parse_program("A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).").expect("parses");
    let q = program.single_query().expect("one query").clone();
    let mut facts = String::new();
    for i in 0..40 {
        facts.push_str(&format!("A({i}). "));
    }
    for i in 0..8 {
        facts.push_str(&format!("D({i}, {}). ", 100 + i));
    }
    let db = Database::from_facts(&facts).expect("facts parse");
    let resilience = ResilienceConfig {
        fault: Some(FaultConfig {
            error_rate: 0.05,
            latency_ms: 10,
            latency_jitter_ms: 0,
            timeout_ms: None,
            seed: 22,
        }),
        retry: RetryPolicy::standard(),
    };
    let cfg = ExecConfig::default();

    // Static run, flight recorder on: this is the journal the profile
    // is calibrated from.
    let rec = Recorder::with_journal(JournalConfig::light());
    let static_run =
        answer_star_resilient_cfg(&q, &program.schema, &db, &rec, &resilience, cfg)
            .expect("static run");
    assert!(!static_run.degradation.is_degraded(), "chaos must not degrade the baseline");
    let mut store = FeedbackStore::new();
    store.fold(&rec.journal().expect("journal on").snapshot());
    store.validate().expect("folded profile is valid");
    // Freeze the profile: the calibrated plan must come from the JSON
    // snapshot, not the in-memory store.
    let frozen =
        FeedbackStore::from_json(&store.to_json()).expect("profile round-trips");
    assert_eq!(frozen, store, "freezing must lose nothing");

    let static_model = CostModel::new();
    let base_pair = plan_star(&q, &program.schema);
    let quiet = Recorder::disabled();
    let run_with = |model: &CostModel| -> AnswerOutcome {
        let plans = optimize_plan_pair(&base_pair, &program.schema, model, Strategy::Exhaustive);
        answer_star_resilient_planned_cfg(
            &q, &plans, &program.schema, &db, &quiet, &resilience, cfg,
        )
        .expect("planned run")
    };
    let calibrated_model = static_model.calibrated(&frozen);
    let calibrated = run_with(&calibrated_model);
    let oracle = run_with(&CostModel::from_database(&db));

    // Same answers, same completeness — calibration only re-orders.
    for (name, outcome) in [("calibrated", &calibrated), ("oracle", &oracle)] {
        assert_eq!(outcome.report.under, static_run.report.under, "{name} answers");
        assert_eq!(outcome.report.completeness, static_run.report.completeness, "{name}");
        assert!(!outcome.degradation.is_degraded(), "{name} must not degrade");
    }
    // Determinism: a second run from the same frozen profile is
    // bit-identical.
    let again = run_with(&calibrated_model);
    assert_eq!(again.report.under, calibrated.report.under);
    assert_eq!(again.report.stats, calibrated.report.stats);
    assert_eq!(again.virtual_ms, calibrated.virtual_ms);
    assert_eq!(again.retries, calibrated.retries);
    assert_eq!(again.failures, calibrated.failures);

    let saved_oracle = static_run.virtual_ms.saturating_sub(oracle.virtual_ms) as f64;
    let saved_calib = static_run.virtual_ms.saturating_sub(calibrated.virtual_ms) as f64;
    let recovery = saved_calib / saved_oracle.max(1e-12);
    assert!(
        saved_oracle > 0.0,
        "the oracle model must beat the static plan for recovery to be meaningful"
    );
    assert!(
        recovery >= 0.8,
        "acceptance: calibrated plan recovers >= 80% of the oracle speedup, got {:.0}% \
         (static {} vs calibrated {} vs oracle {} virtual ms)",
        recovery * 100.0,
        static_run.virtual_ms,
        calibrated.virtual_ms,
        oracle.virtual_ms
    );
    for (name, outcome, rec_cell) in [
        ("static", &static_run, "-".to_owned()),
        ("calibrated", &calibrated, format!("{:.0}%", recovery * 100.0)),
        ("oracle", &oracle, "100%".to_owned()),
    ] {
        t.row(vec![
            name.to_owned(),
            outcome.report.under.len().to_string(),
            outcome.report.stats.calls.to_string(),
            outcome.virtual_ms.to_string(),
            format!(
                "{:.2}x",
                outcome.virtual_ms as f64 / (static_run.virtual_ms as f64).max(1e-12)
            ),
            rec_cell,
        ]);
    }
    t
}

/// E23 — columnar vs row executor across batch widths: the same E18
/// workload (overestimate plans, dup-key-rich instances) run through the
/// row-at-a-time baseline and the vectorized columnar pipeline. Both
/// executors assemble identical batch windows, so their source-call counts
/// are equal by construction at every width — the table isolates the pure
/// representation win (interned columns, branch-free filtering, code-level
/// dedup at the projection root). Times are summed medians over the four
/// families; answers are asserted identical to the row baseline first.
pub fn e23_columnar_executor() -> Table {
    use lap_engine::{execute_physical_union, lower_union, ExecConfig};
    let mut t = Table::new(
        "E23 — columnar vs row executor across batch widths",
        "The E18 workload (overestimate plans, domain 8, 200 tuples per relation, four families) under both executors at each batch width. Wire traffic is identical by construction (same dedup windows), so the speedup is purely the columnar representation: dictionary-interned columns, selection vectors, branch-free negation filtering, and code-tuple dedup at the projection root. Times are sums of per-family medians.",
        &[
            "batch width",
            "row executor",
            "columnar",
            "speedup",
            "calls",
        ],
    );
    let fams = [
        ("forward_chain(6)", forward_chain(6)),
        ("star(5)", star(5)),
        ("feasible_not_orderable(3)", feasible_not_orderable(3)),
        ("gav_unfolding(3,2,1)", gav_unfolding(3, 2, 1)),
    ];
    let cfg = InstanceConfig {
        domain_size: 8,
        tuples_per_relation: 200,
    };
    let prepared: Vec<_> = fams
        .iter()
        .map(|(name, inst)| {
            let db = gen_instance(&inst.schema, &cfg, &mut StdRng::seed_from_u64(18));
            let pair = plan_star(&inst.query, &inst.schema);
            let parts = pair.over.eval_parts();
            let union = lower_union(&parts, &inst.schema);
            (*name, inst.schema.clone(), db, union)
        })
        .collect();
    for width in [1usize, 16, 64, 256, 1024, 4096] {
        let exec = ExecConfig::with_batch_size(width);
        let mut d_row = Duration::ZERO;
        let mut d_col = Duration::ZERO;
        let mut calls = 0u64;
        for (name, schema, db, union) in &prepared {
            let mut row_reg = SourceRegistry::new(db, schema);
            let want = execute_physical_union(union, &mut row_reg, exec.rows())
                .expect("row executor evaluates");
            let mut col_reg = SourceRegistry::new(db, schema);
            let got =
                execute_physical_union(union, &mut col_reg, exec).expect("columnar evaluates");
            assert_eq!(want, got, "executors disagree on {name} at width {width}");
            assert_eq!(
                row_reg.stats(),
                col_reg.stats(),
                "wire traffic differs on {name} at width {width}"
            );
            calls += col_reg.stats().calls;
            d_row += time_median(TIMING_ITERS, || {
                let mut reg = SourceRegistry::new(db, schema);
                std::hint::black_box(execute_physical_union(union, &mut reg, exec.rows()).unwrap());
            });
            d_col += time_median(TIMING_ITERS, || {
                let mut reg = SourceRegistry::new(db, schema);
                std::hint::black_box(execute_physical_union(union, &mut reg, exec).unwrap());
            });
        }
        t.row(vec![
            width.to_string(),
            fmt_duration(d_row),
            fmt_duration(d_col),
            format!("{:.2}x", d_row.as_secs_f64() / d_col.as_secs_f64().max(1e-12)),
            calls.to_string(),
        ]);
    }
    t
}

/// The mixed request set E24 cycles through: a feasible negation query,
/// an infeasible union, a plain scan, and a two-query program. Repeated
/// texts by design — the shared plan cache is what the experiment
/// measures.
const E24_SCENARIOS: &[(&str, &str)] = &[
    (
        "B^ioo. B^oio. C^oo. L^o.\nQ(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        r#"B(1, "a", "t1"). B(2, "b", "t2"). C(1, "a"). C(2, "b"). L(1)."#,
    ),
    (
        "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
        "R(1, 10). S(99). T(7, 8). B(1, 5).",
    ),
    ("C^oo.\nQ(i) :- C(i, a).", r#"C(1, "a"). C(2, "b"). C(3, "c")."#),
    (
        "C^oo. F^o.\nQ(i) :- C(i, a).\nP(x) :- F(x).",
        r#"C(1, "a"). F(9). F(10)."#,
    ),
];

/// E24 — daemon concurrency: a live `lapd` server (in-process, ephemeral
/// port) under an increasing concurrent-client sweep on the mixed
/// four-scenario workload. Every response is asserted byte-identical to
/// the one-shot ANSWER\* rendering of the same program — the daemon may
/// amortize parsing, planning, and lowering through its shared plan
/// cache, but never change a byte of the answer. Each width runs against
/// a fresh server so the plan-cache hit rate is per-row; the acceptance
/// bar is zero failed requests at every width and a >80% hit rate at 200
/// concurrent clients.
pub fn e24_daemon_concurrency() -> Table {
    use lap::daemon::{DaemonConfig, Server};
    use lap::proto::{Client, QueryOptions, Response};
    use lap_core::{answer_star_obs_cfg, render_answer_report};
    use lap_engine::{Database, ExecConfig};
    use lap_obs::Recorder;
    use std::time::Instant;

    // The daemon's rendering contract, replicated in-process: per query a
    // `query <sig>:` header, the shared answer-report renderer, and a
    // blank separator line. `tests/daemon.rs` and the CI smoke test pin
    // the same bytes against the actual `lapq run` binary.
    let one_shot_text = |program_text: &str, facts_text: &str| -> String {
        let program = parse_program(program_text).expect("scenario parses");
        let db = Database::from_facts(facts_text).expect("scenario facts parse");
        let recorder = Recorder::disabled();
        let mut text = String::new();
        for q in &program.queries {
            text.push_str(&format!("query {}:\n", q.signature.0));
            let report =
                answer_star_obs_cfg(q, &program.schema, &db, &recorder, ExecConfig::default())
                    .expect("scenario answers");
            text.push_str(&render_answer_report(&report));
            text.push('\n');
        }
        text
    };
    let expected: Vec<String> =
        E24_SCENARIOS.iter().map(|(p, f)| one_shot_text(p, f)).collect();

    let mut t = Table::new(
        "E24 — daemon concurrency (shared plan cache, mixed workload)",
        "An in-process lapd server per row, hammered by N concurrent client connections each issuing 8 queries from a 4-scenario mix (feasible negation, infeasible union, plain scan, two-query program). Latencies are host wall-clock per request (connect excluded); 'hit rate' is the server's plan-cache view of the whole row. Every response is asserted byte-identical to the one-shot ANSWER* rendering; the acceptance bar is zero failures at every width and a >80% cache hit rate at 200 clients.",
        &["clients", "requests", "ok", "wall ms", "qps", "p50 ms", "p95 ms", "p99 ms", "cache hit rate"],
    );

    const REQUESTS_PER_CLIENT: usize = 8;
    for clients in [8usize, 32, 64, 128, 200, 256] {
        let server = Server::start(
            DaemonConfig {
                max_sessions: 512,
                admission_wait_ms: 60_000,
                ..DaemonConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("ephemeral bind");
        let addr = server.addr().to_string();

        let started = Instant::now();
        let per_client: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr).expect("client connects");
                        let mut latencies_us = Vec::with_capacity(REQUESTS_PER_CLIENT);
                        for r in 0..REQUESTS_PER_CLIENT {
                            let idx = (c + r) % E24_SCENARIOS.len();
                            let (program, facts) = E24_SCENARIOS[idx];
                            let t0 = Instant::now();
                            let resp = client
                                .query(program, facts, QueryOptions::default())
                                .expect("query frame round-trips");
                            latencies_us.push(t0.elapsed().as_micros() as u64);
                            match resp {
                                Response::Ok { text, .. } => assert_eq!(
                                    text, expected[idx],
                                    "client {c} request {r}: daemon answer diverged"
                                ),
                                Response::Error { code, message, .. } => {
                                    panic!("client {c} request {r}: {code}: {message}")
                                }
                            }
                        }
                        latencies_us
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        let wall = started.elapsed();

        let mut latencies: Vec<u64> = per_client.into_iter().flatten().collect();
        latencies.sort_unstable();
        let total = clients * REQUESTS_PER_CLIENT;
        assert_eq!(latencies.len(), total, "every request must succeed");

        let snap = server.metrics();
        let hits = snap.counter("plan_cache.hit");
        let misses = snap.counter("plan_cache.miss");
        assert_eq!(hits + misses, total as u64, "every query consulted the cache");
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        if clients >= 200 {
            assert!(
                hit_rate > 0.80,
                "acceptance: >80% plan-cache hit rate at {clients} clients (got {:.1}%)",
                100.0 * hit_rate
            );
        }
        server.shutdown();

        let pct = |p: f64| -> f64 {
            let idx = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
            latencies[idx] as f64 / 1000.0
        };
        t.row(vec![
            clients.to_string(),
            total.to_string(),
            latencies.len().to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1000.0),
            format!("{:.0}", total as f64 / wall.as_secs_f64().max(1e-9)),
            format!("{:.2}", pct(50.0)),
            format!("{:.2}", pct(95.0)),
            format!("{:.2}", pct(99.0)),
            format!("{:.1}%", 100.0 * hit_rate),
        ]);
    }
    t
}

/// E25 — daemon self-healing under source drift: a live `lapd` server
/// (in-process, telemetry watcher on) is fed a baseline workload, then
/// the same query against a 100x-drifted instance. The watcher must
/// detect the drift from the streamed journal folds and republish a
/// recalibrated plan on its own — no `recalibrate` frame, no restart.
/// Recovery is measured E22-style: the daemon's *live* profile (fetched
/// over the wire with a `profile` frame) calibrates a cost model, and
/// the resulting plan's virtual-ms saving under latency chaos is
/// compared against the oracle re-plan built from true extents.
/// Acceptance: recovery >= 80%, zero restarts, and a control query
/// byte-identical to its one-shot rendering before and after the sweep.
pub fn e25_daemon_drift_recalibration() -> Table {
    use lap::daemon::{DaemonConfig, Server};
    use lap::proto::{Client, QueryOptions, Response};
    use lap_core::{
        answer_star_obs_cfg, answer_star_resilient_planned_cfg, render_answer_report,
        AnswerOutcome,
    };
    use lap_engine::{Database, ExecConfig, FaultConfig, ResilienceConfig, RetryPolicy};
    use lap_obs::{FeedbackStore, Recorder};
    use std::time::{Duration, Instant};

    let mut t = Table::new(
        "E25 — daemon drift auto-recalibration (telemetry watcher, live profile)",
        "An in-process lapd (fold every request, 20ms watcher, no cooldown) answers Q(x, y) :- A(x), D(x, y) over A^o, D^oo, D^io first at A=4 rows (baseline folds freeze the drift expectations), then at A=400 (100x drift). The watcher must flag the drift and republish a recalibrated plan unprompted; the experiment polls the recalibration counter and never sends a recalibrate frame. The 'daemon' row plans from the live profile fetched with a profile frame, replayed under 10ms-latency chaos (rate 0.05, standard retry, seed 25) on the drifted instance; recovery is its share of the oracle re-plan's virtual-ms saving. Acceptance: recovery >= 80%, zero daemon restarts, and the untouched bookstore control byte-identical to its one-shot rendering before and after the sweep.",
        &["plan", "answers", "calls", "virtual ms", "vs static", "recovery"],
    );

    const DRIFT: &str = "A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).";
    let facts_with = |a_rows: usize| {
        let mut facts = String::new();
        for i in 0..a_rows {
            facts.push_str(&format!("A({i}). "));
        }
        for i in 0..8 {
            facts.push_str(&format!("D({i}, {}). ", 100 + i));
        }
        facts
    };
    // The control scenario: its relations are disjoint from the drift, so
    // its cached plan must never be touched by the sweep.
    let (control_program, control_facts) = E24_SCENARIOS[0];
    let one_shot_text = |program_text: &str, facts_text: &str| -> String {
        let program = parse_program(program_text).expect("scenario parses");
        let db = Database::from_facts(facts_text).expect("scenario facts parse");
        let recorder = Recorder::disabled();
        let mut text = String::new();
        for q in &program.queries {
            text.push_str(&format!("query {}:\n", q.signature.0));
            let report =
                answer_star_obs_cfg(q, &program.schema, &db, &recorder, ExecConfig::default())
                    .expect("scenario answers");
            text.push_str(&render_answer_report(&report));
            text.push('\n');
        }
        text
    };
    let control_expected = one_shot_text(control_program, control_facts);

    let server = Server::start(
        DaemonConfig {
            fold_every_requests: 1,
            watch_interval_ms: 20,
            recalibrate_cooldown_ms: 0,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("ephemeral bind");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");
    let answer_text = |client: &mut Client, program: &str, facts: &str| -> String {
        match client.query(program, facts, QueryOptions::default()).expect("query frame") {
            Response::Ok { text, .. } => text,
            Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
        }
    };

    // Control before the drift, baseline phase, drifted phase.
    assert_eq!(
        answer_text(&mut client, control_program, control_facts),
        control_expected,
        "pre-drift control must match the one-shot rendering"
    );
    answer_text(&mut client, DRIFT, &facts_with(4));
    answer_text(&mut client, DRIFT, &facts_with(400));

    // The watcher must act alone: poll its counter, never send a
    // recalibrate frame.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if server.metrics().counter("daemon.telemetry.recalibrations") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "acceptance: the watcher never recalibrated; stats: {}",
            server.stats_json().to_pretty()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let journal = server.journal().expect("server-wide journal");
    assert!(
        journal.events.iter().any(|e| e.kind == "daemon.recalibrate"),
        "acceptance: the recalibration must be journaled"
    );

    // Zero restarts: the same server instance answers the control query
    // byte-identically after the sweep.
    assert_eq!(
        answer_text(&mut client, control_program, control_facts),
        control_expected,
        "acceptance: post-sweep control must stay byte-identical"
    );

    // The live profile, over the wire — the same store the watcher
    // calibrated from.
    let live = match client.profile().expect("profile frame") {
        Response::Ok { data, .. } => {
            let store = FeedbackStore::from_json(&data).expect("live profile parses");
            store.validate().expect("live profile validates");
            store
        }
        Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
    };
    server.shutdown();

    // E22-style recovery on the drifted instance: static vs the daemon's
    // live-profile calibration vs the true-extent oracle.
    let program = parse_program(DRIFT).expect("parses");
    let q = program.single_query().expect("one query").clone();
    let db = Database::from_facts(&facts_with(400)).expect("facts parse");
    let resilience = ResilienceConfig {
        fault: Some(FaultConfig {
            error_rate: 0.05,
            latency_ms: 10,
            latency_jitter_ms: 0,
            timeout_ms: None,
            seed: 25,
        }),
        retry: RetryPolicy::standard(),
    };
    let cfg = ExecConfig::default();
    let base_pair = plan_star(&q, &program.schema);
    let quiet = Recorder::disabled();
    let run_with = |model: &CostModel| -> AnswerOutcome {
        let plans = optimize_plan_pair(&base_pair, &program.schema, model, Strategy::Exhaustive);
        answer_star_resilient_planned_cfg(
            &q, &plans, &program.schema, &db, &quiet, &resilience, cfg,
        )
        .expect("planned run")
    };
    let static_model = CostModel::new();
    let static_run = run_with(&static_model);
    let daemon_run = run_with(&static_model.calibrated(&live));
    let oracle = run_with(&CostModel::from_database(&db));
    for (name, outcome) in [("daemon", &daemon_run), ("oracle", &oracle)] {
        assert_eq!(outcome.report.under, static_run.report.under, "{name} answers");
        assert!(!outcome.degradation.is_degraded(), "{name} must not degrade");
    }
    let saved_oracle = static_run.virtual_ms.saturating_sub(oracle.virtual_ms) as f64;
    let saved_daemon = static_run.virtual_ms.saturating_sub(daemon_run.virtual_ms) as f64;
    let recovery = saved_daemon / saved_oracle.max(1e-12);
    assert!(saved_oracle > 0.0, "the oracle re-plan must beat the static plan");
    assert!(
        recovery >= 0.8,
        "acceptance: live-profile plan recovers >= 80% of the oracle saving, got {:.0}% \
         (static {} vs daemon {} vs oracle {} virtual ms)",
        recovery * 100.0,
        static_run.virtual_ms,
        daemon_run.virtual_ms,
        oracle.virtual_ms
    );
    for (name, outcome, rec_cell) in [
        ("static", &static_run, "-".to_owned()),
        ("daemon", &daemon_run, format!("{:.0}%", recovery * 100.0)),
        ("oracle", &oracle, "100%".to_owned()),
    ] {
        t.row(vec![
            name.to_owned(),
            outcome.report.under.len().to_string(),
            outcome.report.stats.calls.to_string(),
            outcome.virtual_ms.to_string(),
            format!(
                "{:.2}x",
                outcome.virtual_ms as f64 / (static_run.virtual_ms as f64).max(1e-12)
            ),
            rec_cell,
        ]);
    }
    t
}

/// Runs every experiment with the default sizes used in EXPERIMENTS.md.
pub fn run_all() -> Vec<Table> {
    let sizes = [8usize, 16, 32, 64, 128, 256];
    vec![
        e1_example_fidelity(),
        e2_answerable_scaling(&sizes),
        e3_plan_star_scaling(&sizes),
        e4_fast_path_effectiveness(200),
        e5_cq_baselines(100),
        e6_ucq_baselines(60),
        e7_negation_cost(60),
        e8_containment_engines(100),
        e9_runtime_completeness(100),
        e10_domain_enumeration(30),
        e11_hardness_stress(),
        e12_semantic_optimizer(),
        e13_recursion_profile(),
        e14_plan_ordering(60),
        e15_mediator_pipeline(),
        e16_index_ablation(),
        e17_end_to_end_scenario(),
        e18_batched_executor(),
        e19_fault_resilience(),
        e20_journal_overhead(),
        e21_overlapped_io(),
        e22_calibrated_replanning(),
        e23_columnar_executor(),
        e24_daemon_concurrency(),
        e25_daemon_drift_recalibration(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_all_examples_reproduce() {
        let t = e1_example_fidelity();
        assert_eq!(t.rows.len(), 10);
        for row in &t.rows {
            assert_eq!(row[2], "yes", "example {} failed: {}", row[0], row[1]);
        }
    }

    #[test]
    fn e4_small_run_has_sane_fractions() {
        let t = e4_fast_path_effectiveness(20);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e5_small_run_agrees() {
        let t = e5_cq_baselines(10);
        for row in &t.rows {
            assert_eq!(row[1], "100%");
        }
    }

    #[test]
    fn e6_small_run_agrees() {
        let t = e6_ucq_baselines(10);
        for row in &t.rows {
            assert_eq!(row[1], "100%");
        }
    }

    #[test]
    fn e8_small_run_agrees() {
        let t = e8_containment_engines(10);
        for row in &t.rows {
            assert_eq!(row[1], "100%");
        }
    }

    #[test]
    fn e9_fk_closed_is_always_complete() {
        let t = e9_runtime_completeness(20);
        assert_eq!(t.rows[1][3], "100%", "fk-closed instances must be complete");
    }

    #[test]
    fn e12_constraints_flip_feasibility() {
        let t = e12_semantic_optimizer();
        for row in &t.rows {
            assert_eq!(row[1], "false");
            assert_eq!(row[3], "true");
        }
    }

    #[test]
    fn e13_counters_grow_with_n() {
        let t = e13_recursion_profile();
        let calls: Vec<u64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(calls.windows(2).all(|w| w[0] < w[1]), "{calls:?}");
    }

    #[test]
    fn e14_orders_agree_and_never_lose() {
        let t = e14_plan_ordering(10);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e15_unfolding_squares_and_stays_feasible() {
        let t = e15_mediator_pipeline();
        let counts: Vec<usize> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert_eq!(counts, vec![1, 4, 16, 64]);
        for row in &t.rows {
            assert_eq!(row[2], "true");
        }
    }

    #[test]
    fn e16_runs_and_produces_rows() {
        let t = e16_index_ablation();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn e17_scenario_is_feasible_and_complete() {
        let t = e17_end_to_end_scenario();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn e11_small_n_agree() {
        let t = e11_hardness_stress();
        for row in &t.rows {
            assert_eq!(row[4], "yes");
        }
    }

    #[test]
    fn e22_calibration_recovers_oracle_speedup() {
        // The acceptance assertions (>= 80% recovery, identical answers,
        // bit-identical repetition) live inside the experiment.
        let t = e22_calibrated_replanning();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "static");
        assert_eq!(t.rows[1][0], "calibrated");
    }
}
