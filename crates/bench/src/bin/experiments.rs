//! Experiment driver: prints the E1–E25 tables.
//!
//! ```sh
//! cargo run --release -p lap-bench --bin experiments             # all, text
//! cargo run --release -p lap-bench --bin experiments -- e2 e11  # subset
//! cargo run --release -p lap-bench --bin experiments -- --markdown
//! cargo run --release -p lap-bench --bin experiments -- --json            # BENCH_PR10.json
//! cargo run --release -p lap-bench --bin experiments -- --json=tables.json
//! ```

use lap_bench::runner;
use lap_bench::tables::{tables_to_json, Table};

/// Default path for `--json` without an explicit `=<path>`.
const DEFAULT_JSON_PATH: &str = "BENCH_PR10.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let json_path: Option<String> = args.iter().find_map(|a| {
        if a == "--json" {
            Some(DEFAULT_JSON_PATH.to_owned())
        } else {
            a.strip_prefix("--json=").map(str::to_owned)
        }
    });
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    let sizes = [8usize, 16, 32, 64, 128, 256];
    type Runner = Box<dyn Fn() -> Table>;
    let all: Vec<(&str, Runner)> = vec![
        ("e1", Box::new(runner::e1_example_fidelity)),
        ("e2", Box::new(move || runner::e2_answerable_scaling(&sizes))),
        ("e3", Box::new(move || runner::e3_plan_star_scaling(&sizes))),
        ("e4", Box::new(|| runner::e4_fast_path_effectiveness(200))),
        ("e5", Box::new(|| runner::e5_cq_baselines(100))),
        ("e6", Box::new(|| runner::e6_ucq_baselines(60))),
        ("e7", Box::new(|| runner::e7_negation_cost(60))),
        ("e8", Box::new(|| runner::e8_containment_engines(100))),
        ("e9", Box::new(|| runner::e9_runtime_completeness(100))),
        ("e10", Box::new(|| runner::e10_domain_enumeration(30))),
        ("e11", Box::new(runner::e11_hardness_stress)),
        ("e12", Box::new(runner::e12_semantic_optimizer)),
        ("e13", Box::new(runner::e13_recursion_profile)),
        ("e14", Box::new(|| runner::e14_plan_ordering(60))),
        ("e15", Box::new(runner::e15_mediator_pipeline)),
        ("e16", Box::new(runner::e16_index_ablation)),
        ("e17", Box::new(runner::e17_end_to_end_scenario)),
        ("e18", Box::new(runner::e18_batched_executor)),
        ("e19", Box::new(runner::e19_fault_resilience)),
        ("e20", Box::new(runner::e20_journal_overhead)),
        ("e21", Box::new(runner::e21_overlapped_io)),
        ("e22", Box::new(runner::e22_calibrated_replanning)),
        ("e23", Box::new(runner::e23_columnar_executor)),
        ("e24", Box::new(runner::e24_daemon_concurrency)),
        ("e25", Box::new(runner::e25_daemon_drift_recalibration)),
    ];

    let mut rendered: Vec<Table> = Vec::new();
    for (id, run) in &all {
        if !selected.is_empty() && !selected.iter().any(|s| s == id) {
            continue;
        }
        let table = run();
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
        rendered.push(table);
    }

    if let Some(path) = json_path {
        let doc = format!("{}\n", tables_to_json(&rendered).to_pretty());
        match std::fs::write(&path, doc) {
            Ok(()) => eprintln!("wrote {} table(s) to {path}", rendered.len()),
            Err(e) => {
                eprintln!("experiments: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
