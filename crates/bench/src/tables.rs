//! Plain-text / markdown / JSON table rendering for the experiment harness.

use lap_obs::Json;
use std::fmt;
use std::time::Duration;

/// A rendered experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id + short title, e.g. `"E2 — ANSWERABLE scaling"`.
    pub title: String,
    /// One line of context (workload, parameters, the paper claim).
    pub caption: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row must match `columns.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        caption: impl Into<String>,
        columns: &[&str],
    ) -> Table {
        Table {
            title: title.into(),
            caption: caption.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n{}\n\n", self.title, self.caption));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as a machine-readable [`Json`] value (the `lap-obs` writer;
    /// the workspace has no serde): `{title, caption, columns, rows}`, with
    /// every cell kept as the already-formatted string.
    pub fn to_json(&self) -> Json {
        let strings = |items: &[String]| {
            Json::Arr(items.iter().map(Json::str).collect())
        };
        Json::obj([
            ("title", Json::str(&self.title)),
            ("caption", Json::str(&self.caption)),
            ("columns", strings(&self.columns)),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| strings(r)).collect()),
            ),
        ])
    }
}

/// Bundles rendered tables into one exportable document:
/// `{"tables": [{title, caption, columns, rows}, …]}`.
pub fn tables_to_json(tables: &[Table]) -> Json {
    Json::obj([(
        "tables",
        Json::Arr(tables.iter().map(Table::to_json).collect()),
    )])
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "  {}", self.caption)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (w, cell) in widths.iter().zip(cells.iter()) {
                write!(f, "{cell:<w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a duration compactly (`12.3µs`, `4.56ms`, `1.23s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Runs `f` repeatedly and returns the median wall time over `iters`
/// executions (with one warmup).
pub fn time_median(iters: usize, mut f: impl FnMut()) -> Duration {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..iters.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_markdown() {
        let mut t = Table::new("E0 — demo", "a caption", &["n", "time"]);
        t.row(vec!["8".into(), "1.2µs".into()]);
        t.row(vec!["16".into(), "4.9µs".into()]);
        let text = t.to_string();
        assert!(text.contains("E0 — demo"));
        assert!(text.contains("16"));
        let md = t.to_markdown();
        assert!(md.starts_with("### E0 — demo"));
        assert!(md.contains("| 8 | 1.2µs |"));
    }

    #[test]
    fn json_export_round_trips() {
        let mut t = Table::new("E0 — demo", "a caption", &["n", "time"]);
        t.row(vec!["8".into(), "1.2µs".into()]);
        let doc = tables_to_json(&[t]);
        let parsed = lap_obs::json::parse(&doc.to_pretty()).unwrap();
        let tables = parsed.get("tables").and_then(Json::as_arr).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].get("title").and_then(Json::as_str),
            Some("E0 — demo")
        );
        let rows = tables[0].get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("1.2µs"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("t", "c", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn median_timing_is_positive() {
        let d = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d > Duration::ZERO);
    }
}
