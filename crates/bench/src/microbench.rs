//! A minimal, dependency-free micro-benchmark harness with a
//! Criterion-shaped API.
//!
//! The workspace builds offline (no crates.io), so the real `criterion`
//! crate is unavailable. This module keeps the nine `benches/*.rs` targets
//! compiling and running with only an import change: it implements the
//! slice of Criterion's API they use — [`Criterion`], `benchmark_group`,
//! `bench_with_input`/`bench_function`, [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology: per benchmark, a timed warm-up, then `sample_size` samples;
//! each sample runs the closure in a batch sized so one sample takes about
//! `measurement_time / sample_size`. The median ns/iter and the spread
//! (min–max of per-sample means) are printed to stdout. This is a
//! smoke-grade harness — for publication-grade statistics, rerun the same
//! closures under a full harness elsewhere.

use std::fmt;
use std::time::{Duration, Instant};

/// Harness configuration + entry point (Criterion-shaped).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(600),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { crit: self }
    }
}

/// A named collection of benchmarks sharing the group's configuration.
pub struct BenchmarkGroup<'a> {
    crit: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f`, ignoring `input` (present for API compatibility —
    /// the closure already captures what it needs).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, _input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.crit);
        f(&mut b, _input);
        b.report(&id.0);
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.crit);
        f(&mut b);
        b.report(name);
        self
    }

    /// Ends the group (no-op; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark identifier `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A new id rendered as `name/parameter`.
    pub fn new(name: &str, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Runs and times one closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(crit: &Criterion) -> Bencher {
        Bencher {
            warm_up: crit.warm_up,
            measurement: crit.measurement,
            sample_size: crit.sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Times `f`: warm-up, calibration, then `sample_size` batched samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also serves as calibration).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let sample_budget =
            self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("  {name}: no samples");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        println!(
            "  {name}: {} / iter  (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(s[0]),
            fmt_ns(*s.last().expect("non-empty")),
            s.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Criterion-compatible group declaration: builds a function that runs
/// every target against the given configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut crit = $config;
            $( $target(&mut crit); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::microbench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Criterion-compatible main: runs each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut crit = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut group = crit.benchmark_group("smoke");
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("chain", 32).0, "chain/32");
    }
}
