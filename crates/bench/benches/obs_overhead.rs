//! Observability overhead bench: `eval_ordered_cq` through a
//! [`SourceRegistry`] whose recorder is disabled (the default), metrics-only,
//! fully tracing, and journaling (the always-on flight-recorder tier). The
//! acceptance bar for the `lap-obs` layer is that the disabled (no-op sink)
//! configuration adds no measurable overhead over the pre-observability
//! engine — the registry's counters are the same relaxed atomic adds either
//! way — while the metrics, tracing, and journal tiers pay only for what
//! they record.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_engine::{eval_ordered_cq, SourceRegistry};
use lap_obs::{JournalConfig, Recorder};
use lap_prng::StdRng;
use lap_workload::families::forward_chain;
use lap_workload::{gen_instance, InstanceConfig};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    for tuples in [40usize, 160] {
        let inst = forward_chain(4);
        let cfg = InstanceConfig {
            domain_size: 12,
            tuples_per_relation: tuples,
        };
        let db = gen_instance(&inst.schema, &cfg, &mut StdRng::seed_from_u64(7));
        let plan = inst.query.disjuncts[0].clone();
        let recorders = [
            ("disabled", Recorder::disabled()),
            ("metrics", Recorder::new()),
            ("tracing", Recorder::with_tracing()),
            ("journal", Recorder::with_journal(JournalConfig::light())),
        ];
        for (tier, recorder) in &recorders {
            let label = format!("eval_{tier}");
            group.bench_with_input(
                BenchmarkId::new(&label, tuples),
                &tuples,
                |b, _| {
                    b.iter(|| {
                        let mut reg =
                            SourceRegistry::new(&db, &inst.schema).recording(recorder);
                        eval_ordered_cq(&plan, &[], &mut reg).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
