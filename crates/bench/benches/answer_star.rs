//! Criterion bench for algorithm ANSWER\* (paper, Figure 4; experiments
//! E9/E10): runtime evaluation through pattern-enforcing sources, the
//! call-cache ablation, and the domain-enumeration refinement.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_core::{answer_star, answer_star_with_domain, plan_star};
use lap_engine::{eval_ordered_union, SourceRegistry};
use lap_workload::families::gav_unfolding;
use lap_workload::{gen_instance, InstanceConfig};
use lap_prng::StdRng;

fn bench_answer_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_star");
    for tuples in [20usize, 80, 320] {
        let inst = gav_unfolding(3, 2, 1);
        let cfg = InstanceConfig {
            domain_size: 12,
            tuples_per_relation: tuples,
        };
        let db = gen_instance(&inst.schema, &cfg, &mut StdRng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::new("answer_star", tuples), &tuples, |b, _| {
            b.iter(|| answer_star(&inst.query, &inst.schema, &db).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("with_domain_views", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    answer_star_with_domain(&inst.query, &inst.schema, &db, 1_000_000).unwrap()
                })
            },
        );
        // Ablation: evaluating the overestimate plan with vs without the
        // source-call cache.
        let pair = plan_star(&inst.query, &inst.schema);
        let parts = pair.over.eval_parts();
        group.bench_with_input(BenchmarkId::new("eval_no_cache", tuples), &tuples, |b, _| {
            b.iter(|| {
                let mut reg = SourceRegistry::new(&db, &inst.schema);
                eval_ordered_union(&parts, &mut reg).unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("eval_with_cache", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    let mut reg = SourceRegistry::with_cache(&db, &inst.schema);
                    eval_ordered_union(&parts, &mut reg).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_answer_star
}
criterion_main!(benches);
