//! Criterion bench comparing the paper's uniform FEASIBLE against the Li &
//! Chang baselines on their home classes (paper §5.3–5.4; experiments
//! E5/E6).

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_baselines::{cq_stable, cq_stable_star, ucq_stable, ucq_stable_star};
use lap_core::feasible;
use lap_ir::{Schema, UnionQuery};
use lap_workload::{gen_query, gen_schema, QueryConfig, SchemaConfig};
use lap_prng::StdRng;

fn workload(disjuncts: usize, positives: usize, n: usize) -> Vec<(UnionQuery, Schema)> {
    (0..n as u64)
        .map(|seed| {
            let schema = gen_schema(
                &SchemaConfig {
                    free_scan_fraction: 0.5,
                    ..SchemaConfig::default()
                },
                &mut StdRng::seed_from_u64(seed % 8),
            );
            let q = gen_query(
                &schema,
                &QueryConfig {
                    num_disjuncts: disjuncts,
                    positive_per_disjunct: positives,
                    negative_per_disjunct: 0,
                    extra_vars: 2,
                    head_arity: 2,
                    constant_fraction: 0.1,
                    constant_pool: 3,
                },
                &mut StdRng::seed_from_u64(seed),
            );
            (q, schema)
        })
        .collect()
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    for positives in [3usize, 6] {
        let cqs = workload(1, positives, 50);
        group.bench_with_input(BenchmarkId::new("cq_stable", positives), &positives, |b, _| {
            b.iter(|| {
                for (q, s) in &cqs {
                    std::hint::black_box(cq_stable(&q.disjuncts[0], s));
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("cq_stable_star", positives),
            &positives,
            |b, _| {
                b.iter(|| {
                    for (q, s) in &cqs {
                        std::hint::black_box(cq_stable_star(&q.disjuncts[0], s));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("feasible_on_cq", positives),
            &positives,
            |b, _| {
                b.iter(|| {
                    for (q, s) in &cqs {
                        std::hint::black_box(feasible(q, s));
                    }
                })
            },
        );
    }
    for disjuncts in [2usize, 5] {
        let ucqs = workload(disjuncts, 3, 50);
        group.bench_with_input(
            BenchmarkId::new("ucq_stable", disjuncts),
            &disjuncts,
            |b, _| {
                b.iter(|| {
                    for (q, s) in &ucqs {
                        std::hint::black_box(ucq_stable(q, s));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ucq_stable_star", disjuncts),
            &disjuncts,
            |b, _| {
                b.iter(|| {
                    for (q, s) in &ucqs {
                        std::hint::black_box(ucq_stable_star(q, s));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("feasible_on_ucq", disjuncts),
            &disjuncts,
            |b, _| {
                b.iter(|| {
                    for (q, s) in &ucqs {
                        std::hint::black_box(feasible(q, s));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_baselines
}
criterion_main!(benches);
