//! Criterion bench for the containment engines (paper §5.1; experiments
//! E8/E11): Chandra–Merlin mapping search vs the canonical-database oracle
//! vs the acyclic (GYO + Yannakakis) fast path, and the Wei–Lausen
//! recursion on the excluded-middle family.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_containment::{
    cq_contained, cq_contained_acyclic, cq_contained_canonical, ucqn_contained,
};
use lap_ir::ConjunctiveQuery;
use lap_workload::families::excluded_middle_pair;
use lap_workload::{gen_query, gen_schema, QueryConfig, SchemaConfig};
use lap_prng::StdRng;

fn random_cq_pairs(n: usize, positives: usize) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let schema = gen_schema(
        &SchemaConfig {
            free_scan_fraction: 0.5,
            ..SchemaConfig::default()
        },
        &mut StdRng::seed_from_u64(42),
    );
    let cfg = QueryConfig {
        num_disjuncts: 1,
        positive_per_disjunct: positives,
        negative_per_disjunct: 0,
        extra_vars: 2,
        head_arity: 2,
        constant_fraction: 0.1,
        constant_pool: 3,
    };
    (0..n as u64)
        .map(|seed| {
            let p = gen_query(&schema, &cfg, &mut StdRng::seed_from_u64(seed)).disjuncts[0].clone();
            let q = gen_query(&schema, &cfg, &mut StdRng::seed_from_u64(seed + 9999)).disjuncts[0]
                .clone();
            (p, q)
        })
        .collect()
}

fn bench_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment");
    for positives in [3usize, 6] {
        let pairs = random_cq_pairs(50, positives);
        group.bench_with_input(BenchmarkId::new("cq_mapping", positives), &positives, |b, _| {
            b.iter(|| {
                for (p, q) in &pairs {
                    std::hint::black_box(cq_contained(p, q));
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("cq_canonical_db", positives),
            &positives,
            |b, _| {
                b.iter(|| {
                    for (p, q) in &pairs {
                        std::hint::black_box(cq_contained_canonical(p, q));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cq_acyclic_path", positives),
            &positives,
            |b, _| {
                b.iter(|| {
                    for (p, q) in &pairs {
                        std::hint::black_box(cq_contained_acyclic(p, q));
                    }
                })
            },
        );
    }
    for n in [2usize, 4, 6, 8] {
        let (p, q) = excluded_middle_pair(n);
        group.bench_with_input(BenchmarkId::new("ucqn_excluded_middle", n), &n, |b, _| {
            b.iter(|| ucqn_contained(&p, &q))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_containment
}
criterion_main!(benches);
