//! Criterion bench for the GAV mediator pipeline (experiment E15):
//! unfolding growth and the full compile-time pipeline.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_mediator::{unfold, GavView, Mediator};

fn views(k: usize) -> (Vec<GavView>, String) {
    let mut text = String::new();
    for j in 0..k {
        text.push_str(&format!("SrcB{j}^oooo. SrcC{j}^oo.\n"));
    }
    text.push_str("Shelf^o.\n");
    for j in 0..k {
        text.push_str(&format!("Book(i, a, t) :- SrcB{j}(i, a, t, p).\n"));
        text.push_str(&format!("Catalog(i, a) :- SrcC{j}(i, a).\n"));
    }
    text.push_str("Lib(i) :- Shelf(i).\n");
    let program = lap_ir::parse_program(&text).expect("parses");
    let mut vs = Vec::new();
    for q in &program.queries {
        for rule in &q.disjuncts {
            vs.push(GavView::from_rule(rule).expect("valid view"));
        }
    }
    (vs, text)
}

fn bench_mediator(c: &mut Criterion) {
    let mut group = c.benchmark_group("mediator");
    let q = lap_ir::parse_query("Q(i, a, t) :- Book(i, a, t), Catalog(i, a), not Lib(i).")
        .expect("parses");
    for k in [1usize, 2, 4, 8] {
        let (vs, text) = views(k);
        group.bench_with_input(BenchmarkId::new("unfold", k), &k, |b, _| {
            b.iter(|| unfold(&q, &vs, 100_000).expect("unfolds"))
        });
        let mediator = Mediator::from_program(&text).expect("mediator parses");
        group.bench_with_input(BenchmarkId::new("full_pipeline", k), &k, |b, _| {
            b.iter(|| mediator.plan(&q).expect("plans"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_mediator
}
criterion_main!(benches);
