//! Criterion bench for algorithm PLAN\* (paper, Figure 2; experiment E3).

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_core::plan_star;
use lap_workload::families::{feasible_not_orderable, gav_unfolding, reversed_chain};

fn bench_plan_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_star");
    for n in [8usize, 32, 128] {
        let rev = reversed_chain(n);
        group.bench_with_input(BenchmarkId::new("reversed_chain", n), &n, |b, _| {
            b.iter(|| plan_star(&rev.query, &rev.schema))
        });
        let fno = feasible_not_orderable(n);
        group.bench_with_input(BenchmarkId::new("example3_family", n), &n, |b, _| {
            b.iter(|| plan_star(&fno.query, &fno.schema))
        });
        let gav = gav_unfolding(n, n, n);
        group.bench_with_input(BenchmarkId::new("gav_unfolding", n), &n, |b, _| {
            b.iter(|| plan_star(&gav.query, &gav.schema))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_plan_star
}
criterion_main!(benches);
