//! Criterion bench for the plan optimizer (experiment E14): ordering
//! search cost and the runtime payoff in source calls.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_core::{feasible_detailed, plan_star};
use lap_engine::{eval_ordered_union, SourceRegistry};
use lap_planner::{best_order, greedy_order, minimal_executable_plan, optimize_plan_pair, CostModel, Strategy};
use lap_workload::{gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig};
use lap_prng::StdRng;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");

    // Ordering-search cost on a single n-literal disjunct.
    for n in [4usize, 6, 8, 10] {
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.6,
                ..SchemaConfig::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 1,
                positive_per_disjunct: n,
                negative_per_disjunct: 0,
                extra_vars: 3,
                head_arity: 2,
                constant_fraction: 0.0,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(n as u64),
        );
        let cq = q.disjuncts[0].clone();
        let model = CostModel::new();
        if greedy_order(&cq, &schema, &model).is_none() {
            continue; // not orderable: nothing to search
        }
        group.bench_with_input(BenchmarkId::new("greedy_order", n), &n, |b, _| {
            b.iter(|| greedy_order(&cq, &schema, &model))
        });
        group.bench_with_input(BenchmarkId::new("best_order", n), &n, |b, _| {
            b.iter(|| best_order(&cq, &schema, &model))
        });
    }

    // End-to-end payoff: evaluation under each strategy.
    let schema = gen_schema(
        &SchemaConfig {
            free_scan_fraction: 0.6,
            ..SchemaConfig::default()
        },
        &mut StdRng::seed_from_u64(7),
    );
    let q = gen_query(
        &schema,
        &QueryConfig {
            num_disjuncts: 2,
            positive_per_disjunct: 4,
            negative_per_disjunct: 0,
            extra_vars: 2,
            head_arity: 2,
            constant_fraction: 0.0,
            constant_pool: 3,
        },
        &mut StdRng::seed_from_u64(11),
    );
    let report = feasible_detailed(&q, &schema);
    let db = gen_instance(
        &schema,
        &InstanceConfig {
            domain_size: 10,
            tuples_per_relation: 40,
        },
        &mut StdRng::seed_from_u64(13),
    );
    let model = CostModel::from_database(&db);
    let pair = plan_star(&q, &schema);
    for (name, strategy) in [
        ("eval_answerable_order", Strategy::AnswerableOrder),
        ("eval_greedy_order", Strategy::Greedy),
        ("eval_best_order", Strategy::Exhaustive),
    ] {
        let optimized = optimize_plan_pair(&pair, &schema, &model, strategy);
        let parts = optimized.over.eval_parts();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut reg = SourceRegistry::new(&db, &schema);
                eval_ordered_union(&parts, &mut reg)
            })
        });
    }
    if report.feasible {
        if let Some(min_plan) = minimal_executable_plan(&q, &schema) {
            let parts: Vec<_> = min_plan
                .disjuncts
                .iter()
                .map(|cq| (cq.clone(), Vec::new()))
                .collect();
            group.bench_function("eval_minimal_plan", |b| {
                b.iter(|| {
                    let mut reg = SourceRegistry::new(&db, &schema);
                    eval_ordered_union(&parts, &mut reg)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_planner
}
criterion_main!(benches);
