//! Criterion bench for the constraints subsystem (experiment E12): the
//! chase, satisfiability-modulo-Σ, and the semantic optimizer.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_bench::runner::example6_family;
use lap_constraints::{
    chase, feasible_under, prune_unsatisfiable, satisfiable_under, DEFAULT_CHASE_ROUNDS,
};

fn bench_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints");
    for k in [1usize, 4, 16] {
        let (q, schema, cs) = example6_family(k);
        let blocked = q.disjuncts[1].clone(); // first Example-6 disjunct
        group.bench_with_input(BenchmarkId::new("chase_one_disjunct", k), &k, |b, _| {
            b.iter(|| chase(&blocked, &cs, DEFAULT_CHASE_ROUNDS))
        });
        group.bench_with_input(BenchmarkId::new("sat_under_sigma", k), &k, |b, _| {
            b.iter(|| satisfiable_under(&blocked, &cs, DEFAULT_CHASE_ROUNDS))
        });
        group.bench_with_input(BenchmarkId::new("prune_union", k), &k, |b, _| {
            b.iter(|| prune_unsatisfiable(&q, &cs))
        });
        group.bench_with_input(BenchmarkId::new("feasible_under", k), &k, |b, _| {
            b.iter(|| feasible_under(&q, &cs, &schema))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_constraints
}
criterion_main!(benches);
