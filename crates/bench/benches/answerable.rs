//! Criterion bench for algorithm ANSWERABLE (paper, Figure 1; experiment
//! E2). The paper claims quadratic time (Proposition 2 / Corollary 3);
//! reversed chains are the worst case (one discovery per pass), forward
//! chains the best case (single pass).

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_core::answerable_split;
use lap_workload::families::{forward_chain, reversed_chain, star};

fn bench_answerable(c: &mut Criterion) {
    let mut group = c.benchmark_group("answerable");
    for n in [8usize, 32, 128, 512] {
        let rev = reversed_chain(n);
        group.bench_with_input(BenchmarkId::new("reversed_chain", n), &n, |b, _| {
            b.iter(|| answerable_split(&rev.query.disjuncts[0], &rev.schema))
        });
        let fwd = forward_chain(n);
        group.bench_with_input(BenchmarkId::new("forward_chain", n), &n, |b, _| {
            b.iter(|| answerable_split(&fwd.query.disjuncts[0], &fwd.schema))
        });
        let st = star(n);
        group.bench_with_input(BenchmarkId::new("star", n), &n, |b, _| {
            b.iter(|| answerable_split(&st.query.disjuncts[0], &st.schema))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_answerable
}
criterion_main!(benches);
