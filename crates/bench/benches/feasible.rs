//! Criterion bench for algorithm FEASIBLE (paper, Figure 3; experiments
//! E4/E7/E11): the quadratic fast paths vs the containment-backed slow
//! path, and the Theorem-18 worst-case family.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_core::{containment_to_feasibility, feasible};
use lap_workload::families::{excluded_middle_pair, feasible_not_orderable, reversed_chain};

fn bench_feasible(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasible");
    // Fast path: plans coincide, no containment check.
    for n in [8usize, 32, 128] {
        let rev = reversed_chain(n);
        group.bench_with_input(BenchmarkId::new("fast_path_chain", n), &n, |b, _| {
            b.iter(|| feasible(&rev.query, &rev.schema))
        });
    }
    // Slow path: the Example-3 family always needs the containment check.
    for k in [1usize, 4, 16] {
        let inst = feasible_not_orderable(k);
        group.bench_with_input(BenchmarkId::new("containment_path_ex3", k), &k, |b, _| {
            b.iter(|| feasible(&inst.query, &inst.schema))
        });
    }
    // Worst case: Theorem-18 instances of the excluded-middle family.
    for n in [2usize, 4, 6] {
        let (p, q) = excluded_middle_pair(n);
        let inst = containment_to_feasibility(&p, &q);
        group.bench_with_input(BenchmarkId::new("thm18_excluded_middle", n), &n, |b, _| {
            b.iter(|| feasible(&inst.query, &inst.schema))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_feasible
}
criterion_main!(benches);
