//! Criterion bench for the batched physical executor: batch-width sweep
//! (1 / 64 / 1024) against the retired tuple-at-a-time reference on
//! dup-key-rich workloads, where wider batches widen the per-batch
//! source-call dedup window.

use lap_bench::microbench::{BenchmarkId, Criterion};
use lap_bench::{criterion_group, criterion_main};
use lap_core::plan_star;
use lap_engine::{
    eval_ordered_union_tuple, execute_physical_union, lower_union, ExecConfig, SourceRegistry,
};
use lap_workload::families::{forward_chain, gav_unfolding};
use lap_workload::{gen_instance, InstanceConfig};
use lap_prng::StdRng;

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    let fams = [
        ("forward_chain", forward_chain(6)),
        ("gav_unfolding", gav_unfolding(3, 2, 1)),
    ];
    for (name, inst) in fams {
        // A small value domain makes outer bindings repeat join keys.
        let cfg = InstanceConfig {
            domain_size: 8,
            tuples_per_relation: 200,
        };
        let db = gen_instance(&inst.schema, &cfg, &mut StdRng::seed_from_u64(3));
        let pair = plan_star(&inst.query, &inst.schema);
        let parts = pair.over.eval_parts();
        let union = lower_union(&parts, &inst.schema);
        group.bench_with_input(BenchmarkId::new("tuple_reference", name), &name, |b, _| {
            b.iter(|| {
                let mut reg = SourceRegistry::new(&db, &inst.schema);
                eval_ordered_union_tuple(&parts, &mut reg).unwrap()
            })
        });
        for width in [1usize, 64, 1024] {
            let label = format!("batched_w{width}");
            group.bench_with_input(
                BenchmarkId::new(&label, name),
                &name,
                |b, _| {
                    b.iter(|| {
                        let mut reg = SourceRegistry::new(&db, &inst.schema);
                        execute_physical_union(
                            &union,
                            &mut reg,
                            ExecConfig::with_batch_size(width),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short sampling so `cargo bench --workspace` finishes in minutes;
    // raise for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(600))
        .sample_size(10);
    targets = bench_executor
}
criterion_main!(benches);
