//! Conjunctive queries with negation (CQ¬) and unions thereof (UCQ¬).

use crate::atom::{Atom, Literal, Predicate};
use crate::error::IrError;
use crate::subst::{FreshVarGen, Substitution};
use crate::term::{Term, Var};
use std::collections::HashSet;
use std::fmt;

/// The signature of a query: head predicate name and arity. Two queries can
/// be unioned or compared for containment only if their signatures match.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QuerySignature(pub Predicate);

/// A conjunctive query with negation (CQ¬), in Datalog rule form:
///
/// ```text
/// Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
/// ```
///
/// The head holds the distinguished (free) terms; all other variables are
/// implicitly existentially quantified. Plain conjunctive queries (CQ) are
/// the special case where every body literal is positive.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// The head atom `Q(z̄)`.
    pub head: Atom,
    /// The body literals, in order (order matters for executability).
    pub body: Vec<Literal>,
}

impl ConjunctiveQuery {
    /// Creates a query from head and body.
    pub fn new(head: Atom, body: Vec<Literal>) -> ConjunctiveQuery {
        ConjunctiveQuery { head, body }
    }

    /// The query's signature.
    pub fn signature(&self) -> QuerySignature {
        QuerySignature(self.head.predicate)
    }

    /// The free (distinguished) variables: those occurring in the head,
    /// first-occurrence order, deduplicated.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        self.head
            .vars()
            .filter(|v| seen.insert(*v))
            .collect()
    }

    /// All variables of the query (head and body), first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for v in self.head.vars() {
            if seen.insert(v) {
                out.push(v);
            }
        }
        for lit in &self.body {
            for v in lit.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The existential variables: body variables that are not free.
    pub fn existential_vars(&self) -> Vec<Var> {
        let free: HashSet<Var> = self.free_vars().into_iter().collect();
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for lit in &self.body {
            for v in lit.vars() {
                if !free.contains(&v) && seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// `Q⁺`: the positive body literals, in order (paper, Section 2).
    pub fn positive_part(&self) -> Vec<&Literal> {
        self.body.iter().filter(|l| l.positive).collect()
    }

    /// `Q⁻`: the negative body literals, in order.
    pub fn negative_part(&self) -> Vec<&Literal> {
        self.body.iter().filter(|l| !l.positive).collect()
    }

    /// True iff the body contains no negated literal (plain CQ).
    pub fn is_positive(&self) -> bool {
        self.body.iter().all(|l| l.positive)
    }

    /// Safety (paper, Section 2): every variable of the query — head *and*
    /// body — appears in a positive body literal.
    pub fn is_safe(&self) -> bool {
        let positive_vars: HashSet<Var> = self
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.vars())
            .collect();
        self.vars().iter().all(|v| positive_vars.contains(v))
    }

    /// All predicates occurring in the body.
    pub fn body_predicates(&self) -> HashSet<Predicate> {
        self.body.iter().map(|l| l.predicate()).collect()
    }

    /// Applies a substitution to head and body.
    pub fn apply(&self, subst: &Substitution) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: subst.apply_atom(&self.head),
            body: self.body.iter().map(|l| subst.apply_literal(l)).collect(),
        }
    }

    /// Renames the *existential* variables apart from every variable in
    /// `avoid` (and from the query's own free variables), using `fresh` for
    /// new names. Returns the renamed query.
    pub fn rename_existentials_apart(
        &self,
        avoid: &HashSet<Var>,
        fresh: &mut FreshVarGen,
    ) -> ConjunctiveQuery {
        let free: HashSet<Var> = self.free_vars().into_iter().collect();
        let mut subst = Substitution::new();
        for v in self.existential_vars() {
            if avoid.contains(&v) {
                let nv = fresh.fresh_avoiding(avoid, &free);
                subst.insert(v, Term::Var(nv));
            }
        }
        if subst.is_empty() {
            self.clone()
        } else {
            self.apply(&subst)
        }
    }

    /// Returns the same query with the body literals permuted according to
    /// `order` (a permutation of `0..body.len()`).
    pub fn with_body_order(&self, order: &[usize]) -> ConjunctiveQuery {
        debug_assert_eq!(order.len(), self.body.len());
        ConjunctiveQuery {
            head: self.head.clone(),
            body: order.iter().map(|&i| self.body[i].clone()).collect(),
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        if self.body.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A union of conjunctive queries with negation (UCQ¬):
/// `Q = Q₁ ∨ … ∨ Q_k`, all disjuncts sharing the same head.
///
/// Invariant (enforced by [`UnionQuery::new`]): every disjunct's head is
/// *literally identical* — same predicate and same term sequence. Disjunct
/// heads that differ only by variable naming are normalized by renaming.
/// The empty union (`k = 0`) is the query **false**.
#[derive(Clone, PartialEq, Eq)]
pub struct UnionQuery {
    /// The shared head signature.
    pub signature: QuerySignature,
    /// The canonical head atom shared by all disjuncts.
    pub head: Atom,
    /// The disjuncts. May be empty (the query `false`).
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Builds a union from disjuncts, normalizing heads.
    ///
    /// All disjuncts must share the head predicate (name and arity). If a
    /// disjunct's head differs from the first disjunct's head, its variables
    /// are renamed so the heads become identical; this requires both heads to
    /// consist of distinct variables in the positions where they differ.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Result<UnionQuery, IrError> {
        let Some(first) = disjuncts.first() else {
            return Err(IrError::EmptyUnion);
        };
        let head = first.head.clone();
        let signature = QuerySignature(head.predicate);
        let canonical_vars: HashSet<Var> = head.vars().collect();
        let mut fresh = FreshVarGen::new();
        let mut normalized = Vec::with_capacity(disjuncts.len());
        for cq in &disjuncts {
            if cq.head.predicate != head.predicate {
                return Err(IrError::HeadMismatch {
                    expected: head.predicate.to_string(),
                    found: cq.head.predicate.to_string(),
                });
            }
            if cq.head == head {
                normalized.push(cq.clone());
                continue;
            }
            normalized.push(Self::rename_to_head(cq, &head, &canonical_vars, &mut fresh)?);
        }
        Ok(UnionQuery {
            signature,
            head,
            disjuncts: normalized,
        })
    }

    /// A union known to be `false`: no disjuncts, with an explicit head so
    /// the signature is still known.
    pub fn empty(head: Atom) -> UnionQuery {
        UnionQuery {
            signature: QuerySignature(head.predicate),
            head,
            disjuncts: Vec::new(),
        }
    }

    /// Wraps a single CQ¬ as a one-disjunct union.
    pub fn single(cq: ConjunctiveQuery) -> UnionQuery {
        UnionQuery {
            signature: cq.signature(),
            head: cq.head.clone(),
            disjuncts: vec![cq],
        }
    }

    fn rename_to_head(
        cq: &ConjunctiveQuery,
        head: &Atom,
        canonical_vars: &HashSet<Var>,
        fresh: &mut FreshVarGen,
    ) -> Result<ConjunctiveQuery, IrError> {
        // Step 1: move every variable of cq out of the way of the canonical
        // head variables to avoid capture.
        let mut cq = cq.clone();
        let own_vars: HashSet<Var> = cq.vars().into_iter().collect();
        let clash: Vec<Var> = own_vars.intersection(canonical_vars).copied().collect();
        if !clash.is_empty() {
            let mut away = Substitution::new();
            let avoid: HashSet<Var> = own_vars.union(canonical_vars).copied().collect();
            for v in clash {
                let nv = fresh.fresh_avoiding(&avoid, &HashSet::new());
                away.insert(v, Term::Var(nv));
            }
            cq = cq.apply(&away);
        }
        // Step 2: map the disjunct's head terms onto the canonical head.
        // Only a *bijective* variable renaming (plus equal constants in
        // matching positions) is allowed — anything else means the disjuncts
        // have genuinely different head shapes, i.e. different free
        // variables, which the paper's safety condition forbids.
        let mut subst = Substitution::new();
        let mut used_targets: HashSet<Term> = HashSet::new();
        for (src, dst) in cq.head.args.iter().zip(head.args.iter()) {
            match (src, dst) {
                (Term::Var(v), Term::Var(_)) => {
                    if let Some(prev) = subst.get(*v) {
                        if prev != *dst {
                            return Err(IrError::HeadNotRenamable(cq.head.to_string()));
                        }
                    } else {
                        if !used_targets.insert(*dst) {
                            // Two distinct source vars would merge into one
                            // target var: not a renaming.
                            return Err(IrError::HeadNotRenamable(cq.head.to_string()));
                        }
                        subst.insert(*v, *dst);
                    }
                }
                (Term::Const(c1), Term::Const(c2)) if c1 == c2 => {}
                _ => return Err(IrError::HeadNotRenamable(cq.head.to_string())),
            }
        }
        let out = cq.apply(&subst);
        debug_assert_eq!(out.head, *head);
        Ok(out)
    }

    /// True iff the union has no disjuncts (the query `false`).
    pub fn is_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// The shared free variables (those of the canonical head).
    pub fn free_vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        self.head.vars().filter(|v| seen.insert(*v)).collect()
    }

    /// Safety (paper, Section 2): every disjunct safe. The "same free
    /// variables" condition is structural here, since heads are identical.
    pub fn is_safe(&self) -> bool {
        self.disjuncts.iter().all(|q| q.is_safe())
    }

    /// True iff every disjunct is a plain CQ (no negation anywhere).
    pub fn is_positive(&self) -> bool {
        self.disjuncts.iter().all(|q| q.is_positive())
    }

    /// All predicates occurring in any disjunct body.
    pub fn body_predicates(&self) -> HashSet<Predicate> {
        self.disjuncts
            .iter()
            .flat_map(|q| q.body_predicates())
            .collect()
    }

    /// Returns a copy with one disjunct replaced.
    pub fn with_disjunct(&self, idx: usize, cq: ConjunctiveQuery) -> UnionQuery {
        let mut out = self.clone();
        out.disjuncts[idx] = cq;
        out
    }

    /// Returns a copy without the disjunct at `idx`.
    pub fn without_disjunct(&self, idx: usize) -> UnionQuery {
        let mut out = self.clone();
        out.disjuncts.remove(idx);
        out
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "{} :- false.", self.head);
        }
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<ConjunctiveQuery> for UnionQuery {
    fn from(cq: ConjunctiveQuery) -> UnionQuery {
        UnionQuery::single(cq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cq, parse_query};

    #[test]
    fn free_and_existential_vars() {
        let q = parse_cq("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).").unwrap();
        let free: Vec<String> = q.free_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(free, vec!["i", "a", "t"]);
        assert!(q.existential_vars().is_empty());
        let q2 = parse_cq("Q(a) :- B(i, a, t), L(i).").unwrap();
        let ex: Vec<String> = q2.existential_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(ex, vec!["i", "t"]);
    }

    #[test]
    fn positive_negative_parts_preserve_order() {
        let q = parse_cq("Q(x) :- not A(x), B(x), not C(x), D(x).").unwrap();
        let pos: Vec<String> = q.positive_part().iter().map(|l| l.to_string()).collect();
        let neg: Vec<String> = q.negative_part().iter().map(|l| l.to_string()).collect();
        assert_eq!(pos, vec!["B(x)", "D(x)"]);
        assert_eq!(neg, vec!["not A(x)", "not C(x)"]);
    }

    #[test]
    fn safety() {
        assert!(parse_cq("Q(x) :- R(x, y), not S(y).").unwrap().is_safe());
        // Head var not in positive literal.
        assert!(!parse_cq("Q(x) :- R(y, y), not S(x).").unwrap().is_safe());
        // Negated var not in positive literal.
        assert!(!parse_cq("Q(x) :- R(x, x), not S(z).").unwrap().is_safe());
    }

    #[test]
    fn union_head_normalization_renames() {
        let q = parse_query(
            "Q(x) :- F(x), G(x).\n\
             Q(y) :- F(y), H(y, z).",
        )
        .unwrap();
        assert_eq!(q.disjuncts.len(), 2);
        assert_eq!(q.disjuncts[0].head, q.disjuncts[1].head);
        assert_eq!(q.disjuncts[1].to_string(), "Q(x) :- F(x), H(x, z).");
    }

    #[test]
    fn union_head_normalization_avoids_capture() {
        // Second rule uses `x` as an *existential* var and `y` in the head;
        // naive renaming y→x would capture. The normalizer must avoid this.
        let q = parse_query(
            "Q(x) :- F(x).\n\
             Q(y) :- G(y, x), F(x).",
        )
        .unwrap();
        let d1 = &q.disjuncts[1];
        assert_eq!(d1.head.to_string(), "Q(x)");
        // Body must join G's second arg with F's arg via some var ≠ x.
        let g = &d1.body[0].atom;
        let f = &d1.body[1].atom;
        assert_eq!(g.args[0], Term::var("x"));
        assert_ne!(g.args[1], Term::var("x"));
        assert_eq!(g.args[1], f.args[0]);
    }

    #[test]
    fn union_rejects_mismatched_heads() {
        assert!(parse_query("Q(x) :- F(x).\nP(x) :- F(x).").is_err());
        assert!(parse_query("Q(x) :- F(x).\nQ(x, y) :- G(x, y).").is_err());
    }

    #[test]
    fn repeated_head_var_normalization() {
        // Q(y, y) can be renamed onto Q(x, x)-shaped heads only when
        // consistent.
        let q = parse_query(
            "Q(x, x) :- F(x).\n\
             Q(y, y) :- G(y).",
        )
        .unwrap();
        assert_eq!(q.disjuncts[1].to_string(), "Q(x, x) :- G(x).");
        // Inconsistent: Q(u, v) cannot map onto Q(x, x) — wait, it can:
        // u→x, v→x is a fine renaming (it *merges*)? No: merging changes the
        // query's meaning. Our normalizer allows var→term maps only when
        // consistent per-variable, and u→x, v→x is consistent. The result
        // Q(x,x) :- H(x,x) is the correct normalization of Q(u,v) :- H(u,v)
        // *only if* the original head was Q(u,v) with u≠v... in that case the
        // two rules have genuinely different head shapes and the union is
        // ill-formed. We reject it.
        assert!(parse_query("Q(x, x) :- F(x).\nQ(u, v) :- H(u, v).").is_err());
    }

    #[test]
    fn display_round_trip() {
        let text = "Q(x, y) :- R(x, z), not S(z), T(z, y).";
        let q = parse_cq(text).unwrap();
        assert_eq!(q.to_string(), text);
    }

    #[test]
    fn empty_union_is_false() {
        let head = Atom::from_parts("Q", vec![Term::var("x")]);
        let q = UnionQuery::empty(head);
        assert!(q.is_false());
        assert_eq!(q.to_string(), "Q(x) :- false.");
    }
}
