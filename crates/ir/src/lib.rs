//! Query intermediate representation for queries under limited access patterns.
//!
//! This crate provides the shared vocabulary of the `lap` workspace, the
//! reproduction of *Nash & Ludäscher, "Processing Unions of Conjunctive
//! Queries with Negation under Limited Access Patterns" (EDBT 2004)*:
//!
//! * [`Symbol`] — interned identifiers for predicate, variable, and constant
//!   names, so the planning algorithms compare integers rather than strings.
//! * [`Term`], [`Var`], [`Constant`] — terms of the query language.
//! * [`Predicate`], [`Atom`], [`Literal`] — positive or negated relational
//!   atoms (the paper's `R(x̄)` / `¬R(x̄)`).
//! * [`ConjunctiveQuery`] (CQ¬) and [`UnionQuery`] (UCQ¬) in Datalog rule
//!   form, with safety checking, `Q⁺`/`Q⁻` decomposition, and the
//!   satisfiability test of Proposition 8.
//! * [`AccessPattern`] and [`Schema`] — the paper's `R^α` access-pattern
//!   declarations (Definition 1) and per-relation pattern sets.
//! * A Datalog-style parser ([`parse_program`]) and pretty printers, so queries can be
//!   written exactly as they appear in the paper:
//!
//! ```
//! use lap_ir::parse_program;
//!
//! let program = parse_program(
//!     r#"
//!     B^ioo. B^oio. C^oo. L^o.
//!     Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
//!     "#,
//! )
//! .unwrap();
//! let q = program.single_query().unwrap();
//! assert_eq!(q.disjuncts.len(), 1);
//! assert!(q.is_safe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod builder;
mod display;
mod error;
mod parser;
mod pattern;
mod query;
mod satisfiable;
mod subst;
mod symbol;
mod term;

pub use atom::{Atom, Literal, Predicate};
pub use builder::{CqBuilder, UnionBuilder};
pub use display::display_adorned;
pub use error::IrError;
pub use parser::{parse_cq, parse_literal, parse_program, parse_query, Program};
pub use pattern::{AccessPattern, RelationDecl, Schema};
pub use query::{ConjunctiveQuery, QuerySignature, UnionQuery};
pub use satisfiable::is_satisfiable;
pub use subst::{FreshVarGen, Substitution};
pub use symbol::Symbol;
pub use term::{Constant, Term, Var};
