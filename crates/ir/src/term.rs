//! Terms: variables and constants.

use crate::symbol::Symbol;
use std::fmt;

/// A variable, e.g. the `i`, `a`, `t` of the paper's bookstore query.
///
/// Following the paper's convention, variables are written in lowercase in
/// the concrete syntax; the parser enforces this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Symbol);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: &str) -> Var {
        Var(Symbol::intern(name))
    }

    /// The variable's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A constant: an integer or an interned string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// Integer constant, written bare in the concrete syntax: `42`.
    Int(i64),
    /// String constant, written quoted in the concrete syntax: `"isbn-0"`.
    Str(Symbol),
}

impl Constant {
    /// String constant from a `&str`.
    pub fn str(s: &str) -> Constant {
        Constant::Str(Symbol::intern(s))
    }

    /// Integer constant.
    pub fn int(i: i64) -> Constant {
        Constant::Int(i)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{:?}", s.as_str()),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A term is a variable or a constant (paper, Section 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Constant),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Convenience constructor for a string-constant term.
    pub fn str(s: &str) -> Term {
        Term::Const(Constant::str(s))
    }

    /// Convenience constructor for an integer-constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Constant::int(i))
    }

    /// Returns the variable if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is one.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True iff this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Term {
        Term::Const(c)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v:?}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_equality_is_by_name() {
        assert_eq!(Var::new("x"), Var::new("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("x");
        let c = Term::int(3);
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var(), Some(Var::new("x")));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(Constant::Int(3)));
    }

    #[test]
    fn constants_of_different_kinds_differ() {
        assert_ne!(Constant::int(1), Constant::str("1"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::int(-7).to_string(), "-7");
        assert_eq!(Term::str("a").to_string(), "\"a\"");
    }
}
