//! Display helpers shared by the workspace (adorned literals, rule lists).

use crate::atom::Literal;
use crate::pattern::AccessPattern;
use std::fmt;

/// Renders a literal with an adornment superscript, e.g. `B^oio(i, a, t)` or
/// `not L^o(i)` — the notation of Definition 2.
pub(crate) struct AdornedLiteral<'a>(pub &'a Literal, pub Option<AccessPattern>);

impl fmt::Display for AdornedLiteral<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let AdornedLiteral(lit, pattern) = self;
        if !lit.positive {
            write!(f, "not ")?;
        }
        write!(f, "{}", lit.atom.predicate.name)?;
        if let Some(p) = pattern {
            write!(f, "^{p}")?;
        }
        write!(f, "(")?;
        for (i, t) in lit.atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Public entry point: formats `lit` with an optional adornment.
pub fn display_adorned(lit: &Literal, pattern: Option<AccessPattern>) -> String {
    AdornedLiteral(lit, pattern).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_literal;

    #[test]
    fn adorned_positive() {
        let l = parse_literal("B(i, a, t)").unwrap();
        let p = AccessPattern::parse("oio").unwrap();
        assert_eq!(display_adorned(&l, Some(p)), "B^oio(i, a, t)");
    }

    #[test]
    fn adorned_negative_without_pattern() {
        let l = parse_literal("not L(i)").unwrap();
        assert_eq!(display_adorned(&l, None), "not L(i)");
    }
}
