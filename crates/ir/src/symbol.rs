//! Global string interner.
//!
//! All identifiers in the IR (predicate names, variable names, string
//! constants) are interned into a process-wide table and represented by a
//! 4-byte [`Symbol`]. Queries are manipulated heavily by the planning and
//! containment algorithms (substitution, renaming apart, homomorphism
//! search), and interning turns the hot comparisons into integer equality.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. Interned
/// strings live for the remainder of the process (the interner leaks them to
/// hand out `&'static str`), which is the standard trade-off for compiler- or
/// query-engine-style workloads with a bounded identifier vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock().expect("interner mutex not poisoned");
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(int.strings.len()).expect("interner overflow");
        int.strings.push(leaked);
        int.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner mutex not poisoned").strings[self.0 as usize]
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("alpha1"), Symbol::intern("alpha2"));
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::intern("Book");
        assert_eq!(s.to_string(), "Book");
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::intern("ord_a");
        let b = Symbol::intern("ord_b");
        // Order is by interning index, not lexicographic — but must be a
        // total order consistent with equality.
        #[allow(clippy::eq_op, clippy::nonminimal_bool)]
        {
            assert!(a == a && !(a < a));
        }
        assert!(a != b);
        assert!((a < b) ^ (b < a));
    }
}
