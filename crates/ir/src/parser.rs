//! Datalog-style parser for queries and access-pattern declarations.
//!
//! The concrete syntax follows the paper as closely as plain text allows:
//!
//! ```text
//! % access patterns (Definition 1)
//! B^ioo.  B^oio.  C^oo.  L^o.
//!
//! % a UCQ¬ query: one rule per disjunct, same head predicate
//! Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
//! ```
//!
//! * identifiers in argument positions are **variables** (the paper writes
//!   variables in lowercase; we accept any identifier),
//! * constants are integers (`42`) or double-quoted strings (`"isbn"`),
//! * negation is written `not`, `!`, or `¬`,
//! * a body may be `true` (empty body) or `false` (the rule is dropped; if
//!   every rule of a query is `false`, the query is the empty union),
//! * `%` and `#` start line comments.

use crate::atom::{Atom, Literal, Predicate};
use crate::error::IrError;
use crate::pattern::Schema;
use crate::query::{ConjunctiveQuery, UnionQuery};
use crate::symbol::Symbol;
use crate::term::{Constant, Term, Var};
use std::collections::HashMap;

/// A parsed program: a schema of access patterns plus named queries.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Declared access patterns.
    pub schema: Schema,
    /// Queries in order of first appearance of their head predicate.
    pub queries: Vec<UnionQuery>,
}

impl Program {
    /// Returns the unique query of the program, or an error if the program
    /// defines zero or several queries.
    pub fn single_query(&self) -> Result<&UnionQuery, IrError> {
        match self.queries.as_slice() {
            [q] => Ok(q),
            other => Err(IrError::NotSingleQuery(other.len())),
        }
    }

    /// Looks up a query by head predicate name.
    pub fn query(&self, name: &str) -> Option<&UnionQuery> {
        let sym = Symbol::intern(name);
        self.queries.iter().find(|q| q.signature.0.name == sym)
    }
}

impl std::fmt::Display for Program {
    /// Prints the schema declarations followed by every query's rules —
    /// re-parseable by [`parse_program`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.schema)?;
        for q in &self.queries {
            writeln!(f, "{q}")?;
        }
        Ok(())
    }
}

/// Parses a full program (pattern declarations + rules).
pub fn parse_program(text: &str) -> Result<Program, IrError> {
    Parser::new(text).program()
}

/// Parses a program and returns its unique query (ignoring the schema).
pub fn parse_query(text: &str) -> Result<UnionQuery, IrError> {
    let program = parse_program(text)?;
    program.single_query().cloned()
}

/// Parses a single rule as a CQ¬ query.
pub fn parse_cq(text: &str) -> Result<ConjunctiveQuery, IrError> {
    let q = parse_query(text)?;
    match q.disjuncts.as_slice() {
        [cq] => Ok(cq.clone()),
        _ => Err(IrError::NotSingleQuery(q.disjuncts.len())),
    }
}

/// Parses a single literal, e.g. `not L(i)` — convenient in tests.
pub fn parse_literal(text: &str) -> Result<Literal, IrError> {
    let mut p = Parser::new(text);
    let lit = p.literal()?;
    p.expect_eof()?;
    Ok(lit)
}

// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Caret,
    Arrow, // :- or <-
    Not,   // not / ! / ¬
    Eof,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
    tok: Tok,
    tok_line: usize,
    tok_col: usize,
    /// Arity bookkeeping across the whole program.
    arities: HashMap<Symbol, usize>,
    /// Lexer error hit while priming the first token, surfaced on first use.
    deferred_error: Option<IrError>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let mut p = Parser {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
            tok: Tok::Eof,
            tok_line: 1,
            tok_col: 1,
            arities: HashMap::new(),
            deferred_error: None,
        };
        // Prime the first token; a lexer error is deferred to the first use.
        if let Err(e) = p.advance() {
            p.tok = Tok::Eof;
            p.deferred_error = Some(e);
        }
        p
    }

    fn err(&self, message: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.tok_line,
            col: self.tok_col,
            message: message.into(),
        }
    }

    fn bump_char(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn advance(&mut self) -> Result<(), IrError> {
        loop {
            // Skip whitespace and comments.
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump_char();
                    continue;
                }
                Some('%') | Some('#') => {
                    while let Some(&c) = self.chars.peek() {
                        self.bump_char();
                        if c == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                _ => break,
            }
        }
        self.tok_line = self.line;
        self.tok_col = self.col;
        let Some(&c) = self.chars.peek() else {
            self.tok = Tok::Eof;
            return Ok(());
        };
        self.tok = match c {
            '(' => {
                self.bump_char();
                Tok::LParen
            }
            ')' => {
                self.bump_char();
                Tok::RParen
            }
            ',' => {
                self.bump_char();
                Tok::Comma
            }
            '.' => {
                self.bump_char();
                Tok::Dot
            }
            '^' => {
                self.bump_char();
                Tok::Caret
            }
            '!' | '¬' => {
                self.bump_char();
                Tok::Not
            }
            ':' => {
                self.bump_char();
                if self.chars.peek() == Some(&'-') {
                    self.bump_char();
                    Tok::Arrow
                } else {
                    return Err(self.err("expected `:-`"));
                }
            }
            '<' => {
                self.bump_char();
                if self.chars.peek() == Some(&'-') {
                    self.bump_char();
                    Tok::Arrow
                } else {
                    return Err(self.err("expected `<-`"));
                }
            }
            '"' => {
                self.bump_char();
                let mut s = String::new();
                loop {
                    match self.bump_char() {
                        Some('"') => break,
                        Some('\\') => match self.bump_char() {
                            Some(e @ ('"' | '\\')) => s.push(e),
                            Some('n') => s.push('\n'),
                            _ => return Err(self.err("bad escape in string")),
                        },
                        Some(ch) => s.push(ch),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                if c == '-' {
                    s.push('-');
                    self.bump_char();
                    if !matches!(self.chars.peek(), Some(d) if d.is_ascii_digit()) {
                        return Err(self.err("expected digits after `-`"));
                    }
                }
                while let Some(&d) = self.chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        self.bump_char();
                    } else {
                        break;
                    }
                }
                let n: i64 = s
                    .parse()
                    .map_err(|_| self.err(format!("integer out of range: {s}")))?;
                Tok::Int(n)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = self.chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        self.bump_char();
                    } else {
                        break;
                    }
                }
                if s == "not" {
                    Tok::Not
                } else {
                    Tok::Ident(s)
                }
            }
            other => return Err(self.err(format!("unexpected character {other:?}"))),
        };
        Ok(())
    }

    fn eat(&mut self, tok: &Tok) -> Result<(), IrError> {
        if &self.tok == tok {
            self.advance()
        } else {
            Err(self.err(format!("expected {tok:?}, found {:?}", self.tok)))
        }
    }

    fn expect_eof(&mut self) -> Result<(), IrError> {
        if self.tok == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.tok)))
        }
    }

    fn check_arity(&mut self, name: &str, arity: usize) -> Result<Predicate, IrError> {
        let sym = Symbol::intern(name);
        match self.arities.get(&sym) {
            Some(&expected) if expected != arity => Err(IrError::AtomArity {
                relation: name.to_owned(),
                expected,
                found: arity,
            }),
            Some(_) => Ok(Predicate { name: sym, arity }),
            None => {
                self.arities.insert(sym, arity);
                Ok(Predicate { name: sym, arity })
            }
        }
    }

    fn term(&mut self) -> Result<Term, IrError> {
        let t = match &self.tok {
            Tok::Ident(s) => Term::Var(Var::new(s)),
            Tok::Int(n) => Term::Const(Constant::Int(*n)),
            Tok::Str(s) => Term::Const(Constant::str(s)),
            other => return Err(self.err(format!("expected a term, found {other:?}"))),
        };
        self.advance()?;
        Ok(t)
    }

    fn atom(&mut self) -> Result<Atom, IrError> {
        let Tok::Ident(name) = self.tok.clone() else {
            return Err(self.err(format!("expected a relation name, found {:?}", self.tok)));
        };
        self.advance()?;
        self.eat(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                args.push(self.term()?);
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        if args.is_empty() {
            return Err(self.err(format!("relation {name} needs at least one argument")));
        }
        let predicate = self.check_arity(&name, args.len())?;
        Ok(Atom { predicate, args })
    }

    fn literal(&mut self) -> Result<Literal, IrError> {
        if self.tok == Tok::Not {
            self.advance()?;
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    /// Body of a rule: `true`, `false`, or a literal list.
    /// Returns `None` for `false` (the rule is dropped).
    fn body(&mut self) -> Result<Option<Vec<Literal>>, IrError> {
        if let Tok::Ident(s) = &self.tok {
            if s == "true" {
                self.advance()?;
                return Ok(Some(Vec::new()));
            }
            if s == "false" {
                self.advance()?;
                return Ok(None);
            }
        }
        let mut lits = vec![self.literal()?];
        while self.tok == Tok::Comma {
            self.advance()?;
            lits.push(self.literal()?);
        }
        Ok(Some(lits))
    }

    fn program(&mut self) -> Result<Program, IrError> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        let mut schema = Schema::new();
        // head predicate -> (index in order, rules, any-false-rule head atom)
        let mut order: Vec<Symbol> = Vec::new();
        let mut rules: HashMap<Symbol, Vec<ConjunctiveQuery>> = HashMap::new();
        let mut heads: HashMap<Symbol, Atom> = HashMap::new();

        while self.tok != Tok::Eof {
            let Tok::Ident(name) = self.tok.clone() else {
                return Err(self.err(format!(
                    "expected a declaration or rule, found {:?}",
                    self.tok
                )));
            };
            self.advance()?;
            match self.tok {
                Tok::Caret => {
                    // Pattern declaration: Name ^ word . (word lexes as an
                    // identifier consisting of i/o letters)
                    self.advance()?;
                    let Tok::Ident(word) = self.tok.clone() else {
                        return Err(self.err("expected an access-pattern word after `^`"));
                    };
                    self.advance()?;
                    schema.add_pattern_str(&name, &word)?;
                    let decl_arity = word.len();
                    // Record/check arity against atom uses.
                    let sym = Symbol::intern(&name);
                    if let Some(&a) = self.arities.get(&sym) {
                        if a != decl_arity {
                            return Err(IrError::ArityConflict {
                                relation: name,
                                old: a,
                                new: decl_arity,
                            });
                        }
                    } else {
                        self.arities.insert(sym, decl_arity);
                    }
                    if self.tok == Tok::Dot {
                        self.advance()?;
                    }
                }
                Tok::LParen => {
                    // A rule: parse the head atom (name already consumed).
                    self.advance()?;
                    let mut args = Vec::new();
                    if self.tok != Tok::RParen {
                        loop {
                            args.push(self.term()?);
                            if self.tok == Tok::Comma {
                                self.advance()?;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    if args.is_empty() {
                        return Err(self.err(format!("head {name} needs at least one argument")));
                    }
                    let predicate = self.check_arity(&name, args.len())?;
                    let head = Atom { predicate, args };
                    let body = if self.tok == Tok::Arrow {
                        self.advance()?;
                        self.body()?
                    } else {
                        // `Q(x).` — a bodyless (true) rule.
                        Some(Vec::new())
                    };
                    self.eat(&Tok::Dot)?;
                    let sym = predicate.name;
                    if let std::collections::hash_map::Entry::Vacant(e) = rules.entry(sym) {
                        order.push(sym);
                        e.insert(Vec::new());
                        heads.insert(sym, head.clone());
                    }
                    if let Some(body) = body {
                        rules
                            .get_mut(&sym)
                            .expect("inserted above")
                            .push(ConjunctiveQuery::new(head, body));
                    }
                }
                _ => {
                    return Err(self.err(format!(
                        "expected `^` (pattern) or `(` (rule) after {name}, found {:?}",
                        self.tok
                    )))
                }
            }
        }

        let mut queries = Vec::with_capacity(order.len());
        for sym in order {
            let cqs = rules.remove(&sym).expect("tracked");
            if cqs.is_empty() {
                queries.push(UnionQuery::empty(heads.remove(&sym).expect("tracked")));
            } else {
                queries.push(UnionQuery::new(cqs)?);
            }
        }
        Ok(Program { schema, queries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_1() {
        let p = parse_program(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        )
        .unwrap();
        let q = p.single_query().unwrap();
        assert_eq!(q.disjuncts.len(), 1);
        assert_eq!(
            q.disjuncts[0].to_string(),
            "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i)."
        );
        assert_eq!(p.schema.patterns(Symbol::intern("B")).len(), 2);
    }

    #[test]
    fn multiple_rules_form_a_union() {
        let q = parse_query(
            "Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        )
        .unwrap();
        assert_eq!(q.disjuncts.len(), 2);
    }

    #[test]
    fn false_body_drops_rule() {
        let q = parse_query(
            "Q(x, y) :- false.\n\
             Q(x, y) :- T(x, y).",
        )
        .unwrap();
        assert_eq!(q.disjuncts.len(), 1);
        let empty = parse_query("Q(x) :- false.").unwrap();
        assert!(empty.is_false());
    }

    #[test]
    fn true_body_is_empty_body() {
        let q = parse_query("Q(x) :- true.").unwrap();
        assert_eq!(q.disjuncts[0].body.len(), 0);
    }

    #[test]
    fn negation_spellings() {
        for text in ["Q(x) :- R(x), not S(x).", "Q(x) :- R(x), ! S(x).", "Q(x) :- R(x), ¬S(x)."] {
            let q = parse_cq(text).unwrap();
            assert!(!q.body[1].positive, "in {text}");
        }
    }

    #[test]
    fn constants_parse() {
        let q = parse_cq(r#"Q(x) :- R(x, 42, "alice", -7)."#).unwrap();
        assert_eq!(q.body[0].atom.args[1], Term::int(42));
        assert_eq!(q.body[0].atom.args[2], Term::str("alice"));
        assert_eq!(q.body[0].atom.args[3], Term::int(-7));
    }

    #[test]
    fn arity_is_enforced_across_atoms() {
        let e = parse_program("Q(x) :- R(x, y), R(x).").unwrap_err();
        assert!(matches!(e, IrError::AtomArity { .. }), "{e}");
    }

    #[test]
    fn arity_is_enforced_between_pattern_and_atom() {
        let e = parse_program("R^oo.\nQ(x) :- R(x, y, z).").unwrap_err();
        assert!(matches!(e, IrError::ArityConflict { .. } | IrError::AtomArity { .. }), "{e}");
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "% patterns\nB^oo. # trailing\nQ(x) :- B(x, y). % done",
        )
        .unwrap();
        assert_eq!(p.queries.len(), 1);
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_program("Q(x) :- R(x)\nQ(y) :- S(y).").unwrap_err();
        match e {
            IrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn multiple_queries_in_one_program() {
        let p = parse_program(
            "Q(x) :- R(x).\n\
             P(y) :- S(y).\n\
             Q(x) :- T(x).",
        )
        .unwrap();
        assert_eq!(p.queries.len(), 2);
        assert_eq!(p.query("Q").unwrap().disjuncts.len(), 2);
        assert_eq!(p.query("P").unwrap().disjuncts.len(), 1);
        assert!(p.single_query().is_err());
    }

    #[test]
    fn arrow_spellings() {
        assert!(parse_cq("Q(x) <- R(x).").is_ok());
        assert!(parse_cq("Q(x) :- R(x).").is_ok());
    }

    #[test]
    fn program_display_round_trips() {
        let text = "B^ioo. B^oio. C^oo. L^o.\n\
                    Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).\n\
                    P(x) :- C(x, y).";
        let p1 = parse_program(text).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1.schema, p2.schema);
        assert_eq!(p1.queries.len(), p2.queries.len());
        for (a, b) in p1.queries.iter().zip(p2.queries.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn literal_parser() {
        let l = parse_literal("not L(i)").unwrap();
        assert!(!l.positive);
        assert_eq!(l.atom.predicate.name.as_str(), "L");
    }
}
