//! Predicates, atoms, and literals.

use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// A relation symbol with its arity, e.g. `B/3` for `B(isbn, author, title)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    /// The relation name.
    pub name: Symbol,
    /// Number of attributes.
    pub arity: usize,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(name: &str, arity: usize) -> Predicate {
        Predicate {
            name: Symbol::intern(name),
            arity,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A relational atom `R(x̄)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation.
    pub predicate: Predicate,
    /// Argument terms; `args.len() == predicate.arity`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom; panics if the argument count differs from the
    /// predicate arity (a programming error, not a data error).
    pub fn new(predicate: Predicate, args: Vec<Term>) -> Atom {
        assert_eq!(
            predicate.arity,
            args.len(),
            "arity mismatch constructing {}({} args)",
            predicate.name,
            args.len()
        );
        Atom { predicate, args }
    }

    /// Parses-free convenience: `Atom::from_parts("R", vec![t1, t2])`.
    pub fn from_parts(name: &str, args: Vec<Term>) -> Atom {
        let predicate = Predicate::new(name, args.len());
        Atom { predicate, args }
    }

    /// Iterates over the variables occurring in the atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// True iff the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate.name)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A literal `R̂(x̄)`: an atom or its negation (paper, Section 2).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// `true` for `R(x̄)`, `false` for `¬R(x̄)`.
    pub positive: bool,
    /// The underlying atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            positive: true,
            atom,
        }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            positive: false,
            atom,
        }
    }

    /// The literal's predicate.
    pub fn predicate(&self) -> Predicate {
        self.atom.predicate
    }

    /// Iterates over the variables of the literal.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.atom.vars()
    }

    /// The complementary literal (`R(x̄)` ↔ `¬R(x̄)`).
    pub fn complement(&self) -> Literal {
        Literal {
            positive: !self.positive,
            atom: self.atom.clone(),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "not ")?;
        }
        write!(f, "{}", self.atom)
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r_xy() -> Atom {
        Atom::from_parts("R", vec![Term::var("x"), Term::var("y")])
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        Atom::new(Predicate::new("R", 3), vec![Term::var("x")]);
    }

    #[test]
    fn atom_vars_skip_constants() {
        let a = Atom::from_parts("R", vec![Term::var("x"), Term::int(1)]);
        let vars: Vec<_> = a.vars().collect();
        assert_eq!(vars, vec![Var::new("x")]);
        assert!(!a.is_ground());
        let g = Atom::from_parts("R", vec![Term::int(1), Term::str("a")]);
        assert!(g.is_ground());
    }

    #[test]
    fn literal_complement_flips_sign() {
        let l = Literal::pos(r_xy());
        let c = l.complement();
        assert!(!c.positive);
        assert_eq!(c.atom, l.atom);
        assert_eq!(c.complement(), l);
    }

    #[test]
    fn display_negation() {
        assert_eq!(Literal::neg(r_xy()).to_string(), "not R(x, y)");
        assert_eq!(Literal::pos(r_xy()).to_string(), "R(x, y)");
    }

    #[test]
    fn predicate_identity_includes_arity() {
        assert_ne!(Predicate::new("R", 2), Predicate::new("R", 3));
        assert_eq!(Predicate::new("R", 2), Predicate::new("R", 2));
    }
}
