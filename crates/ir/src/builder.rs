//! Fluent builders for constructing queries programmatically.
//!
//! The parser is the most readable way to write a fixed query; the builders
//! are for *generated* queries (workload generators, reductions) where
//! string formatting would be wasteful and error-prone.

use crate::atom::{Atom, Literal};
use crate::error::IrError;
use crate::query::{ConjunctiveQuery, UnionQuery};
use crate::term::Term;

/// Builds a [`ConjunctiveQuery`] literal by literal.
///
/// ```
/// use lap_ir::{CqBuilder, Term};
///
/// let q = CqBuilder::new("Q", vec![Term::var("x")])
///     .pos("R", vec![Term::var("x"), Term::var("y")])
///     .neg("S", vec![Term::var("y")])
///     .build();
/// assert_eq!(q.to_string(), "Q(x) :- R(x, y), not S(y).");
/// ```
#[derive(Clone, Debug)]
pub struct CqBuilder {
    head: Atom,
    body: Vec<Literal>,
}

impl CqBuilder {
    /// Starts a query with head `name(args…)`.
    pub fn new(name: &str, args: Vec<Term>) -> CqBuilder {
        CqBuilder {
            head: Atom::from_parts(name, args),
            body: Vec::new(),
        }
    }

    /// Appends a positive literal.
    pub fn pos(mut self, name: &str, args: Vec<Term>) -> CqBuilder {
        self.body.push(Literal::pos(Atom::from_parts(name, args)));
        self
    }

    /// Appends a negated literal.
    pub fn neg(mut self, name: &str, args: Vec<Term>) -> CqBuilder {
        self.body.push(Literal::neg(Atom::from_parts(name, args)));
        self
    }

    /// Appends an already-built literal.
    pub fn literal(mut self, lit: Literal) -> CqBuilder {
        self.body.push(lit);
        self
    }

    /// Finishes the query.
    pub fn build(self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(self.head, self.body)
    }
}

/// Builds a [`UnionQuery`] disjunct by disjunct.
#[derive(Clone, Debug, Default)]
pub struct UnionBuilder {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionBuilder {
    /// An empty builder.
    pub fn new() -> UnionBuilder {
        UnionBuilder::default()
    }

    /// Appends a disjunct.
    pub fn disjunct(mut self, cq: ConjunctiveQuery) -> UnionBuilder {
        self.disjuncts.push(cq);
        self
    }

    /// Finishes the union (normalizing heads; see [`UnionQuery::new`]).
    pub fn build(self) -> Result<UnionQuery, IrError> {
        UnionQuery::new(self.disjuncts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn builder_matches_parser() {
        let built = CqBuilder::new("Q", vec![Term::var("i"), Term::var("a"), Term::var("t")])
            .pos("B", vec![Term::var("i"), Term::var("a"), Term::var("t")])
            .pos("C", vec![Term::var("i"), Term::var("a")])
            .neg("L", vec![Term::var("i")])
            .build();
        let parsed =
            crate::parser::parse_cq("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn union_builder() {
        let q = UnionBuilder::new()
            .disjunct(
                CqBuilder::new("Q", vec![Term::var("x")])
                    .pos("F", vec![Term::var("x")])
                    .build(),
            )
            .disjunct(
                CqBuilder::new("Q", vec![Term::var("x")])
                    .pos("G", vec![Term::var("x")])
                    .build(),
            )
            .build()
            .unwrap();
        assert_eq!(q.disjuncts.len(), 2);
    }
}
