//! Error type for IR construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing queries and schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An access-pattern word contained a character other than `i`/`o`, was
    /// empty, or exceeded the maximum arity.
    BadPattern(String),
    /// A relation was declared twice with different arities.
    ArityConflict {
        /// Relation name.
        relation: String,
        /// Previously declared arity.
        old: usize,
        /// Conflicting arity.
        new: usize,
    },
    /// Union construction was given no disjuncts. Use `UnionQuery::empty`
    /// for the query `false`.
    EmptyUnion,
    /// Two rules of a union have different head predicates.
    HeadMismatch {
        /// First head seen.
        expected: String,
        /// Conflicting head.
        found: String,
    },
    /// A rule head could not be renamed onto the union's canonical head
    /// (the heads differ by more than a bijective variable renaming).
    HeadNotRenamable(String),
    /// Syntax error while parsing, with 1-based line and column.
    Parse {
        /// Line number.
        line: usize,
        /// Column number.
        col: usize,
        /// Human-readable description.
        message: String,
    },
    /// A program was expected to define exactly one query.
    NotSingleQuery(usize),
    /// An atom used a relation with an arity conflicting with an earlier
    /// use or declaration.
    AtomArity {
        /// Relation name.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadPattern(w) => write!(f, "invalid access pattern {w:?}"),
            IrError::ArityConflict { relation, old, new } => write!(
                f,
                "relation {relation} declared with arity {new}, but previously had arity {old}"
            ),
            IrError::EmptyUnion => write!(f, "a union query needs at least one disjunct"),
            IrError::HeadMismatch { expected, found } => {
                write!(f, "rule head {found} does not match union head {expected}")
            }
            IrError::HeadNotRenamable(h) => write!(
                f,
                "rule head {h} cannot be renamed onto the union's canonical head"
            ),
            IrError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            IrError::NotSingleQuery(n) => {
                write!(f, "expected a program defining exactly one query, found {n}")
            }
            IrError::AtomArity {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation} used with {found} arguments, expected {expected}"
            ),
        }
    }
}

impl Error for IrError {}
