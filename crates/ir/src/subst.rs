//! Substitutions and fresh-variable generation.

use crate::atom::{Atom, Literal};
use crate::term::{Term, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A mapping from variables to terms, applied simultaneously (not iterated
/// to fixpoint): `{x → y, y → z}` applied to `R(x, y)` yields `R(y, z)`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: HashMap<Var, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Builds a substitution from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Term)>) -> Substitution {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// Adds a binding, replacing any previous binding for `var`.
    pub fn insert(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    /// Looks up a binding.
    pub fn get(&self, var: Var) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// Removes a binding, returning its previous value (used by backtracking
    /// searches that extend and retract a substitution in place).
    pub fn remove(&mut self, var: Var) -> Option<Term> {
        self.map.remove(&var)
    }

    /// True iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, term: Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(&v).copied().unwrap_or(term),
            Term::Const(_) => term,
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom {
            predicate: atom.predicate,
            args: atom.args.iter().map(|&t| self.apply_term(t)).collect(),
        }
    }

    /// Applies the substitution to a literal.
    pub fn apply_literal(&self, lit: &Literal) -> Literal {
        Literal {
            positive: lit.positive,
            atom: self.apply_atom(&lit.atom),
        }
    }

    /// Iterates over the bindings (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (Var, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<String> = self
            .map
            .iter()
            .map(|(v, t)| format!("{v} -> {t}"))
            .collect();
        entries.sort();
        write!(f, "{{{}}}", entries.join(", "))
    }
}

/// Generates fresh variables `_f0, _f1, …` that are guaranteed not to occur
/// in the supplied avoid-sets. The `_` prefix cannot be produced by the
/// parser's variable syntax, so fresh variables never collide with parsed
/// queries either.
#[derive(Debug, Default)]
pub struct FreshVarGen {
    counter: u64,
}

impl FreshVarGen {
    /// A generator starting at `_f0`.
    pub fn new() -> FreshVarGen {
        FreshVarGen::default()
    }

    /// Produces the next fresh variable unconditionally.
    pub fn fresh(&mut self) -> Var {
        let v = Var::new(&format!("_f{}", self.counter));
        self.counter += 1;
        v
    }

    /// Produces a fresh variable not occurring in either avoid-set.
    pub fn fresh_avoiding(&mut self, a: &HashSet<Var>, b: &HashSet<Var>) -> Var {
        loop {
            let v = self.fresh();
            if !a.contains(&v) && !b.contains(&v) {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_application() {
        // {x→y, y→z} on R(x, y) = R(y, z), not R(z, z).
        let mut s = Substitution::new();
        s.insert(Var::new("x"), Term::var("y"));
        s.insert(Var::new("y"), Term::var("z"));
        let a = Atom::from_parts("R", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(s.apply_atom(&a).to_string(), "R(y, z)");
    }

    #[test]
    fn constants_are_fixed_points() {
        let mut s = Substitution::new();
        s.insert(Var::new("x"), Term::int(1));
        assert_eq!(s.apply_term(Term::int(5)), Term::int(5));
        assert_eq!(s.apply_term(Term::var("x")), Term::int(1));
        assert_eq!(s.apply_term(Term::var("unbound")), Term::var("unbound"));
    }

    #[test]
    fn fresh_vars_are_distinct_and_avoid() {
        let mut gen = FreshVarGen::new();
        let a: HashSet<Var> = [Var::new("_f0"), Var::new("_f1")].into_iter().collect();
        let v = gen.fresh_avoiding(&a, &HashSet::new());
        assert_eq!(v, Var::new("_f2"));
    }

    #[test]
    fn apply_literal_preserves_sign() {
        let mut s = Substitution::new();
        s.insert(Var::new("x"), Term::var("y"));
        let l = Literal::neg(Atom::from_parts("S", vec![Term::var("x")]));
        let applied = s.apply_literal(&l);
        assert!(!applied.positive);
        assert_eq!(applied.to_string(), "not S(y)");
    }
}
