//! Satisfiability of CQ¬ queries (paper, Proposition 8).

use crate::query::ConjunctiveQuery;
use std::collections::HashSet;

/// Proposition 8: a CQ¬ query `Q` is unsatisfiable iff there exist a
/// relation `R` and terms `x̄` such that both `R(x̄)` and `¬R(x̄)` appear in
/// `Q` (syntactically identical argument tuples). Otherwise the frozen
/// positive part `[Q⁺]` is a model.
///
/// Runs in `O(|Q|)` expected time via hashing (the paper states quadratic,
/// which a nested scan would give; hashing is strictly better).
pub fn is_satisfiable(q: &ConjunctiveQuery) -> bool {
    let positives: HashSet<_> = q
        .body
        .iter()
        .filter(|l| l.positive)
        .map(|l| &l.atom)
        .collect();
    !q.body
        .iter()
        .filter(|l| !l.positive)
        .any(|l| positives.contains(&l.atom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn complementary_pair_is_unsatisfiable() {
        let q = parse_cq("Q(x) :- R(x, y), not R(x, y).").unwrap();
        assert!(!is_satisfiable(&q));
    }

    #[test]
    fn different_arguments_are_satisfiable() {
        let q = parse_cq("Q(x) :- R(x, y), not R(y, x).").unwrap();
        assert!(is_satisfiable(&q));
    }

    #[test]
    fn different_predicates_are_satisfiable() {
        let q = parse_cq("Q(x) :- R(x), not S(x).").unwrap();
        assert!(is_satisfiable(&q));
    }

    #[test]
    fn positive_only_queries_are_satisfiable() {
        let q = parse_cq("Q(x) :- R(x, y), S(y, x), R(y, y).").unwrap();
        assert!(is_satisfiable(&q));
    }

    #[test]
    fn constants_must_match_syntactically() {
        let q = parse_cq("Q(x) :- R(x, 1), not R(x, 2).").unwrap();
        assert!(is_satisfiable(&q));
        let q = parse_cq("Q(x) :- R(x, 1), not R(x, 1).").unwrap();
        assert!(!is_satisfiable(&q));
    }
}
