//! Access patterns (Definition 1) and schemas with pattern sets.

use crate::atom::Predicate;
use crate::error::IrError;
use crate::symbol::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// An access pattern `R^α` for a k-ary relation: a word `α ∈ {i, o}^k`
/// (Definition 1). Position `j` is an *input slot* if `α(j) = i` — a value
/// must be supplied there at call time — and an *output slot* otherwise.
///
/// Represented as a bitmask (`i` = bit set) plus the arity, so patterns are
/// `Copy` and subsumption is a mask test. Arity is limited to 32, far above
/// anything in practice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessPattern {
    arity: u8,
    inputs: u32,
}

impl AccessPattern {
    /// Maximum supported arity.
    pub const MAX_ARITY: usize = 32;

    /// Parses a pattern word such as `"oio"`.
    pub fn parse(word: &str) -> Result<AccessPattern, IrError> {
        if word.is_empty() || word.len() > Self::MAX_ARITY {
            return Err(IrError::BadPattern(word.to_owned()));
        }
        let mut inputs = 0u32;
        for (j, ch) in word.chars().enumerate() {
            match ch {
                'i' => inputs |= 1 << j,
                'o' => {}
                _ => return Err(IrError::BadPattern(word.to_owned())),
            }
        }
        Ok(AccessPattern {
            arity: word.len() as u8,
            inputs,
        })
    }

    /// The all-output pattern `R^{oo…o}` of the given arity: a relation that
    /// can be scanned freely.
    pub fn all_output(arity: usize) -> AccessPattern {
        assert!(arity <= Self::MAX_ARITY, "arity {arity} too large");
        AccessPattern {
            arity: arity as u8,
            inputs: 0,
        }
    }

    /// The all-input pattern `R^{ii…i}`: a pure membership test.
    pub fn all_input(arity: usize) -> AccessPattern {
        assert!(arity <= Self::MAX_ARITY && arity > 0, "bad arity {arity}");
        AccessPattern {
            arity: arity as u8,
            inputs: if arity == 32 {
                u32::MAX
            } else {
                (1u32 << arity) - 1
            },
        }
    }

    /// Builds a pattern from the set of input positions (0-based).
    pub fn from_input_positions(arity: usize, inputs: &[usize]) -> AccessPattern {
        assert!(arity <= Self::MAX_ARITY);
        let mut mask = 0u32;
        for &j in inputs {
            assert!(j < arity, "input position {j} out of range for arity {arity}");
            mask |= 1 << j;
        }
        AccessPattern {
            arity: arity as u8,
            inputs: mask,
        }
    }

    /// The pattern's arity.
    pub fn arity(self) -> usize {
        self.arity as usize
    }

    /// True iff position `j` (0-based) is an input slot.
    pub fn is_input(self, j: usize) -> bool {
        debug_assert!(j < self.arity());
        self.inputs & (1 << j) != 0
    }

    /// Iterator over the 0-based input positions.
    pub fn input_positions(self) -> impl Iterator<Item = usize> {
        let mask = self.inputs;
        (0..self.arity()).filter(move |&j| mask & (1 << j) != 0)
    }

    /// Iterator over the 0-based output positions.
    pub fn output_positions(self) -> impl Iterator<Item = usize> {
        let mask = self.inputs;
        (0..self.arity()).filter(move |&j| mask & (1 << j) == 0)
    }

    /// Number of input slots.
    pub fn num_inputs(self) -> usize {
        self.inputs.count_ones() as usize
    }

    /// True iff every slot is an output slot (free scan).
    pub fn is_all_output(self) -> bool {
        self.inputs == 0
    }

    /// "Bound is easier" (Ullman): `self` *subsumes* `other` if whenever
    /// `other` is usable, so is `self` — i.e. `self`'s input slots are a
    /// subset of `other`'s. A source exposing `self` can emulate any call
    /// made through `other` by ignoring the extra bindings and filtering.
    pub fn subsumes(self, other: AccessPattern) -> bool {
        self.arity == other.arity && (self.inputs & !other.inputs) == 0
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for j in 0..self.arity() {
            f.write_str(if self.is_input(j) { "i" } else { "o" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The declaration of one relation: its arity and the set of access patterns
/// under which it may be called.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationDecl {
    /// The relation (name + arity).
    pub predicate: Predicate,
    /// Available access patterns, deduplicated, in insertion order.
    pub patterns: Vec<AccessPattern>,
}

impl RelationDecl {
    /// True iff some pattern allows a call with exactly the positions in
    /// `bound` already bound — i.e. some pattern's input slots ⊆ `bound`.
    pub fn callable_with(&self, bound: impl Fn(usize) -> bool) -> bool {
        self.usable_pattern(bound).is_some()
    }

    /// The *best* usable pattern given the bound positions: among patterns
    /// whose input slots are all bound, the one with the most input slots
    /// (pushing the most selections to the source). `None` if no pattern is
    /// usable.
    pub fn usable_pattern(&self, bound: impl Fn(usize) -> bool) -> Option<AccessPattern> {
        self.patterns
            .iter()
            .copied()
            .filter(|p| p.input_positions().all(&bound))
            .max_by_key(|p| p.num_inputs())
    }
}

/// A schema: the set of relations with their access patterns — the paper's
/// "`P`, a set of access patterns" together with the relation arities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<Symbol, RelationDecl>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Adds (or extends) a relation with an access pattern given as a word
    /// like `"oio"`. The relation's arity is the word length; re-declaring
    /// with a different arity is an error.
    pub fn add_pattern_str(&mut self, name: &str, word: &str) -> Result<(), IrError> {
        let pattern = AccessPattern::parse(word)?;
        self.add_pattern(name, pattern)
    }

    /// Adds (or extends) a relation with the given access pattern.
    pub fn add_pattern(&mut self, name: &str, pattern: AccessPattern) -> Result<(), IrError> {
        let sym = Symbol::intern(name);
        match self.relations.get_mut(&sym) {
            Some(decl) => {
                if decl.predicate.arity != pattern.arity() {
                    return Err(IrError::ArityConflict {
                        relation: name.to_owned(),
                        old: decl.predicate.arity,
                        new: pattern.arity(),
                    });
                }
                if !decl.patterns.contains(&pattern) {
                    decl.patterns.push(pattern);
                }
            }
            None => {
                self.relations.insert(
                    sym,
                    RelationDecl {
                        predicate: Predicate {
                            name: sym,
                            arity: pattern.arity(),
                        },
                        patterns: vec![pattern],
                    },
                );
            }
        }
        Ok(())
    }

    /// Declares a relation with *no* access patterns (it exists but cannot
    /// be called — useful for intensional predicates like `dom`).
    pub fn declare(&mut self, predicate: Predicate) {
        self.relations.entry(predicate.name).or_insert(RelationDecl {
            predicate,
            patterns: Vec::new(),
        });
    }

    /// Looks up a relation's declaration.
    pub fn relation(&self, name: Symbol) -> Option<&RelationDecl> {
        self.relations.get(&name)
    }

    /// The access patterns of a relation (empty slice if undeclared).
    pub fn patterns(&self, name: Symbol) -> &[AccessPattern] {
        self.relations
            .get(&name)
            .map(|d| d.patterns.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over all relation declarations in name order.
    pub fn iter(&self) -> impl Iterator<Item = &RelationDecl> {
        self.relations.values()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Removes access patterns subsumed by a strictly more capable one
    /// ("bound is easier", Ullman): a pattern whose input slots are a
    /// superset of another's can always be replaced by that other pattern,
    /// so dropping it changes no answerability or executability verdict —
    /// it only shrinks the sets the planning algorithms iterate over.
    pub fn minimize_patterns(&mut self) {
        for decl in self.relations.values_mut() {
            let patterns = decl.patterns.clone();
            decl.patterns.retain(|&p| {
                !patterns
                    .iter()
                    .any(|&other| other != p && other.subsumes(p))
            });
        }
    }

    /// Convenience constructor from `(name, pattern-word)` pairs.
    ///
    /// ```
    /// use lap_ir::Schema;
    /// let s = Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("L", "o")]).unwrap();
    /// assert_eq!(s.len(), 2);
    /// ```
    pub fn from_patterns(pairs: &[(&str, &str)]) -> Result<Schema, IrError> {
        let mut schema = Schema::new();
        for (name, word) in pairs {
            schema.add_pattern_str(name, word)?;
        }
        Ok(schema)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for decl in self.relations.values() {
            for p in &decl.patterns {
                writeln!(f, "{}^{}.", decl.predicate.name, p)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for w in ["o", "i", "oio", "iiii", "oooo"] {
            assert_eq!(AccessPattern::parse(w).unwrap().to_string(), w);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(AccessPattern::parse("").is_err());
        assert!(AccessPattern::parse("iox").is_err());
        assert!(AccessPattern::parse(&"i".repeat(33)).is_err());
    }

    #[test]
    fn input_output_positions() {
        let p = AccessPattern::parse("oio").unwrap();
        assert_eq!(p.input_positions().collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.output_positions().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!p.is_input(0));
        assert!(p.is_input(1));
        assert_eq!(p.num_inputs(), 1);
    }

    #[test]
    fn subsumption_is_bound_is_easier() {
        let ooo = AccessPattern::parse("ooo").unwrap();
        let oio = AccessPattern::parse("oio").unwrap();
        let iio = AccessPattern::parse("iio").unwrap();
        assert!(ooo.subsumes(oio));
        assert!(oio.subsumes(iio));
        assert!(!iio.subsumes(oio));
        assert!(!ooo.subsumes(AccessPattern::parse("oo").unwrap())); // arity differs
    }

    #[test]
    fn all_input_all_output() {
        let ai = AccessPattern::all_input(3);
        assert_eq!(ai.to_string(), "iii");
        let ao = AccessPattern::all_output(3);
        assert_eq!(ao.to_string(), "ooo");
        assert!(ao.is_all_output());
        assert!(!ai.is_all_output());
    }

    #[test]
    fn schema_accumulates_patterns() {
        let s = Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("B", "ioo")]).unwrap();
        let decl = s.relation(Symbol::intern("B")).unwrap();
        assert_eq!(decl.patterns.len(), 2); // deduplicated
        assert_eq!(decl.predicate.arity, 3);
    }

    #[test]
    fn schema_rejects_arity_conflict() {
        let mut s = Schema::new();
        s.add_pattern_str("R", "oo").unwrap();
        assert!(matches!(
            s.add_pattern_str("R", "ooo"),
            Err(IrError::ArityConflict { .. })
        ));
    }

    #[test]
    fn usable_pattern_picks_most_selective() {
        let s = Schema::from_patterns(&[("B", "ooo"), ("B", "iio")]).unwrap();
        let decl = s.relation(Symbol::intern("B")).unwrap();
        // Everything bound: prefer the pattern pushing 2 inputs.
        let best = decl.usable_pattern(|_| true).unwrap();
        assert_eq!(best.to_string(), "iio");
        // Nothing bound: only the free scan works.
        let best = decl.usable_pattern(|_| false).unwrap();
        assert_eq!(best.to_string(), "ooo");
    }

    #[test]
    fn relation_with_no_patterns_is_never_callable() {
        let mut s = Schema::new();
        s.declare(Predicate::new("dom", 1));
        let decl = s.relation(Symbol::intern("dom")).unwrap();
        assert!(!decl.callable_with(|_| true));
    }
}

impl std::str::FromStr for AccessPattern {
    type Err = IrError;

    fn from_str(s: &str) -> Result<AccessPattern, IrError> {
        AccessPattern::parse(s)
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn from_str_round_trips() {
        let p: AccessPattern = "oio".parse().unwrap();
        assert_eq!(p.to_string(), "oio");
        assert!("oxo".parse::<AccessPattern>().is_err());
    }

    #[test]
    fn minimize_patterns_drops_subsumed() {
        let mut s = Schema::from_patterns(&[("B", "iio"), ("B", "ioo"), ("B", "oio"), ("B", "ooo")])
            .unwrap();
        s.minimize_patterns();
        let decl = s.relation(Symbol::intern("B")).unwrap();
        // ooo subsumes everything.
        assert_eq!(decl.patterns.len(), 1);
        assert_eq!(decl.patterns[0].to_string(), "ooo");
    }

    #[test]
    fn minimize_patterns_keeps_incomparable() {
        let mut s = Schema::from_patterns(&[("B", "ioo"), ("B", "oio")]).unwrap();
        s.minimize_patterns();
        assert_eq!(s.relation(Symbol::intern("B")).unwrap().patterns.len(), 2);
    }

    #[test]
    fn minimize_patterns_preserves_callability() {
        let mut s =
            Schema::from_patterns(&[("R", "iio"), ("R", "ioo"), ("R", "oii"), ("R", "ioi")])
                .unwrap();
        let before = s.clone();
        s.minimize_patterns();
        // Every bound-set that was callable before is callable after.
        let r = Symbol::intern("R");
        for mask in 0u32..8 {
            let callable = |schema: &Schema| {
                schema
                    .relation(r)
                    .unwrap()
                    .callable_with(|j| mask & (1 << j) != 0)
            };
            assert_eq!(callable(&before), callable(&s), "mask {mask:03b}");
        }
    }
}
