//! Robustness fuzzing of the parser: arbitrary input must never panic —
//! every outcome is `Ok` or a positioned `IrError::Parse`-family error —
//! and valid programs must round-trip through display.
//!
//! Deterministic: inputs are derived from explicit seeds via
//! [`lap_prng::StdRng`]; every assertion message carries the seed.

use lap_ir::{parse_program, parse_query};
use lap_prng::{SliceRandom, StdRng};

/// Cases per fuzz target (multiplied under heavier sweeps elsewhere).
const CASES: u64 = 512;

/// Arbitrary bytes: the parser returns, never panics.
#[test]
fn arbitrary_text_never_panics() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..200usize);
        let text: String = (0..len)
            .map(|_| {
                // Mix printable ASCII with the occasional multi-byte char.
                if rng.gen_bool(0.05) {
                    *['¬', 'Σ', '⊑', 'é', '\n', '\t'].choose(&mut rng).unwrap()
                } else {
                    char::from(rng.gen_range(0x20..0x7Fu8))
                }
            })
            .collect();
        let _ = parse_program(&text); // must not panic (seed {seed})
    }
}

/// Token soup from the language's own alphabet: likelier to get deep into
/// the grammar, still must never panic.
#[test]
fn token_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "Q", "R", "x", "(", ")", ",", ".", ":-", "not", "^", "io", "42", "\"s\"", "true",
        "false", "¬", "<-", "%c\n",
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..40usize);
        let text: Vec<&str> = (0..n)
            .map(|_| *TOKENS.choose(&mut rng).unwrap())
            .collect();
        let _ = parse_program(&text.join(" ")); // must not panic (seed {seed})
    }
}

/// Structured generator: random well-formed programs parse and round-trip
/// (display → parse → display is a fixpoint).
#[test]
fn well_formed_programs_round_trip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_rules = rng.gen_range(1..4usize);
        let n_lits = rng.gen_range(1..4usize);
        let salt = rng.gen_range(0..1000u64);
        let mut text = String::new();
        for r in 0..n_rules {
            text.push_str("Q(x0) :- ");
            let mut parts = Vec::new();
            for l in 0..n_lits {
                let neg = (salt + r as u64 + l as u64).is_multiple_of(3) && l > 0;
                let rel = format!("R{}", (salt as usize + l) % 3);
                let v1 = format!("x{}", (salt as usize + r + l) % 3);
                let v2 = format!("x{}", (salt as usize + l) % 2);
                parts.push(format!(
                    "{}{}({}, {})",
                    if neg { "not " } else { "" },
                    rel,
                    v1,
                    v2
                ));
            }
            // Keep it safe: ensure x0 occurs positively.
            parts.insert(0, "Base(x0)".to_owned());
            text.push_str(&parts.join(", "));
            text.push_str(".\n");
        }
        let q = parse_query(&text).unwrap();
        let shown = q.to_string();
        let reparsed = parse_query(&shown).unwrap();
        assert_eq!(q, reparsed, "seed {seed}: round trip failed for\n{text}");
    }
}
