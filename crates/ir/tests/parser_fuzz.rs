//! Robustness fuzzing of the parser: arbitrary input must never panic —
//! every outcome is `Ok` or a positioned `IrError::Parse`-family error —
//! and valid programs must round-trip through display.

use lap_ir::{parse_program, parse_query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// Arbitrary bytes: the parser returns, never panics.
    #[test]
    fn arbitrary_text_never_panics(text in ".{0,200}") {
        let _ = parse_program(&text);
    }

    /// Token soup from the language's own alphabet: likelier to get deep
    /// into the grammar, still must never panic.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("Q".to_owned()), Just("R".to_owned()), Just("x".to_owned()),
            Just("(".to_owned()), Just(")".to_owned()), Just(",".to_owned()),
            Just(".".to_owned()), Just(":-".to_owned()), Just("not".to_owned()),
            Just("^".to_owned()), Just("io".to_owned()), Just("42".to_owned()),
            Just("\"s\"".to_owned()), Just("true".to_owned()), Just("false".to_owned()),
            Just("¬".to_owned()), Just("<-".to_owned()), Just("%c\n".to_owned()),
        ],
        0..40,
    )) {
        let text = tokens.join(" ");
        let _ = parse_program(&text);
    }

    /// Structured generator: random well-formed programs parse and
    /// round-trip (display → parse → display is a fixpoint).
    #[test]
    fn well_formed_programs_round_trip(
        n_rules in 1usize..4,
        n_lits in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut text = String::new();
        for r in 0..n_rules {
            text.push_str("Q(x0) :- ");
            let mut parts = Vec::new();
            for l in 0..n_lits {
                let neg = (seed + r as u64 + l as u64).is_multiple_of(3) && l > 0;
                let rel = format!("R{}", (seed as usize + l) % 3);
                let v1 = format!("x{}", (seed as usize + r + l) % 3);
                let v2 = format!("x{}", (seed as usize + l) % 2);
                parts.push(format!("{}{}({}, {})", if neg { "not " } else { "" }, rel, v1, v2));
            }
            // Keep it safe: ensure x0 occurs positively.
            parts.insert(0, "Base(x0)".to_owned());
            text.push_str(&parts.join(", "));
            text.push_str(".\n");
        }
        let q = parse_query(&text).unwrap();
        let shown = q.to_string();
        let reparsed = parse_query(&shown).unwrap();
        prop_assert_eq!(q, reparsed);
    }
}
