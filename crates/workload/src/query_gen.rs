//! Seeded random query generation (safe CQ/CQ¬/UCQ¬ over a given schema).

use lap_ir::{Atom, ConjunctiveQuery, Literal, Schema, Term, UnionQuery, Var};
use lap_prng::{SliceRandom, StdRng};
use std::collections::HashSet;

/// Parameters for random query generation.
#[derive(Clone, Debug)]
pub struct QueryConfig {
    /// Number of disjuncts (1 for a CQ/CQ¬).
    pub num_disjuncts: usize,
    /// Positive literals per disjunct.
    pub positive_per_disjunct: usize,
    /// Negative literals per disjunct (0 for CQ/UCQ).
    pub negative_per_disjunct: usize,
    /// Size of the existential-variable pool per disjunct.
    pub extra_vars: usize,
    /// Head arity (distinguished variables `x0 … x{k-1}`).
    pub head_arity: usize,
    /// Probability that an argument position gets a constant instead of a
    /// variable.
    pub constant_fraction: f64,
    /// Size of the constant pool (`1 … n` as integers).
    pub constant_pool: usize,
}

impl Default for QueryConfig {
    fn default() -> QueryConfig {
        QueryConfig {
            num_disjuncts: 2,
            positive_per_disjunct: 3,
            negative_per_disjunct: 1,
            extra_vars: 3,
            head_arity: 2,
            constant_fraction: 0.1,
            constant_pool: 4,
        }
    }
}

/// Generates a random *safe* UCQ¬ over `schema`:
///
/// * every head variable `x0 … x{k-1}` is planted into some positive
///   literal of every disjunct;
/// * negative literals draw their variables only from those already used
///   positively in the same disjunct (plus constants), so safety holds by
///   construction;
/// * all disjuncts share the identical head `Q(x0, …, x{k-1})`.
pub fn gen_query(schema: &Schema, cfg: &QueryConfig, rng: &mut StdRng) -> UnionQuery {
    assert!(cfg.num_disjuncts >= 1 && cfg.positive_per_disjunct >= 1);
    let relations: Vec<_> = schema.iter().map(|d| d.predicate).collect();
    assert!(!relations.is_empty(), "schema has no relations");
    let head_vars: Vec<Var> = (0..cfg.head_arity).map(|i| Var::new(&format!("x{i}"))).collect();
    let head = Atom::from_parts(
        "Q",
        head_vars.iter().map(|&v| Term::Var(v)).collect::<Vec<_>>(),
    );

    let mut disjuncts = Vec::with_capacity(cfg.num_disjuncts);
    for _ in 0..cfg.num_disjuncts {
        disjuncts.push(gen_disjunct(&relations, &head, &head_vars, cfg, rng));
    }
    UnionQuery::new(disjuncts).expect("identical heads")
}

fn gen_disjunct(
    relations: &[lap_ir::Predicate],
    head: &Atom,
    head_vars: &[Var],
    cfg: &QueryConfig,
    rng: &mut StdRng,
) -> ConjunctiveQuery {
    let mut pool: Vec<Var> = head_vars.to_vec();
    for i in 0..cfg.extra_vars {
        pool.push(Var::new(&format!("y{i}")));
    }
    let term = |rng: &mut StdRng, pool: &[Var]| -> Term {
        if rng.gen_bool(cfg.constant_fraction) {
            Term::int(rng.gen_range(1..=cfg.constant_pool as i64))
        } else {
            Term::Var(*pool.choose(rng).expect("non-empty pool"))
        }
    };

    let mut body: Vec<Literal> = Vec::new();
    for _ in 0..cfg.positive_per_disjunct {
        let pred = *relations.choose(rng).expect("non-empty");
        let args: Vec<Term> = (0..pred.arity).map(|_| term(rng, &pool)).collect();
        body.push(Literal::pos(Atom::new(pred, args)));
    }
    // Plant every head variable into some positive literal. A plant must
    // never evict the sole occurrence of another head variable (including
    // one planted a moment ago), so only positions holding a constant, a
    // non-head variable, or a *duplicate* occurrence of a head variable are
    // eligible.
    for &hv in head_vars {
        let used: HashSet<Var> = body.iter().flat_map(|l| l.vars()).collect();
        if used.contains(&hv) {
            continue;
        }
        let mut counts: std::collections::HashMap<Var, usize> = std::collections::HashMap::new();
        for l in &body {
            for v in l.vars() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let counts = &counts;
        let candidates: Vec<(usize, usize)> = body
            .iter()
            .enumerate()
            .flat_map(|(li, l)| {
                l.atom.args.iter().enumerate().filter_map(move |(pi, &t)| {
                    let evictable = match t {
                        Term::Const(_) => true,
                        Term::Var(v) => !head_vars.contains(&v) || counts.get(&v).copied().unwrap_or(0) > 1,
                    };
                    evictable.then_some((li, pi))
                })
            })
            .collect();
        if let Some(&(li, pi)) = candidates.choose(rng) {
            body[li].atom.args[pi] = Term::Var(hv);
        } else {
            // Degenerate shape (every position is a last head-var
            // occurrence): widen with one extra unary-ish literal.
            let pred = relations.iter().max_by_key(|p| p.arity).expect("non-empty");
            let mut args: Vec<Term> = (0..pred.arity).map(|_| term(rng, &pool)).collect();
            args[0] = Term::Var(hv);
            body.push(Literal::pos(Atom::new(*pred, args)));
        }
    }
    // Negative literals over already-used variables (safety).
    let used: Vec<Var> = {
        let mut seen = HashSet::new();
        body.iter()
            .flat_map(|l| l.vars().collect::<Vec<_>>())
            .filter(|v| seen.insert(*v))
            .collect()
    };
    for _ in 0..cfg.negative_per_disjunct {
        let pred = *relations.choose(rng).expect("non-empty");
        let args: Vec<Term> = (0..pred.arity)
            .map(|_| {
                if rng.gen_bool(cfg.constant_fraction) || used.is_empty() {
                    Term::int(rng.gen_range(1..=cfg.constant_pool as i64))
                } else {
                    Term::Var(*used.choose(rng).expect("non-empty"))
                }
            })
            .collect();
        body.push(Literal::neg(Atom::new(pred, args)));
    }
    // Interleave: shuffle so negatives aren't always last (exercises
    // reordering).
    body.shuffle(rng);
    ConjunctiveQuery::new(head.clone(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::{gen_schema, SchemaConfig};

    fn schema(seed: u64) -> Schema {
        gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn generated_queries_are_safe() {
        let s = schema(3);
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = gen_query(&s, &QueryConfig::default(), &mut rng);
            assert!(q.is_safe(), "unsafe query generated (seed {seed}): {q}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = schema(3);
        let cfg = QueryConfig::default();
        let a = gen_query(&s, &cfg, &mut StdRng::seed_from_u64(11));
        let b = gen_query(&s, &cfg, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn respects_shape_parameters() {
        let s = schema(4);
        let cfg = QueryConfig {
            num_disjuncts: 3,
            positive_per_disjunct: 4,
            negative_per_disjunct: 2,
            ..QueryConfig::default()
        };
        let q = gen_query(&s, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(q.disjuncts.len(), 3);
        for d in &q.disjuncts {
            assert_eq!(d.body.iter().filter(|l| l.positive).count(), 4);
            assert_eq!(d.body.iter().filter(|l| !l.positive).count(), 2);
        }
    }

    #[test]
    fn zero_negatives_gives_plain_ucq() {
        let s = schema(4);
        let cfg = QueryConfig {
            negative_per_disjunct: 0,
            ..QueryConfig::default()
        };
        for seed in 0..20 {
            let q = gen_query(&s, &cfg, &mut StdRng::seed_from_u64(seed));
            assert!(q.is_positive());
        }
    }

    #[test]
    fn heads_are_identical_across_disjuncts() {
        let s = schema(9);
        let q = gen_query(&s, &QueryConfig::default(), &mut StdRng::seed_from_u64(2));
        for d in &q.disjuncts {
            assert_eq!(d.head, q.head);
        }
    }
}
