//! Hand-shaped query families with known properties, used by the paper
//! examples, the scaling experiments, and the worst-case stress tests.

use lap_ir::{
    AccessPattern, Atom, ConjunctiveQuery, Literal, Schema, Term, UnionQuery, Var,
};

/// A query together with its schema — everything a feasibility check needs.
#[derive(Clone, Debug)]
pub struct QueryInstance {
    /// The query.
    pub query: UnionQuery,
    /// Its access patterns.
    pub schema: Schema,
}

fn var(prefix: &str, i: usize) -> Term {
    Term::Var(Var::new(&format!("{prefix}{i}")))
}

/// A length-`n` chain `Q(x0) :- S(x0), R(x0,x1), …, R(x{n-1},xn)` with
/// `S^o`, `R^io`, written *in executable order*: ANSWERABLE's best case
/// (one pass).
pub fn forward_chain(n: usize) -> QueryInstance {
    let schema = Schema::from_patterns(&[("S", "o"), ("R", "io")]).expect("static patterns");
    let mut body = vec![Literal::pos(Atom::from_parts("S", vec![var("x", 0)]))];
    for i in 0..n {
        body.push(Literal::pos(Atom::from_parts(
            "R",
            vec![var("x", i), var("x", i + 1)],
        )));
    }
    let cq = ConjunctiveQuery::new(Atom::from_parts("Q", vec![var("x", 0)]), body);
    QueryInstance {
        query: UnionQuery::single(cq),
        schema,
    }
}

/// The same chain written in *reverse* order, so each ANSWERABLE pass
/// discovers exactly one literal: the quadratic worst case of Figure 1
/// (and of the left-to-right executability check).
pub fn reversed_chain(n: usize) -> QueryInstance {
    let schema = Schema::from_patterns(&[("S", "o"), ("R", "io")]).expect("static patterns");
    let mut body = Vec::with_capacity(n + 1);
    for i in (0..n).rev() {
        body.push(Literal::pos(Atom::from_parts(
            "R",
            vec![var("x", i), var("x", i + 1)],
        )));
    }
    body.push(Literal::pos(Atom::from_parts("S", vec![var("x", 0)])));
    let cq = ConjunctiveQuery::new(Atom::from_parts("Q", vec![var("x", 0)]), body);
    QueryInstance {
        query: UnionQuery::single(cq),
        schema,
    }
}

/// A star `Q(c) :- Hub(c), Spoke(c, y1), …, Spoke(c, yn)` with `Hub^o`,
/// `Spoke^io`.
pub fn star(n: usize) -> QueryInstance {
    let schema = Schema::from_patterns(&[("Hub", "o"), ("Spoke", "io")]).expect("static");
    let c = Term::Var(Var::new("c"));
    let mut body = vec![Literal::pos(Atom::from_parts("Hub", vec![c]))];
    for i in 0..n {
        body.push(Literal::pos(Atom::from_parts("Spoke", vec![c, var("y", i)])));
    }
    let cq = ConjunctiveQuery::new(Atom::from_parts("Q", vec![c]), body);
    QueryInstance {
        query: UnionQuery::single(cq),
        schema,
    }
}

/// Example 3 generalized: a two-disjunct UCQ¬ that is feasible but not
/// orderable, with `k` copies of the unanswerable twin atom. The query is
/// equivalent to the executable `Q(a) :- L(i), B(i, a, t)` regardless of
/// `k`, but only the containment check can see it.
pub fn feasible_not_orderable(k: usize) -> QueryInstance {
    let schema =
        Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("L", "o")]).expect("static");
    let (i, a, t) = (Term::Var(Var::new("i")), Term::Var(Var::new("a")), Term::Var(Var::new("t")));
    let base = vec![
        Literal::pos(Atom::from_parts("B", vec![i, a, t])),
        Literal::pos(Atom::from_parts("L", vec![i])),
    ];
    let twin = |j: usize, positive: bool| {
        let atom = Atom::from_parts("B", vec![var("i'", j), var("a'", j), t]);
        if positive {
            Literal::pos(atom)
        } else {
            Literal::neg(atom)
        }
    };
    let mut pos_body = base.clone();
    let mut neg_body = base;
    for j in 0..k.max(1) {
        pos_body.push(twin(j, true));
        neg_body.push(twin(j, false));
    }
    let head = Atom::from_parts("Q", vec![a]);
    let query = UnionQuery::new(vec![
        ConjunctiveQuery::new(head.clone(), pos_body),
        ConjunctiveQuery::new(head, neg_body),
    ])
    .expect("shared heads");
    QueryInstance { query, schema }
}

/// The excluded-middle containment pair: `P(x) :- R(x)` and
/// `Q(x) :- R(x), ±S1(x), …, ±Sn(x)` over all `2^n` sign patterns.
/// `P ⊑ Q` holds and forces the Wei–Lausen recursion to explore the sign
/// tree — the natural Π₂ᴾ stress family. Dropping any disjunct breaks the
/// containment.
pub fn excluded_middle_pair(n: usize) -> (UnionQuery, UnionQuery) {
    assert!(n <= 16, "2^n disjuncts; keep n small");
    let x = Term::Var(Var::new("x"));
    let head = Atom::from_parts("Q", vec![x]);
    let p = UnionQuery::single(ConjunctiveQuery::new(
        head.clone(),
        vec![Literal::pos(Atom::from_parts("R", vec![x]))],
    ));
    let mut disjuncts = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let mut body = vec![Literal::pos(Atom::from_parts("R", vec![x]))];
        for j in 0..n {
            let atom = Atom::from_parts(&format!("S{j}"), vec![x]);
            body.push(if mask & (1 << j) != 0 {
                Literal::pos(atom)
            } else {
                Literal::neg(atom)
            });
        }
        disjuncts.push(ConjunctiveQuery::new(head.clone(), body));
    }
    let q = UnionQuery::new(disjuncts).expect("shared heads");
    (p, q)
}

/// A BIRN-style global-as-view unfolding (paper, Section 4.2 and Example 6
/// discussion): a UCQ¬ plan over source relations where
///
/// * `unsat` disjuncts are unsatisfiable (complementary literals — the
///   "implicit integrity constraint" artifacts the BIRN mediator produced),
/// * `blocked` disjuncts contain an unanswerable literal (a source callable
///   only with an unavailable input), and
/// * `good` disjuncts are fully answerable.
///
/// The schema exposes `Src{j}^oo` for answerable sources and `Hid{j}^ii`
/// for the blocked ones.
pub fn gav_unfolding(good: usize, blocked: usize, unsat: usize) -> QueryInstance {
    let mut schema = Schema::new();
    let x = Term::Var(Var::new("x"));
    let y = Term::Var(Var::new("y"));
    let head = Atom::from_parts("Q", vec![x]);
    let mut disjuncts = Vec::new();
    for j in 0..good.max(1) {
        let name = format!("Src{j}");
        schema
            .add_pattern(&name, AccessPattern::all_output(2))
            .expect("fresh");
        disjuncts.push(ConjunctiveQuery::new(
            head.clone(),
            vec![Literal::pos(Atom::from_parts(&name, vec![x, y]))],
        ));
    }
    for j in 0..blocked {
        // A dedicated source per blocked disjunct: its answerable part
        // SrcB{j}(x, y) is *not* absorbed by any other disjunct, so these
        // genuinely make the plan infeasible.
        let src = format!("SrcB{j}");
        schema
            .add_pattern(&src, AccessPattern::all_output(2))
            .expect("fresh");
        let hid = format!("Hid{j}");
        schema
            .add_pattern(&hid, AccessPattern::all_input(2))
            .expect("fresh");
        disjuncts.push(ConjunctiveQuery::new(
            head.clone(),
            vec![
                Literal::pos(Atom::from_parts(&src, vec![x, y])),
                Literal::pos(Atom::from_parts(&hid, vec![x, var("z", j)])),
            ],
        ));
    }
    for j in 0..unsat {
        let src = format!("Src{}", j % good.max(1));
        let atom = Atom::from_parts(&src, vec![x, y]);
        disjuncts.push(ConjunctiveQuery::new(
            head.clone(),
            vec![Literal::pos(atom.clone()), Literal::neg(atom)],
        ));
    }
    let query = UnionQuery::new(disjuncts).expect("shared heads");
    QueryInstance { query, schema }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_containment::contained;
    use lap_core::{feasible, is_executable, is_orderable};

    #[test]
    fn chains_are_feasible_and_orderable() {
        for n in [1, 5, 20] {
            let f = forward_chain(n);
            assert!(is_executable(&f.query, &f.schema), "forward n={n}");
            let r = reversed_chain(n);
            assert!(!is_executable(&r.query, &r.schema), "reversed n={n}");
            assert!(is_orderable(&r.query, &r.schema), "reversed n={n}");
            assert!(feasible(&r.query, &r.schema));
        }
    }

    #[test]
    fn star_is_executable() {
        let s = star(8);
        assert!(is_executable(&s.query, &s.schema));
    }

    #[test]
    fn feasible_not_orderable_family() {
        for k in [1, 2, 4] {
            let inst = feasible_not_orderable(k);
            assert!(!is_orderable(&inst.query, &inst.schema), "k={k}");
            assert!(feasible(&inst.query, &inst.schema), "k={k}");
        }
    }

    #[test]
    fn excluded_middle_containment_holds_and_is_tight() {
        let (p, q) = excluded_middle_pair(3);
        assert_eq!(q.disjuncts.len(), 8);
        assert!(contained(&p, &q));
        let q_minus = q.without_disjunct(5);
        assert!(!contained(&p, &q_minus));
    }

    #[test]
    fn gav_unfolding_shape() {
        let inst = gav_unfolding(2, 2, 2);
        assert_eq!(inst.query.disjuncts.len(), 6);
        assert!(inst.query.is_safe());
        // Blocked disjuncts make the whole plan infeasible…
        assert!(!feasible(&inst.query, &inst.schema));
        // …but the pure-good version is executable.
        let pure = gav_unfolding(3, 0, 1);
        assert!(feasible(&pure.query, &pure.schema));
    }
}
