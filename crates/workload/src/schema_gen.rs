//! Seeded random schema generation.

use lap_ir::{AccessPattern, Schema};
use lap_prng::StdRng;

/// Parameters for random schema generation.
#[derive(Clone, Debug)]
pub struct SchemaConfig {
    /// Number of relations (`R0 … R{n-1}`).
    pub num_relations: usize,
    /// Minimum relation arity (inclusive).
    pub min_arity: usize,
    /// Maximum relation arity (inclusive).
    pub max_arity: usize,
    /// Access patterns drawn per relation (deduplicated, so the effective
    /// count can be lower).
    pub patterns_per_relation: usize,
    /// Probability that a slot of a drawn pattern is an input slot.
    pub input_fraction: f64,
    /// Probability that a relation additionally exposes the all-output
    /// (free scan) pattern.
    pub free_scan_fraction: f64,
}

impl Default for SchemaConfig {
    fn default() -> SchemaConfig {
        SchemaConfig {
            num_relations: 6,
            min_arity: 1,
            max_arity: 3,
            patterns_per_relation: 2,
            input_fraction: 0.4,
            free_scan_fraction: 0.3,
        }
    }
}

/// Generates a random schema. Relation `i` is named `R{i}`.
pub fn gen_schema(cfg: &SchemaConfig, rng: &mut StdRng) -> Schema {
    assert!(cfg.num_relations > 0 && cfg.min_arity >= 1 && cfg.min_arity <= cfg.max_arity);
    let mut schema = Schema::new();
    for i in 0..cfg.num_relations {
        let name = format!("R{i}");
        let arity = rng.gen_range(cfg.min_arity..=cfg.max_arity);
        for _ in 0..cfg.patterns_per_relation.max(1) {
            let inputs: Vec<usize> = (0..arity)
                .filter(|_| rng.gen_bool(cfg.input_fraction))
                .collect();
            let p = AccessPattern::from_input_positions(arity, &inputs);
            schema.add_pattern(&name, p).expect("consistent arity");
        }
        if rng.gen_bool(cfg.free_scan_fraction) {
            schema
                .add_pattern(&name, AccessPattern::all_output(arity))
                .expect("consistent arity");
        }
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SchemaConfig::default();
        let a = gen_schema(&cfg, &mut StdRng::seed_from_u64(7));
        let b = gen_schema(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = gen_schema(&cfg, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn respects_relation_count_and_arity_bounds() {
        let cfg = SchemaConfig {
            num_relations: 10,
            min_arity: 2,
            max_arity: 4,
            ..SchemaConfig::default()
        };
        let s = gen_schema(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(s.len(), 10);
        for decl in s.iter() {
            assert!(decl.predicate.arity >= 2 && decl.predicate.arity <= 4);
            assert!(!decl.patterns.is_empty());
        }
    }

    #[test]
    fn free_scan_fraction_one_gives_scannable_relations() {
        let cfg = SchemaConfig {
            free_scan_fraction: 1.0,
            ..SchemaConfig::default()
        };
        let s = gen_schema(&cfg, &mut StdRng::seed_from_u64(2));
        for decl in s.iter() {
            assert!(decl.patterns.iter().any(|p| p.is_all_output()));
        }
    }
}
