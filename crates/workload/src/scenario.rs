//! A realistic federated-bookstore scenario at configurable scale — the
//! end-to-end workload for experiment E17.
//!
//! The scenario mirrors the paper's motivating setting: `v` book vendors
//! (web services searchable by ISBN or by author), `c` freely scannable
//! catalogs, one library membership service, and a price service callable
//! only by ISBN. Instances are generated with a configurable number of
//! books, authors, and per-source coverage, so the same logical query can
//! be run at laptop scale or stress scale.

use lap_engine::{Database, Value};
use lap_ir::{AccessPattern, Schema};
use lap_prng::StdRng;

/// Scale knobs for the federated bookstore.
#[derive(Clone, Debug)]
pub struct BookstoreConfig {
    /// Number of vendor sources `Vendor0 … Vendor{v-1}`.
    pub vendors: usize,
    /// Number of catalog sources `Catalog0 … Catalog{c-1}`.
    pub catalogs: usize,
    /// Total distinct books in the universe.
    pub books: usize,
    /// Distinct authors (books are assigned round-robin-with-noise).
    pub authors: usize,
    /// Fraction of the universe each vendor stocks.
    pub vendor_coverage: f64,
    /// Fraction of the universe each catalog lists.
    pub catalog_coverage: f64,
    /// Fraction of the universe in the library.
    pub library_coverage: f64,
}

impl Default for BookstoreConfig {
    fn default() -> BookstoreConfig {
        BookstoreConfig {
            vendors: 2,
            catalogs: 2,
            books: 200,
            authors: 40,
            vendor_coverage: 0.5,
            catalog_coverage: 0.6,
            library_coverage: 0.2,
        }
    }
}

/// A generated scenario: schema, instance, and the text of the standing
/// queries (parse with `lap_ir::parse_program` after prepending the
/// schema, or use [`Bookstore::program_text`]).
#[derive(Clone, Debug)]
pub struct Bookstore {
    /// The source schema with access patterns.
    pub schema: Schema,
    /// The generated instance.
    pub db: Database,
    cfg: BookstoreConfig,
}

impl Bookstore {
    /// The standing query: catalogued books purchasable from some vendor
    /// that the library does not hold, with their price — one disjunct per
    /// (vendor, catalog) pair, negation over the library.
    pub fn standing_query_text(&self) -> String {
        let mut rules = String::new();
        for v in 0..self.cfg.vendors {
            for c in 0..self.cfg.catalogs {
                rules.push_str(&format!(
                    "Q(i, a, t, p) :- Catalog{c}(i, a), Vendor{v}(i, a, t), Price(i, p), not Library(i).\n"
                ));
            }
        }
        rules
    }

    /// The full program text (schema declarations + standing query).
    pub fn program_text(&self) -> String {
        format!("{}{}", self.schema, self.standing_query_text())
    }
}

/// Generates a bookstore scenario at the given scale.
pub fn bookstore(cfg: &BookstoreConfig, rng: &mut StdRng) -> Bookstore {
    let mut schema = Schema::new();
    for v in 0..cfg.vendors {
        let name = format!("Vendor{v}");
        schema
            .add_pattern(&name, AccessPattern::parse("ioo").expect("static"))
            .expect("fresh");
        schema
            .add_pattern(&name, AccessPattern::parse("oio").expect("static"))
            .expect("fresh");
    }
    for c in 0..cfg.catalogs {
        schema
            .add_pattern(&format!("Catalog{c}"), AccessPattern::all_output(2))
            .expect("fresh");
    }
    schema
        .add_pattern("Library", AccessPattern::all_output(1))
        .expect("fresh");
    schema
        .add_pattern("Price", AccessPattern::parse("io").expect("static"))
        .expect("fresh");

    let mut db = Database::new();
    let author = |rng: &mut StdRng, book: usize, authors: usize| {
        // Mostly deterministic assignment with some multi-author noise.
        let base = book % authors.max(1);
        if rng.gen_bool(0.1) {
            Value::str(&format!("author{}", (base + 1) % authors.max(1)))
        } else {
            Value::str(&format!("author{base}"))
        }
    };
    for book in 0..cfg.books {
        let isbn = Value::int(book as i64);
        let title = Value::str(&format!("title{book}"));
        for v in 0..cfg.vendors {
            if rng.gen_bool(cfg.vendor_coverage) {
                let a = author(rng, book, cfg.authors);
                db.insert(&format!("Vendor{v}"), vec![isbn, a, title])
                    .expect("arity ok");
            }
        }
        for c in 0..cfg.catalogs {
            if rng.gen_bool(cfg.catalog_coverage) {
                let a = author(rng, book, cfg.authors);
                db.insert(&format!("Catalog{c}"), vec![isbn, a]).expect("arity ok");
            }
        }
        if rng.gen_bool(cfg.library_coverage) {
            db.insert("Library", vec![isbn]).expect("arity ok");
        }
        db.insert("Price", vec![isbn, Value::int(rng.gen_range(5..60))])
            .expect("arity ok");
    }
    Bookstore {
        schema,
        db,
        cfg: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_program_parses_and_is_feasible_shaped() {
        let cfg = BookstoreConfig::default();
        let b = bookstore(&cfg, &mut StdRng::seed_from_u64(1));
        let program = lap_ir::parse_program(&b.program_text()).expect("program parses");
        let q = program.single_query().expect("one query");
        assert_eq!(q.disjuncts.len(), cfg.vendors * cfg.catalogs);
        assert!(q.is_safe());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BookstoreConfig::default();
        let a = bookstore(&cfg, &mut StdRng::seed_from_u64(3));
        let b = bookstore(&cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.db, b.db);
    }

    #[test]
    fn coverage_scales_instance_size() {
        let small = bookstore(
            &BookstoreConfig {
                books: 50,
                vendor_coverage: 0.1,
                ..BookstoreConfig::default()
            },
            &mut StdRng::seed_from_u64(4),
        );
        let large = bookstore(
            &BookstoreConfig {
                books: 50,
                vendor_coverage: 0.9,
                ..BookstoreConfig::default()
            },
            &mut StdRng::seed_from_u64(4),
        );
        assert!(large.db.total_tuples() > small.db.total_tuples());
    }
}
