//! Seeded workload generators for the experiment suite.
//!
//! The paper has no public benchmark; every experiment in this
//! reproduction runs on synthetic workloads generated here, always from an
//! explicit seed so runs are exactly reproducible:
//!
//! * [`gen_schema`] — random relations with random access patterns;
//! * [`gen_query`] — random *safe* CQ/CQ¬/UCQ¬ over a schema;
//! * [`gen_instance`] / [`gen_instance_with_inclusion`] — random database
//!   instances, optionally satisfying the foreign-key inclusion of the
//!   paper's Example 6;
//! * [`families`] — hand-shaped families with known properties:
//!   executable/reversed chains and stars (scaling), the Example-3
//!   "feasible but not orderable" family, the excluded-middle Π₂ᴾ stress
//!   pair, and BIRN-style GAV unfoldings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod families;
pub mod scenario;
mod instance_gen;
mod query_gen;
mod schema_gen;

pub use chaos::{chaos_ladder, overlapped_chaos, slow_source, ChaosScenario, CHAOS_RATES};
pub use instance_gen::{gen_instance, gen_instance_with_inclusion, InstanceConfig};
pub use query_gen::{gen_query, QueryConfig};
pub use scenario::{bookstore, Bookstore, BookstoreConfig};
pub use schema_gen::{gen_schema, SchemaConfig};
