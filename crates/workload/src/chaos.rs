//! Chaos scenario family: seeded fault profiles for resilience testing.
//!
//! A [`ChaosScenario`] pairs a name with a [`ResilienceConfig`] — a
//! deterministic fault profile for the source transport plus the retry
//! policy above it. [`chaos_ladder`] produces the standard family the
//! chaos tests and experiment E19 sweep: a fault-rate ladder from a
//! fault-free control up to heavy outage, all derived from one seed so
//! the whole family replays bit-for-bit.

use lap_engine::{FaultConfig, ResilienceConfig, RetryPolicy};

/// One named chaos configuration.
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// Human-readable label (`fault-rate 0.10`).
    pub name: String,
    /// The fault + retry profile to run under.
    pub resilience: ResilienceConfig,
}

/// Fault rates of the standard ladder, control first.
pub const CHAOS_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// The standard chaos family: one scenario per [`CHAOS_RATES`] entry,
/// each under the standard retry policy with a per-rung seed derived from
/// `seed` (so rungs are decorrelated but the family is reproducible).
pub fn chaos_ladder(seed: u64) -> Vec<ChaosScenario> {
    let base = FaultConfig::with_rate(0.0, seed);
    CHAOS_RATES
        .iter()
        .enumerate()
        .map(|(i, &rate)| ChaosScenario {
            name: format!("fault-rate {rate:.2}"),
            resilience: ResilienceConfig {
                fault: Some(FaultConfig { error_rate: rate, ..base.derive(i as u64) }),
                retry: RetryPolicy::standard(),
            },
        })
        .collect()
}

/// A latency/timeout-flavoured scenario: calls carry jittered virtual
/// latency and fault when they exceed the per-call timeout, in addition
/// to erroring outright at `error_rate`.
pub fn slow_source(error_rate: f64, seed: u64) -> ChaosScenario {
    ChaosScenario {
        name: format!("slow source (rate {error_rate:.2}, timeouts)"),
        resilience: ResilienceConfig {
            fault: Some(FaultConfig {
                error_rate,
                latency_ms: 5,
                latency_jitter_ms: 30,
                timeout_ms: Some(25),
                seed,
            }),
            retry: RetryPolicy::standard(),
        },
    }
}

/// The overlapped-I/O chaos scenario experiment E21 sweeps: every wire
/// call carries a flat 20ms virtual latency (no jitter, no timeout — the
/// latency dominates, so overlap is what wall-clock measures) plus a
/// moderate error rate to exercise retry scheduling under concurrency.
pub fn overlapped_chaos(seed: u64) -> ChaosScenario {
    ChaosScenario {
        name: "overlapped chaos (20ms latency, rate 0.10)".to_owned(),
        resilience: ResilienceConfig {
            fault: Some(FaultConfig {
                error_rate: 0.1,
                latency_ms: 20,
                latency_jitter_ms: 0,
                timeout_ms: None,
                seed,
            }),
            retry: RetryPolicy::standard().with_max_attempts(3),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_starts_fault_free_and_escalates() {
        let ladder = chaos_ladder(17);
        assert_eq!(ladder.len(), CHAOS_RATES.len());
        assert_eq!(ladder[0].resilience.fault.unwrap().error_rate, 0.0);
        for (s, &rate) in ladder.iter().zip(CHAOS_RATES.iter()) {
            assert_eq!(s.resilience.fault.unwrap().error_rate, rate);
            assert!(s.resilience.retry.max_attempts > 1, "ladder retries by default");
        }
    }

    #[test]
    fn ladder_is_reproducible_and_rungs_decorrelate() {
        let a = chaos_ladder(17);
        let b = chaos_ladder(17);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.resilience.fault.unwrap().seed, y.resilience.fault.unwrap().seed);
        }
        let seeds: std::collections::BTreeSet<u64> =
            a.iter().map(|s| s.resilience.fault.unwrap().seed).collect();
        assert_eq!(seeds.len(), a.len(), "per-rung seeds must differ");
    }

    #[test]
    fn overlapped_chaos_is_latency_dominated() {
        let s = overlapped_chaos(21);
        let f = s.resilience.fault.unwrap();
        assert_eq!(f.latency_ms, 20);
        assert_eq!(f.latency_jitter_ms, 0, "flat latency: wall-clock measures overlap only");
        assert!(f.timeout_ms.is_none());
        assert_eq!(s.resilience.retry.max_attempts, 3);
    }

    #[test]
    fn slow_source_configures_latency_and_timeout() {
        let s = slow_source(0.1, 3);
        let f = s.resilience.fault.unwrap();
        assert!(f.timeout_ms.is_some());
        assert!(f.latency_ms + f.latency_jitter_ms > f.timeout_ms.unwrap());
    }
}
