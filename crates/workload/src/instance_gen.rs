//! Seeded random database-instance generation.

use lap_engine::{Database, Value};
use lap_ir::{Schema, Symbol};
use lap_prng::StdRng;

/// Parameters for random instance generation.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Size of the value domain (`1 … n` as integers).
    pub domain_size: usize,
    /// Tuples drawn per relation (duplicates collapse under set semantics).
    pub tuples_per_relation: usize,
}

impl Default for InstanceConfig {
    fn default() -> InstanceConfig {
        InstanceConfig {
            domain_size: 10,
            tuples_per_relation: 15,
        }
    }
}

/// Generates a random instance over every relation of `schema`, with values
/// drawn uniformly from `1..=domain_size`.
pub fn gen_instance(schema: &Schema, cfg: &InstanceConfig, rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    for decl in schema.iter() {
        for _ in 0..cfg.tuples_per_relation {
            let tuple: Vec<Value> = (0..decl.predicate.arity)
                .map(|_| Value::int(rng.gen_range(1..=cfg.domain_size as i64)))
                .collect();
            db.insert(decl.predicate.name.as_str(), tuple)
                .expect("schema-consistent arity");
        }
    }
    db
}

/// Generates an instance satisfying the foreign-key-style inclusion of the
/// paper's Example 6: every value in column `from_col` of `from` also
/// appears in column `to_col` of `to`. Used in E9 to show that semantic
/// constraints make infeasible plans runtime-complete.
#[allow(clippy::too_many_arguments)]
pub fn gen_instance_with_inclusion(
    schema: &Schema,
    cfg: &InstanceConfig,
    from: &str,
    from_col: usize,
    to: &str,
    to_col: usize,
    rng: &mut StdRng,
) -> Database {
    let mut db = gen_instance(schema, cfg, rng);
    let from_sym = Symbol::intern(from);
    let to_sym = Symbol::intern(to);
    let to_arity = schema
        .relation(to_sym)
        .map(|d| d.predicate.arity)
        .expect("target relation declared");
    let missing: Vec<Value> = {
        let from_rel = db.relation(from_sym).expect("source relation generated");
        let have: std::collections::BTreeSet<Value> = db
            .relation(to_sym)
            .map(|r| r.iter().map(|t| t[to_col]).collect())
            .unwrap_or_default();
        from_rel
            .iter()
            .map(|t| t[from_col])
            .filter(|v| !have.contains(v))
            .collect()
    };
    for v in missing {
        let mut tuple: Vec<Value> = (0..to_arity)
            .map(|_| Value::int(rng.gen_range(1..=cfg.domain_size as i64)))
            .collect();
        tuple[to_col] = v;
        db.insert(to, tuple).expect("consistent arity");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::{gen_schema, SchemaConfig};

    #[test]
    fn covers_every_relation() {
        let schema = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(1));
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut StdRng::seed_from_u64(2));
        for decl in schema.iter() {
            let rel = db.relation(decl.predicate.name).expect("relation populated");
            assert!(!rel.is_empty());
            assert_eq!(rel.arity(), decl.predicate.arity);
        }
    }

    #[test]
    fn inclusion_constraint_holds() {
        let schema = lap_ir::Schema::from_patterns(&[("R", "oo"), ("S", "o")]).unwrap();
        let cfg = InstanceConfig {
            domain_size: 6,
            tuples_per_relation: 10,
        };
        let db = gen_instance_with_inclusion(
            &schema,
            &cfg,
            "R",
            1,
            "S",
            0,
            &mut StdRng::seed_from_u64(3),
        );
        let s_vals: std::collections::BTreeSet<Value> = db
            .relation(Symbol::intern("S"))
            .unwrap()
            .iter()
            .map(|t| t[0])
            .collect();
        for t in db.relation(Symbol::intern("R")).unwrap().iter() {
            assert!(s_vals.contains(&t[1]), "R.1 value {} missing from S.0", t[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let schema = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(1));
        let cfg = InstanceConfig::default();
        let a = gen_instance(&schema, &cfg, &mut StdRng::seed_from_u64(9));
        let b = gen_instance(&schema, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
