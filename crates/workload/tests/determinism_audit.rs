//! Deterministic-seeding audit for every workload generator.
//!
//! The experiment suite's reproducibility contract: a generator given a
//! fixed seed must produce the identical artifact on every run and every
//! platform, and must draw randomness *only* through `lap_prng::StdRng` —
//! never from time, addresses, or hash-iteration order. Each assertion
//! carries the seed that produced it, so a failure report is directly
//! replayable.

use lap_prng::StdRng;
use lap_workload::{
    bookstore, gen_instance, gen_query, gen_schema, BookstoreConfig, InstanceConfig, QueryConfig,
    SchemaConfig,
};

const SEEDS: &[u64] = &[0, 1, 2, 7, 42, 1234, 0xDEAD_BEEF, u64::MAX];

#[test]
fn schema_generation_replays_bit_for_bit() {
    for &seed in SEEDS {
        let a = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(seed));
        let b = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(seed));
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "schema generation diverged for seed {seed}"
        );
    }
}

#[test]
fn query_generation_replays_bit_for_bit() {
    for &seed in SEEDS {
        let schema = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(seed));
        let a = gen_query(
            &schema,
            &QueryConfig::default(),
            &mut StdRng::seed_from_u64(seed),
        );
        let b = gen_query(
            &schema,
            &QueryConfig::default(),
            &mut StdRng::seed_from_u64(seed),
        );
        assert_eq!(a, b, "query generation diverged for seed {seed}");
    }
}

#[test]
fn instance_generation_replays_bit_for_bit() {
    for &seed in SEEDS {
        let schema = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(seed));
        let a = gen_instance(
            &schema,
            &InstanceConfig::default(),
            &mut StdRng::seed_from_u64(seed),
        );
        let b = gen_instance(
            &schema,
            &InstanceConfig::default(),
            &mut StdRng::seed_from_u64(seed),
        );
        assert_eq!(
            a.total_tuples(),
            b.total_tuples(),
            "instance size diverged for seed {seed}"
        );
        for (name, rel) in a.iter() {
            let other = b.relation(name).unwrap_or_else(|| {
                panic!("relation {name} missing on replay for seed {seed}")
            });
            assert_eq!(
                rel.iter().collect::<Vec<_>>(),
                other.iter().collect::<Vec<_>>(),
                "relation {name} diverged for seed {seed}"
            );
        }
    }
}

#[test]
fn bookstore_scenario_replays_bit_for_bit() {
    for &seed in SEEDS {
        let cfg = BookstoreConfig {
            books: 50,
            ..BookstoreConfig::default()
        };
        let a = bookstore(&cfg, &mut StdRng::seed_from_u64(seed));
        let b = bookstore(&cfg, &mut StdRng::seed_from_u64(seed));
        assert_eq!(
            a.program_text(),
            b.program_text(),
            "bookstore program text diverged for seed {seed}"
        );
        assert_eq!(
            a.db.total_tuples(),
            b.db.total_tuples(),
            "bookstore instance diverged for seed {seed}"
        );
    }
}

#[test]
fn distinct_seeds_explore_distinct_artifacts() {
    // Not a soundness property, but a sanity check that seeding actually
    // steers the generators (a constant generator would pass every replay
    // test above).
    let schema = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(0));
    let queries: std::collections::HashSet<String> = (0..20)
        .map(|seed| {
            gen_query(
                &schema,
                &QueryConfig::default(),
                &mut StdRng::seed_from_u64(seed),
            )
            .to_string()
        })
        .collect();
    assert!(
        queries.len() >= 15,
        "20 seeds produced only {} distinct queries",
        queries.len()
    );
}

#[test]
fn generator_streams_are_pinned() {
    // Pin one concrete artifact per generator. If an intentional change to
    // a generator or to lap-prng re-shuffles the streams, this fails
    // loudly — update the expected strings *deliberately*, knowing every
    // recorded experiment seed changes meaning.
    let schema = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(7));
    let q = gen_query(
        &schema,
        &QueryConfig::default(),
        &mut StdRng::seed_from_u64(7),
    );
    let expected_q = q.to_string();
    // Replay through an independently-seeded generator pair.
    let schema2 = gen_schema(&SchemaConfig::default(), &mut StdRng::seed_from_u64(7));
    let q2 = gen_query(
        &schema2,
        &QueryConfig::default(),
        &mut StdRng::seed_from_u64(7),
    );
    assert_eq!(q2.to_string(), expected_q, "seed 7 stream drifted");
    // And the raw PRNG layer: the first draw for seed 7 is a fixed word.
    let mut r = StdRng::seed_from_u64(7);
    let w = r.next_u64();
    let mut r2 = StdRng::seed_from_u64(7);
    assert_eq!(w, r2.next_u64(), "PRNG stream not replayable for seed 7");
}
