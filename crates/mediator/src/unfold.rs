//! View unfolding: global-schema UCQ¬ → source-schema UCQ¬.
//!
//! This is the step the paper describes for the BIRN prototype: "takes a
//! query against a global-as-view definition and unfolds it into a UCQ¬
//! plan" (Section 6). Each positive global literal is replaced by the body
//! of one of its views (one unfolded disjunct per combination of choices);
//! negative global literals are only expressible when the view is atomic.

use crate::views::GavView;
use lap_ir::{
    ConjunctiveQuery, FreshVarGen, Literal, Predicate, Substitution, Term, UnionQuery, Var,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors during unfolding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnfoldError {
    /// A negated global literal whose relation has several views or a
    /// non-atomic view: `¬G` would need `¬∃ȳ body`, which is not UCQ¬.
    NegatedComplexView(String),
    /// The cartesian product of view choices exceeded the cap.
    TooManyDisjuncts {
        /// The configured cap.
        cap: usize,
    },
    /// A view head arity differs from the literal using it (programming
    /// error in the view set).
    ArityMismatch(String),
    /// The view definitions are mutually recursive; unfolding would not
    /// terminate (and feasibility over recursive Datalog is undecidable).
    RecursiveViews(String),
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::NegatedComplexView(l) => write!(
                f,
                "cannot unfold negated literal {l}: its relation needs a single atomic view"
            ),
            UnfoldError::TooManyDisjuncts { cap } => {
                write!(f, "unfolding exceeded the cap of {cap} disjuncts")
            }
            UnfoldError::ArityMismatch(l) => write!(f, "arity mismatch unfolding {l}"),
            UnfoldError::RecursiveViews(p) => {
                write!(f, "view definitions are recursive through {p}")
            }
        }
    }
}

impl std::error::Error for UnfoldError {}

/// Multi-level unfolding: views may be defined over other global relations
/// (a non-recursive Datalog program). Unfolds repeatedly until no view
/// predicate remains; cyclic view definitions are rejected (feasibility is
/// undecidable for recursive Datalog — the paper cites \[LC01\]).
pub fn unfold_deep(
    q: &UnionQuery,
    views: &[GavView],
    max_disjuncts: usize,
) -> Result<UnionQuery, UnfoldError> {
    // Cycle check on the view dependency graph.
    let defined: std::collections::HashSet<Predicate> =
        views.iter().map(|v| v.defines()).collect();
    let mut edges: HashMap<Predicate, Vec<Predicate>> = HashMap::new();
    for v in views {
        let deps: Vec<Predicate> = v
            .body
            .iter()
            .map(|l| l.predicate())
            .filter(|p| defined.contains(p))
            .collect();
        edges.entry(v.defines()).or_default().extend(deps);
    }
    // DFS cycle detection.
    fn dfs(
        node: Predicate,
        edges: &HashMap<Predicate, Vec<Predicate>>,
        visiting: &mut std::collections::HashSet<Predicate>,
        done: &mut std::collections::HashSet<Predicate>,
    ) -> bool {
        if done.contains(&node) {
            return true;
        }
        if !visiting.insert(node) {
            return false; // cycle
        }
        for &next in edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]) {
            if !dfs(next, edges, visiting, done) {
                return false;
            }
        }
        visiting.remove(&node);
        done.insert(node);
        true
    }
    let mut visiting = std::collections::HashSet::new();
    let mut done = std::collections::HashSet::new();
    for &p in &defined {
        if !dfs(p, &edges, &mut visiting, &mut done) {
            return Err(UnfoldError::RecursiveViews(p.to_string()));
        }
    }
    // Acyclic: iterate single-level unfolding to fixpoint (bounded by the
    // dependency depth).
    let mut current = q.clone();
    loop {
        let uses_view = current
            .disjuncts
            .iter()
            .flat_map(|d| d.body.iter())
            .any(|l| defined.contains(&l.predicate()));
        if !uses_view {
            return Ok(current);
        }
        current = unfold(&current, views, max_disjuncts)?;
    }
}

/// Unfolds a global-schema query through the views, producing a
/// source-schema UCQ¬ with at most `max_disjuncts` disjuncts. Literals
/// over relations with no view pass through unchanged (they are already
/// source relations).
pub fn unfold(
    q: &UnionQuery,
    views: &[GavView],
    max_disjuncts: usize,
) -> Result<UnionQuery, UnfoldError> {
    let mut by_pred: HashMap<Predicate, Vec<&GavView>> = HashMap::new();
    for v in views {
        by_pred.entry(v.defines()).or_default().push(v);
    }
    let mut out: Vec<ConjunctiveQuery> = Vec::new();
    for d in &q.disjuncts {
        out.extend(unfold_disjunct(d, &by_pred, max_disjuncts)?);
        if out.len() > max_disjuncts {
            return Err(UnfoldError::TooManyDisjuncts { cap: max_disjuncts });
        }
    }
    if out.is_empty() {
        return Ok(UnionQuery::empty(q.head.clone()));
    }
    Ok(UnionQuery::new(out).expect("heads preserved by unfolding"))
}

fn unfold_disjunct(
    d: &ConjunctiveQuery,
    by_pred: &HashMap<Predicate, Vec<&GavView>>,
    cap: usize,
) -> Result<Vec<ConjunctiveQuery>, UnfoldError> {
    let mut fresh = FreshVarGen::new();
    // Variables that must not be captured by view existentials: everything
    // in the original disjunct. Per-partial introduced variables are
    // guaranteed distinct because the fresh generator never repeats.
    let avoid: HashSet<Var> = d.vars().into_iter().collect();
    let mut partials: Vec<Vec<Literal>> = vec![Vec::new()];
    for lit in &d.body {
        match by_pred.get(&lit.predicate()) {
            None => {
                for p in &mut partials {
                    p.push(lit.clone());
                }
            }
            Some(views) if lit.positive => {
                let mut next: Vec<Vec<Literal>> =
                    Vec::with_capacity(partials.len() * views.len());
                for view in views {
                    let body = instantiate(view, lit, &avoid, &mut fresh)?;
                    for p in &partials {
                        let mut ext = p.clone();
                        ext.extend(body.iter().cloned());
                        next.push(ext);
                        if next.len() > cap {
                            return Err(UnfoldError::TooManyDisjuncts { cap });
                        }
                    }
                }
                partials = next;
            }
            Some(views) => {
                // Negative literal: only a single atomic view is sound.
                let [view] = views.as_slice() else {
                    return Err(UnfoldError::NegatedComplexView(lit.to_string()));
                };
                if !view.is_atomic() {
                    return Err(UnfoldError::NegatedComplexView(lit.to_string()));
                }
                let body = instantiate(view, lit, &avoid, &mut fresh)?;
                debug_assert_eq!(body.len(), 1);
                let negated = Literal::neg(body[0].atom.clone());
                for p in &mut partials {
                    p.push(negated.clone());
                }
            }
        }
    }
    Ok(partials
        .into_iter()
        .map(|body| ConjunctiveQuery::new(d.head.clone(), body))
        .collect())
}

/// Instantiates a view for a literal use: head variables map to the
/// literal's argument terms; existential variables are renamed fresh.
fn instantiate(
    view: &GavView,
    lit: &Literal,
    avoid: &HashSet<Var>,
    fresh: &mut FreshVarGen,
) -> Result<Vec<Literal>, UnfoldError> {
    if view.head.args.len() != lit.atom.args.len() {
        return Err(UnfoldError::ArityMismatch(lit.to_string()));
    }
    let mut subst = Substitution::new();
    for (hv, &arg) in view.head_vars().into_iter().zip(lit.atom.args.iter()) {
        subst.insert(hv, arg);
    }
    let head_vars: HashSet<Var> = view.head_vars().into_iter().collect();
    let view_vars: HashSet<Var> = view.as_query().vars().into_iter().collect();
    for v in view_vars {
        if !head_vars.contains(&v) {
            subst.insert(v, Term::Var(fresh.fresh_avoiding(avoid, &HashSet::new())));
        }
    }
    Ok(view.body.iter().map(|l| subst.apply_literal(l)).collect())
}

#[cfg(test)]
mod deep_tests {
    use super::*;
    use lap_ir::{parse_cq, parse_query};

    fn views(rules: &[&str]) -> Vec<GavView> {
        rules
            .iter()
            .map(|r| GavView::from_rule(&parse_cq(r).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn two_level_views_unfold_to_sources() {
        let vs = views(&[
            "Avail(i, a) :- Book(i, a, t), not Lib(i).",
            "Book(i, a, t) :- Vendor(i, a, t).",
            "Lib(i) :- Shelf(i).",
        ]);
        let q = parse_query("Q(a) :- Avail(i, a).").unwrap();
        let u = unfold_deep(&q, &vs, 1000).unwrap();
        assert_eq!(u.disjuncts.len(), 1);
        let body: Vec<String> = u.disjuncts[0].body.iter().map(|l| l.to_string()).collect();
        assert_eq!(body.len(), 2);
        assert!(body[0].starts_with("Vendor("), "{body:?}");
        assert!(body[1].starts_with("not Shelf("), "{body:?}");
    }

    #[test]
    fn three_level_chain() {
        let vs = views(&[
            "A(x) :- B(x, y).",
            "B(x, y) :- C(x, y).",
            "C(x, y) :- Src(x, y).",
        ]);
        let q = parse_query("Q(x) :- A(x).").unwrap();
        let u = unfold_deep(&q, &vs, 1000).unwrap();
        assert_eq!(u.disjuncts[0].body.len(), 1);
        assert_eq!(u.disjuncts[0].body[0].atom.predicate.name.as_str(), "Src");
    }

    #[test]
    fn recursive_views_are_rejected() {
        let vs = views(&[
            "A(x) :- B(x), Src(x).",
            "B(x) :- A(x), Src2(x).",
        ]);
        let q = parse_query("Q(x) :- A(x).").unwrap();
        assert!(matches!(
            unfold_deep(&q, &vs, 1000),
            Err(UnfoldError::RecursiveViews(_))
        ));
        // Self-recursion too.
        let vs2 = views(&["A(x) :- A(x), Src(x)."]);
        assert!(unfold_deep(&q, &vs2, 1000).is_err());
    }

    #[test]
    fn multi_view_levels_multiply() {
        let vs = views(&[
            "Top(x) :- Mid(x).",
            "Mid(x) :- S1(x).",
            "Mid(x) :- S2(x).",
        ]);
        let q = parse_query("Q(x) :- Top(x), Top(x).").unwrap();
        let u = unfold_deep(&q, &vs, 1000).unwrap();
        // Each Top → Mid; each Mid → {S1, S2}: 2 literals × 2 choices = 4.
        assert_eq!(u.disjuncts.len(), 4);
    }

    #[test]
    fn source_only_query_is_untouched() {
        let vs = views(&["A(x) :- Src(x)."]);
        let q = parse_query("Q(x) :- Src(x), Other(x).").unwrap();
        let u = unfold_deep(&q, &vs, 1000).unwrap();
        assert_eq!(u, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::{parse_cq, parse_query};

    fn views(rules: &[&str]) -> Vec<GavView> {
        rules
            .iter()
            .map(|r| GavView::from_rule(&parse_cq(r).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn single_view_substitution() {
        let vs = views(&["Book(i, a, t) :- Amazon(i, a, t, p)."]);
        let q = parse_query("Q(a) :- Book(i, a, t).").unwrap();
        let u = unfold(&q, &vs, 100).unwrap();
        assert_eq!(u.disjuncts.len(), 1);
        let body = &u.disjuncts[0].body;
        assert_eq!(body.len(), 1);
        assert_eq!(body[0].atom.predicate.name.as_str(), "Amazon");
        // The price column is a fresh existential, not `p` captured.
        assert!(body[0].atom.args[3].is_var());
    }

    #[test]
    fn multiple_views_multiply_disjuncts() {
        let vs = views(&[
            "Book(i, a, t) :- Amazon(i, a, t, p).",
            "Book(i, a, t) :- Bn(i, a, t).",
        ]);
        let q = parse_query("Q(a) :- Book(i, a, t), Book(i2, a, t2).").unwrap();
        let u = unfold(&q, &vs, 100).unwrap();
        assert_eq!(u.disjuncts.len(), 4); // 2 × 2 view choices
    }

    #[test]
    fn union_query_unfolds_per_disjunct() {
        let vs = views(&[
            "G(x) :- S1(x).",
            "G(x) :- S2(x).",
        ]);
        let q = parse_query("Q(x) :- G(x).\nQ(x) :- T(x).").unwrap();
        let u = unfold(&q, &vs, 100).unwrap();
        assert_eq!(u.disjuncts.len(), 3); // two unfoldings + pass-through T
    }

    #[test]
    fn fresh_vars_do_not_collide_across_uses() {
        let vs = views(&["G(x) :- S(x, y)."]);
        let q = parse_query("Q(a, b) :- G(a), G(b).").unwrap();
        let u = unfold(&q, &vs, 100).unwrap();
        let body = &u.disjuncts[0].body;
        assert_eq!(body.len(), 2);
        // The two existential second columns are distinct fresh vars.
        assert_ne!(body[0].atom.args[1], body[1].atom.args[1]);
    }

    #[test]
    fn negated_atomic_view_unfolds() {
        let vs = views(&["Lib(i) :- Shelf(i)."]);
        let q = parse_query("Q(i) :- Cat(i), not Lib(i).").unwrap();
        let u = unfold(&q, &vs, 100).unwrap();
        assert_eq!(u.disjuncts[0].to_string(), "Q(i) :- Cat(i), not Shelf(i).");
    }

    #[test]
    fn negated_complex_view_is_rejected() {
        let vs = views(&["Lib(i) :- Shelf(i, s)."]); // existential s
        let q = parse_query("Q(i) :- Cat(i), not Lib(i).").unwrap();
        assert!(matches!(
            unfold(&q, &vs, 100),
            Err(UnfoldError::NegatedComplexView(_))
        ));
        // …and so is a negated multi-view relation.
        let vs2 = views(&["Lib(i) :- A(i).", "Lib(i) :- B(i)."]);
        assert!(unfold(&q, &vs2, 100).is_err());
    }

    #[test]
    fn disjunct_cap_is_enforced() {
        let vs = views(&[
            "G(x) :- S1(x).",
            "G(x) :- S2(x).",
        ]);
        let q = parse_query("Q(x) :- G(x), G(x), G(x), G(x).").unwrap();
        assert!(matches!(
            unfold(&q, &vs, 8),
            Err(UnfoldError::TooManyDisjuncts { cap: 8 })
        ));
    }

    #[test]
    fn constants_flow_into_view_bodies() {
        let vs = views(&["Book(i, a, t) :- Amazon(i, a, t, p)."]);
        let q = parse_query(r#"Q(t) :- Book(i, "adams", t)."#).unwrap();
        let u = unfold(&q, &vs, 100).unwrap();
        assert_eq!(u.disjuncts[0].body[0].atom.args[1], Term::str("adams"));
    }
}
