//! Global-as-view definitions.

use lap_ir::{Atom, ConjunctiveQuery, Literal, Predicate, Var};
use std::collections::HashSet;
use std::fmt;

/// One GAV view: a global relation defined by a CQ¬ over source relations,
/// e.g. `Book(i, a, t) :- Amazon(i, a, t, price).` A global relation may
/// have several views (their union defines it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GavView {
    /// The global-relation head; its arguments must be distinct variables.
    pub head: Atom,
    /// The source-level body.
    pub body: Vec<Literal>,
}

/// Errors constructing a view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// A head argument is a constant or a repeated variable.
    HeadNotDistinctVars(String),
    /// A head variable does not occur in a positive body literal.
    Unsafe(String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::HeadNotDistinctVars(h) => {
                write!(f, "view head {h} must consist of distinct variables")
            }
            ViewError::Unsafe(h) => write!(f, "view {h} is unsafe"),
        }
    }
}

impl std::error::Error for ViewError {}

impl GavView {
    /// Builds a view, validating the standard GAV conditions: the head is
    /// a tuple of distinct variables, each occurring in a positive body
    /// literal (safety).
    pub fn new(head: Atom, body: Vec<Literal>) -> Result<GavView, ViewError> {
        let mut seen = HashSet::new();
        for arg in &head.args {
            match arg.as_var() {
                Some(v) if seen.insert(v) => {}
                _ => return Err(ViewError::HeadNotDistinctVars(head.to_string())),
            }
        }
        let view = GavView { head, body };
        if !view.as_query().is_safe() {
            return Err(ViewError::Unsafe(view.head.to_string()));
        }
        Ok(view)
    }

    /// Builds a view from a parsed rule.
    pub fn from_rule(rule: &ConjunctiveQuery) -> Result<GavView, ViewError> {
        GavView::new(rule.head.clone(), rule.body.clone())
    }

    /// The global predicate this view defines.
    pub fn defines(&self) -> Predicate {
        self.head.predicate
    }

    /// The head variables, in order.
    pub fn head_vars(&self) -> Vec<Var> {
        self.head.args.iter().filter_map(|t| t.as_var()).collect()
    }

    /// The view as a rule (for display / containment checks).
    pub fn as_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(self.head.clone(), self.body.clone())
    }

    /// True iff the view body is a single positive atom with no
    /// existential variables — the shape under which a *negated* global
    /// literal can still be unfolded into a literal.
    pub fn is_atomic(&self) -> bool {
        if self.body.len() != 1 || !self.body[0].positive {
            return false;
        }
        let head_vars: HashSet<Var> = self.head_vars().into_iter().collect();
        self.body[0].vars().all(|v| head_vars.contains(&v))
    }
}

impl fmt::Display for GavView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_cq;

    #[test]
    fn valid_view() {
        let rule = parse_cq("Book(i, a, t) :- Amazon(i, a, t, p).").unwrap();
        let view = GavView::from_rule(&rule).unwrap();
        assert_eq!(view.defines().name.as_str(), "Book");
        assert!(!view.is_atomic()); // p is existential
    }

    #[test]
    fn atomic_view_detection() {
        let rule = parse_cq("Lib(i) :- Shelf(i).").unwrap();
        assert!(GavView::from_rule(&rule).unwrap().is_atomic());
        let neg = parse_cq("Lib(i) :- Shelf(i), not Lost(i).").unwrap();
        assert!(!GavView::from_rule(&neg).unwrap().is_atomic());
    }

    #[test]
    fn repeated_head_vars_rejected() {
        let rule = parse_cq("G(x, x) :- S(x).").unwrap();
        assert!(matches!(
            GavView::from_rule(&rule),
            Err(ViewError::HeadNotDistinctVars(_))
        ));
    }

    #[test]
    fn constant_head_rejected() {
        let rule = parse_cq("G(x, 1) :- S(x).").unwrap();
        assert!(GavView::from_rule(&rule).is_err());
    }

    #[test]
    fn unsafe_view_rejected() {
        let rule = parse_cq("G(x, y) :- S(x).").unwrap();
        assert!(matches!(GavView::from_rule(&rule), Err(ViewError::Unsafe(_))));
    }
}
