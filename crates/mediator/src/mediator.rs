//! The mediator facade: views + source schema + constraints, with the full
//! compile-time and runtime pipeline behind one API.

use crate::unfold::{unfold_deep, UnfoldError};
use crate::views::{GavView, ViewError};
use lap_constraints::{prune_unsatisfiable, ConstraintSet};
use lap_core::{
    answer_star_obs, answer_star_resilient, feasible_detailed_obs, lower_pair, AnswerOutcome,
    AnswerReport, FeasibilityReport,
    PhysicalPair,
};
use lap_core::{ContainmentEngine, EngineConfig, EngineStats};
use lap_engine::{Database, EngineError, ResilienceConfig};
use lap_ir::{parse_program, IrError, Schema, UnionQuery};
use lap_obs::journal::kind as journal_kind;
use lap_obs::{Json, Recorder};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the mediator pipeline.
#[derive(Debug)]
pub enum MediatorError {
    /// An invalid view definition.
    View(ViewError),
    /// Unfolding failed (negated complex view, disjunct cap).
    Unfold(UnfoldError),
    /// The view program did not parse.
    Parse(IrError),
    /// Runtime evaluation failed.
    Engine(EngineError),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::View(e) => write!(f, "view error: {e}"),
            MediatorError::Unfold(e) => write!(f, "unfold error: {e}"),
            MediatorError::Parse(e) => write!(f, "parse error: {e}"),
            MediatorError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<ViewError> for MediatorError {
    fn from(e: ViewError) -> Self {
        MediatorError::View(e)
    }
}
impl From<UnfoldError> for MediatorError {
    fn from(e: UnfoldError) -> Self {
        MediatorError::Unfold(e)
    }
}
impl From<IrError> for MediatorError {
    fn from(e: IrError) -> Self {
        MediatorError::Parse(e)
    }
}
impl From<EngineError> for MediatorError {
    fn from(e: EngineError) -> Self {
        MediatorError::Engine(e)
    }
}

/// The compile-time artifact for one global query.
#[derive(Clone, Debug)]
pub struct MediatorPlan {
    /// The raw unfolding over the source schema.
    pub unfolded: UnionQuery,
    /// After the semantic optimizer (Σ-unsatisfiable disjuncts removed).
    pub pruned: UnionQuery,
    /// Feasibility analysis of the pruned plan (includes PLAN\* output).
    pub feasibility: FeasibilityReport,
    /// The PLAN\* output lowered to physical operator trees over the
    /// source schema — what the runtime actually executes.
    pub physical: PhysicalPair,
}

/// A global-as-view mediator over limited-access sources — the shape of
/// the paper's BIRN prototype (Section 6): queries arrive against global
/// relations, get unfolded into UCQ¬ over the sources, semantically
/// optimized with the integrity constraints, analyzed with FEASIBLE, and
/// answered with ANSWER\*.
#[derive(Clone, Debug, Default)]
pub struct Mediator {
    views: Vec<GavView>,
    source_schema: Schema,
    constraints: ConstraintSet,
    max_disjuncts: usize,
    engine: Arc<ContainmentEngine>,
    recorder: Recorder,
}

impl Mediator {
    /// A mediator over the given source schema.
    pub fn new(source_schema: Schema) -> Mediator {
        Mediator {
            views: Vec::new(),
            source_schema,
            constraints: ConstraintSet::new(),
            max_disjuncts: 10_000,
            engine: Arc::new(ContainmentEngine::default()),
            recorder: Recorder::disabled(),
        }
    }

    /// Parses a mediator definition: access-pattern declarations give the
    /// source schema; every rule defines a view of a global relation.
    ///
    /// ```
    /// use lap_mediator::Mediator;
    /// let m = Mediator::from_program(
    ///     "Amazon^oooo. Bn^ooo.\n\
    ///      Book(i, a, t) :- Amazon(i, a, t, p).\n\
    ///      Book(i, a, t) :- Bn(i, a, t).",
    /// )
    /// .unwrap();
    /// assert_eq!(m.views().len(), 2);
    /// ```
    pub fn from_program(text: &str) -> Result<Mediator, MediatorError> {
        let program = parse_program(text)?;
        let mut mediator = Mediator::new(program.schema.clone());
        for q in &program.queries {
            for rule in &q.disjuncts {
                mediator.add_view(GavView::from_rule(rule)?);
            }
        }
        Ok(mediator)
    }

    /// Adds one view.
    pub fn add_view(&mut self, view: GavView) {
        self.views.push(view);
    }

    /// Installs the integrity constraints used by the semantic optimizer.
    pub fn with_constraints(mut self, cs: ConstraintSet) -> Mediator {
        self.constraints = cs;
        self
    }

    /// Caps the number of unfolded disjuncts (default 10 000).
    pub fn with_max_disjuncts(mut self, cap: usize) -> Mediator {
        self.max_disjuncts = cap;
        self
    }

    /// Installs a containment engine for the feasibility analyses. One
    /// engine is shared by every [`Mediator::plan`] call (and by clones of
    /// this mediator), so a caching configuration reuses verdicts across
    /// the query workload.
    pub fn with_engine(mut self, cfg: EngineConfig) -> Mediator {
        self.engine = Arc::new(ContainmentEngine::with_recorder(cfg, &self.recorder));
        self
    }

    /// Attaches a [`Recorder`]: every pipeline phase (`unfold`, `prune`,
    /// `feasible`, `answer*`, …) runs under a span and the containment
    /// engine and source registries report their counters to it. The
    /// current engine is re-created against the recorder, so call this
    /// *before* [`Mediator::with_engine`] or let it re-wire the default.
    pub fn with_recorder(mut self, recorder: &Recorder) -> Mediator {
        self.recorder = recorder.clone();
        self.engine = Arc::new(ContainmentEngine::with_recorder(
            self.engine.config(),
            recorder,
        ));
        self
    }

    /// The recorder this mediator reports to (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The containment engine's lifetime counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The installed views.
    pub fn views(&self) -> &[GavView] {
        &self.views
    }

    /// The source schema.
    pub fn source_schema(&self) -> &Schema {
        &self.source_schema
    }

    /// Compile-time pipeline: unfold (multi-level, rejecting recursive
    /// view sets) → prune under Σ → FEASIBLE/PLAN\*.
    pub fn plan(&self, q: &UnionQuery) -> Result<MediatorPlan, MediatorError> {
        let unfolded = {
            let _span = self.recorder.span("unfold");
            unfold_deep(q, &self.views, self.max_disjuncts)?
        };
        self.journal_phase(
            journal_kind::MEDIATOR_UNFOLD,
            q.disjuncts.len(),
            unfolded.disjuncts.len(),
        );
        let pruned = {
            let _span = self.recorder.span("prune");
            prune_unsatisfiable(&unfolded, &self.constraints)
        };
        self.journal_phase(
            journal_kind::MEDIATOR_PRUNE,
            unfolded.disjuncts.len(),
            pruned.disjuncts.len(),
        );
        let feasibility =
            feasible_detailed_obs(&pruned, &self.source_schema, &self.engine, &self.recorder);
        let physical = lower_pair(&feasibility.plans, &self.source_schema);
        Ok(MediatorPlan {
            unfolded,
            pruned,
            feasibility,
            physical,
        })
    }

    /// Full pipeline including runtime answering over a source instance.
    pub fn answer(
        &self,
        q: &UnionQuery,
        db: &Database,
    ) -> Result<(MediatorPlan, AnswerReport), MediatorError> {
        let plan = self.plan(q)?;
        let report = answer_star_obs(&plan.pruned, &self.source_schema, db, &self.recorder)?;
        Ok((plan, report))
    }

    /// [`Mediator::answer`] in degradation mode: runtime answering runs
    /// under `resilience` (fault injection + retry policy), dropping and
    /// reporting disjuncts whose sources stay unavailable instead of
    /// failing the whole query. Compile-time planning is unaffected.
    pub fn answer_resilient(
        &self,
        q: &UnionQuery,
        db: &Database,
        resilience: &ResilienceConfig,
    ) -> Result<(MediatorPlan, AnswerOutcome), MediatorError> {
        let plan = self.plan(q)?;
        let outcome = answer_star_resilient(
            &plan.pruned,
            &self.source_schema,
            db,
            &self.recorder,
            resilience,
        )?;
        Ok((plan, outcome))
    }

    /// Records a compile-time phase (unfold, prune) in the flight
    /// recorder's journal, when one is attached.
    fn journal_phase(&self, kind: &str, disjuncts_in: usize, disjuncts_out: usize) {
        if let Some(journal) = self.recorder.journal() {
            journal.emit(
                0,
                0,
                kind,
                Json::obj([
                    ("disjuncts_in", Json::num(disjuncts_in as u64)),
                    ("disjuncts_out", Json::num(disjuncts_out as u64)),
                ]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_constraints::InclusionDep;
    use lap_core::DecisionPath;
    use lap_ir::{parse_query, Predicate};

    const BOOK_MEDIATOR: &str = "Amazon^oooo. Amazon^iooo. Bn^ooo. Shelf^o. Cat^oo.\n\
         Book(i, a, t) :- Amazon(i, a, t, p).\n\
         Book(i, a, t) :- Bn(i, a, t).\n\
         Lib(i) :- Shelf(i).";

    #[test]
    fn end_to_end_feasible_query() {
        let m = Mediator::from_program(BOOK_MEDIATOR).unwrap();
        let q = parse_query("Q(i, a, t) :- Book(i, a, t), Cat(i, a), not Lib(i).").unwrap();
        let plan = m.plan(&q).unwrap();
        assert_eq!(plan.unfolded.disjuncts.len(), 2);
        assert!(plan.feasibility.feasible);
        // The compiled artifact carries the lowered operator trees, one
        // pipeline per surviving disjunct.
        assert_eq!(
            plan.physical.over.parts.len(),
            plan.feasibility.plans.over.parts.len()
        );
        let db = Database::from_facts(
            r#"
            Amazon(1, "adams", "hhgttg", 12). Bn(2, "adams", "dirk gently").
            Cat(1, "adams"). Cat(2, "adams").
            Shelf(1).
            "#,
        )
        .unwrap();
        let (_, report) = m.answer(&q, &db).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.under.len(), 1); // book 2 (book 1 is on the shelf)

        // The resilient path agrees bit-for-bit when no faults fire, and
        // degrades (instead of failing) under a total outage.
        let calm = lap_engine::ResilienceConfig::chaos(0.0, 5);
        let (_, outcome) = m.answer_resilient(&q, &db, &calm).unwrap();
        assert_eq!(outcome.report.under, report.under);
        assert!(!outcome.degradation.is_degraded());
        let outage = lap_engine::ResilienceConfig::chaos(1.0, 5);
        let (_, outcome) = m.answer_resilient(&q, &db, &outage).unwrap();
        assert!(outcome.degradation.is_degraded());
        assert!(outcome.report.under.is_empty());
        assert!(!outcome.report.is_complete());
    }

    #[test]
    fn constraints_prune_unfoldings() {
        // Global query with ¬Lib over the atomic Lib view + a constraint
        // that every Bn book is on the shelf: the Bn unfolding dies.
        let m = Mediator::from_program(BOOK_MEDIATOR)
            .unwrap()
            .with_constraints(ConstraintSet::new().with_inclusion(InclusionDep::new(
                Predicate::new("Bn", 3),
                vec![0],
                Predicate::new("Shelf", 1),
                vec![0],
            )));
        let q = parse_query("Q(i) :- Book(i, a, t), not Lib(i).").unwrap();
        let plan = m.plan(&q).unwrap();
        assert_eq!(plan.unfolded.disjuncts.len(), 2);
        assert_eq!(plan.pruned.disjuncts.len(), 1);
        assert!(plan.pruned.disjuncts[0].to_string().contains("Amazon"));
    }

    #[test]
    fn infeasible_unfolding_detected() {
        // A price lookup source requiring an isbn input, exposed globally.
        let m = Mediator::from_program(
            "Price^io.\n\
             GPrice(i, p) :- Price(i, p).",
        )
        .unwrap();
        let q = parse_query("Q(p) :- GPrice(i, p).").unwrap();
        let plan = m.plan(&q).unwrap();
        assert!(!plan.feasibility.feasible);
        assert_eq!(
            plan.feasibility.decided_by,
            DecisionPath::OverestimateHasNull
        );
    }

    #[test]
    fn pass_through_source_literals() {
        let m = Mediator::from_program(BOOK_MEDIATOR).unwrap();
        // Cat is a source relation with no view: it passes through.
        let q = parse_query("Q(i) :- Cat(i, a).").unwrap();
        let plan = m.plan(&q).unwrap();
        assert_eq!(plan.unfolded.disjuncts.len(), 1);
        assert_eq!(plan.unfolded.disjuncts[0].to_string(), "Q(i) :- Cat(i, a).");
    }

    #[test]
    fn bad_view_program_is_rejected() {
        assert!(matches!(
            Mediator::from_program("S^o.\nG(x, y) :- S(x)."),
            Err(MediatorError::View(_))
        ));
    }

    #[test]
    fn recorder_backed_mediator_traces_the_full_pipeline() {
        let rec = Recorder::with_tracing();
        let m = Mediator::from_program(BOOK_MEDIATOR)
            .unwrap()
            .with_recorder(&rec)
            .with_engine(EngineConfig::full());
        let q = parse_query("Q(i, a, t) :- Book(i, a, t), Cat(i, a), not Lib(i).").unwrap();
        let db = Database::from_facts(
            r#"Amazon(1, "adams", "hhgttg", 12). Cat(1, "adams")."#,
        )
        .unwrap();
        let (_, report) = m.answer(&q, &db).unwrap();
        let snap = rec.snapshot();
        for phase in ["unfold", "prune", "feasible", "plan*", "answerable", "answer*"] {
            assert!(snap.find_span(phase).is_some(), "missing span {phase}");
        }
        // Source counters flowed into the shared recorder.
        assert_eq!(snap.counter("source.calls"), report.stats.calls);
        assert_eq!(
            snap.counter("containment.decisions"),
            m.engine_stats().decisions
        );
    }

    #[test]
    fn journal_backed_mediator_records_compile_phases() {
        let rec = Recorder::with_journal(lap_obs::JournalConfig::light());
        let m = Mediator::from_program(BOOK_MEDIATOR)
            .unwrap()
            .with_recorder(&rec);
        let q = parse_query("Q(i, a, t) :- Book(i, a, t), Cat(i, a), not Lib(i).").unwrap();
        m.plan(&q).unwrap();
        let snap = rec.journal().unwrap().snapshot();
        let unfold: Vec<_> = snap.events_of(journal_kind::MEDIATOR_UNFOLD).collect();
        assert_eq!(unfold.len(), 1);
        // One Book query over two Book views unfolds into two disjuncts.
        assert_eq!(unfold[0].data.get("disjuncts_in").and_then(Json::as_u64), Some(1));
        assert_eq!(unfold[0].data.get("disjuncts_out").and_then(Json::as_u64), Some(2));
        let prune: Vec<_> = snap.events_of(journal_kind::MEDIATOR_PRUNE).collect();
        assert_eq!(prune.len(), 1);
        assert_eq!(prune[0].data.get("disjuncts_out").and_then(Json::as_u64), Some(2));
        assert!(snap.validate().is_ok());
    }

    #[test]
    fn engine_backed_mediator_caches_across_plans() {
        let m = Mediator::from_program(
            "B^ioo. B^oio. L^o.\n\
             GB(i, a, t) :- B(i, a, t).\n\
             GL(i) :- L(i).",
        )
        .unwrap()
        .with_engine(EngineConfig::full());
        // Example 3's shape: decided by the containment branch.
        let q = parse_query(
            "Q(a) :- GB(i, a, t), GL(i), GB(i2, a2, t).\n\
             Q(a) :- GB(i, a, t), GL(i), not GB(i2, a2, t).",
        )
        .unwrap();
        let baseline = Mediator::from_program(
            "B^ioo. B^oio. L^o.\n\
             GB(i, a, t) :- B(i, a, t).\n\
             GL(i) :- L(i).",
        )
        .unwrap()
        .plan(&q)
        .unwrap();
        let first = m.plan(&q).unwrap();
        assert_eq!(first.feasibility.feasible, baseline.feasibility.feasible);
        assert_eq!(first.feasibility.decided_by, baseline.feasibility.decided_by);
        let second = m.plan(&q).unwrap();
        assert_eq!(second.feasibility.feasible, baseline.feasibility.feasible);
        let stats = m.engine_stats();
        assert!(stats.cache_hits >= 1, "{stats}");
        // Clones share the same engine (and therefore the same cache).
        let clone_stats = m.clone().engine_stats();
        assert_eq!(clone_stats.cache_hits, stats.cache_hits);
    }
}
