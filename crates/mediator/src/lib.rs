//! A global-as-view mediator over limited-access sources — the deployment
//! context in which the paper's algorithms ran (the BIRN mediator,
//! Section 6 and \[GLM03\]).
//!
//! The pipeline:
//!
//! 1. **Views** ([`GavView`]) define global relations as CQ¬ queries over
//!    source relations with access patterns.
//! 2. **Unfolding** ([`unfold`]) rewrites a global-schema UCQ¬ into a
//!    source-schema UCQ¬ (one disjunct per combination of view choices;
//!    negated global literals require atomic views).
//! 3. The **semantic optimizer** (from `lap-constraints`) discards
//!    disjuncts unsatisfiable under the integrity constraints.
//! 4. **FEASIBLE / PLAN\*** analyze the result, and **ANSWER\*** runs it
//!    against the sources with completeness reporting.
//!
//! [`Mediator`] wires the steps together:
//!
//! ```
//! use lap_mediator::Mediator;
//! use lap_ir::parse_query;
//! use lap_engine::Database;
//!
//! let mediator = Mediator::from_program(
//!     "Amazon^oooo. Bn^ooo. Shelf^o. Cat^oo.\n\
//!      Book(i, a, t) :- Amazon(i, a, t, p).\n\
//!      Book(i, a, t) :- Bn(i, a, t).\n\
//!      Lib(i) :- Shelf(i).",
//! )
//! .unwrap();
//! let q = parse_query("Q(i, a, t) :- Book(i, a, t), Cat(i, a), not Lib(i).").unwrap();
//! let db = Database::from_facts(r#"Bn(2, "adams", "dirk gently"). Cat(2, "adams")."#).unwrap();
//! let (plan, answer) = mediator.answer(&q, &db).unwrap();
//! assert!(plan.feasibility.feasible);
//! assert!(answer.is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mediator;
mod unfold;
mod views;

pub use mediator::{Mediator, MediatorError, MediatorPlan};
pub use unfold::{unfold, unfold_deep, UnfoldError};
pub use views::{GavView, ViewError};
