//! Algorithm PLAN\* (paper, Figure 2): underestimate and overestimate
//! execution plans.

use crate::answerable::answerable_split;
use lap_ir::{display_adorned, ConjunctiveQuery, Schema, UnionQuery, Var};
use std::collections::HashSet;
use std::fmt;

use crate::executable::choose_adornments;

/// One executable CQ¬ plan: a body in executable order plus the head
/// variables to be emitted as `null` (only overestimate plans have any).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqPlan {
    /// The query with its body in executable order.
    pub cq: ConjunctiveQuery,
    /// Head variables not bound by the body, emitted as `null`
    /// (the paper's `y = null` equations, Example 4).
    pub null_vars: Vec<Var>,
}

impl CqPlan {
    /// True iff this plan emits `null` values.
    pub fn has_null(&self) -> bool {
        !self.null_vars.is_empty()
    }

    /// Renders the plan with adornments when `schema` can supply them,
    /// e.g. `Q(x, y) :- R^oo(x, z), not S^o(z), y = null.`
    pub fn display_with(&self, schema: &Schema) -> String {
        let adorn = choose_adornments(&self.cq, schema);
        let mut parts: Vec<String> = self
            .cq
            .body
            .iter()
            .enumerate()
            .map(|(i, lit)| display_adorned(lit, adorn.as_ref().map(|a| a[i])))
            .collect();
        for v in &self.null_vars {
            parts.push(format!("{v} = null"));
        }
        if parts.is_empty() {
            parts.push("true".to_owned());
        }
        format!("{} :- {}.", self.cq.head, parts.join(", "))
    }
}

impl fmt::Display for CqPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self.cq.body.iter().map(|l| l.to_string()).collect();
        for v in &self.null_vars {
            parts.push(format!("{v} = null"));
        }
        if parts.is_empty() {
            parts.push("true".to_owned());
        }
        write!(f, "{} :- {}.", self.cq.head, parts.join(", "))
    }
}

/// An executable UCQ¬ plan: a (possibly empty) union of [`CqPlan`]s.
/// The empty union is the plan `false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionPlan {
    /// The shared head atom (kept even when the union is empty).
    pub head: lap_ir::Atom,
    /// The executable disjunct plans.
    pub parts: Vec<CqPlan>,
}

impl UnionPlan {
    /// True iff the plan is `false` (no disjuncts).
    pub fn is_false(&self) -> bool {
        self.parts.is_empty()
    }

    /// True iff some disjunct emits nulls.
    pub fn has_null(&self) -> bool {
        self.parts.iter().any(CqPlan::has_null)
    }

    /// The plan as a plain UCQ¬ query. Only meaningful when
    /// [`UnionPlan::has_null`] is false (null equations are not part of the
    /// query language); `None` otherwise. A `false` plan maps to the empty
    /// union.
    pub fn as_query(&self) -> Option<UnionQuery> {
        if self.has_null() {
            return None;
        }
        if self.parts.is_empty() {
            return Some(UnionQuery::empty(self.head.clone()));
        }
        UnionQuery::new(self.parts.iter().map(|p| p.cq.clone()).collect()).ok()
    }

    /// The `(query, null-vars)` pairs consumed by the engine's
    /// [`lap_engine::eval_ordered_union`].
    pub fn eval_parts(&self) -> Vec<(ConjunctiveQuery, Vec<Var>)> {
        self.parts
            .iter()
            .map(|p| (p.cq.clone(), p.null_vars.clone()))
            .collect()
    }

    /// Lowers this plan to the physical operator IR, one pipeline per
    /// disjunct (with the union head kept even when the plan is `false`).
    pub fn lower(&self, schema: &Schema) -> lap_engine::PhysicalUnion {
        let mut union = lap_engine::lower_union(&self.eval_parts(), schema);
        union.head = Some(self.head.clone());
        union
    }
}

impl fmt::Display for UnionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "{} :- false.", self.head);
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// The lowered counterpart of a [`PlanPair`]: both estimate plans as
/// physical operator pipelines, ready for the batched executor.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPair {
    /// `Qᵘ`, lowered.
    pub under: lap_engine::PhysicalUnion,
    /// `Qᵒ`, lowered.
    pub over: lap_engine::PhysicalUnion,
}

/// Lowers both plans of a [`PlanPair`] against `schema`. Total, like the
/// underlying [`UnionPlan::lower`]: any problem is carried inside the
/// operators and surfaces only if execution reaches it.
pub fn lower_pair(pair: &PlanPair, schema: &Schema) -> PhysicalPair {
    PhysicalPair {
        under: pair.under.lower(schema),
        over: pair.over.lower(schema),
    }
}

/// The pair of plans PLAN\* produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanPair {
    /// `Qᵘ` — sound underestimate: only disjuncts whose every literal is
    /// answerable survive, so `Qᵘ ⊑ Q`.
    pub under: UnionPlan,
    /// `Qᵒ` — complete overestimate: every satisfiable disjunct survives as
    /// its answerable part, unbound head variables becoming `null`, so
    /// `Q ⊑ Qᵒ` (reading `null` as "possibly more answers here").
    pub over: UnionPlan,
}

impl PlanPair {
    /// The compile-time fast path of FEASIBLE: if the two plans coincide,
    /// `Q` is orderable (hence feasible) and `Qᵘ` is an exact plan.
    pub fn coincide(&self) -> bool {
        self.under == self.over
    }
}

/// Algorithm PLAN\* (Figure 2). Quadratic in the size of `Q`.
///
/// For each disjunct `Qᵢ`:
/// * unsatisfiable ⇒ contributes to neither plan (`false` disjunct);
/// * `Uᵢ = ∅` ⇒ `Aᵢ` (in executable order) joins **both** plans;
/// * `Uᵢ ≠ ∅` ⇒ `Qᵢ` is dropped from `Qᵘ`; `Qᵢᵒ = Aᵢ` with every head
///   variable not occurring in `Aᵢ` set to `null` joins `Qᵒ`.
pub fn plan_star(q: &UnionQuery, schema: &Schema) -> PlanPair {
    plan_star_obs(q, schema, &lap_obs::Recorder::disabled())
}

/// [`plan_star`] under `recorder`: the whole computation runs in a `plan*`
/// span with a nested `answerable` span covering the per-disjunct
/// ANSWERABLE splits (Figure 1).
pub fn plan_star_obs(
    q: &UnionQuery,
    schema: &Schema,
    recorder: &lap_obs::Recorder,
) -> PlanPair {
    let _span = recorder.span("plan*");
    let splits: Vec<_> = {
        let _answerable = recorder.span("answerable");
        q.disjuncts
            .iter()
            .map(|cq| answerable_split(cq, schema))
            .collect()
    };
    let mut under = Vec::new();
    let mut over = Vec::new();
    for (cq, split) in q.disjuncts.iter().zip(&splits) {
        if split.unsatisfiable {
            continue;
        }
        let a_query = ConjunctiveQuery::new(cq.head.clone(), split.answerable.clone());
        let a_vars: HashSet<Var> = a_query.body.iter().flat_map(|l| l.vars()).collect();
        let null_vars: Vec<Var> = a_query
            .free_vars()
            .into_iter()
            .filter(|v| !a_vars.contains(v))
            .collect();
        let over_plan = CqPlan {
            cq: a_query.clone(),
            null_vars,
        };
        if split.unanswerable.is_empty() {
            debug_assert!(!over_plan.has_null(), "safe fully-answerable plan has no nulls");
            under.push(over_plan.clone());
        }
        over.push(over_plan);
    }
    PlanPair {
        under: UnionPlan {
            head: q.head.clone(),
            parts: under,
        },
        over: UnionPlan {
            head: q.head.clone(),
            parts: over,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_program;

    fn plans(text: &str) -> (PlanPair, Schema) {
        let p = parse_program(text).unwrap();
        let q = p.single_query().unwrap();
        (plan_star(q, &p.schema), p.schema)
    }

    #[test]
    fn example_4_under_and_over() {
        let (pair, _) = plans(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        );
        // Qᵘ: first disjunct dropped (B unanswerable); T stays.
        assert_eq!(pair.under.parts.len(), 1);
        assert_eq!(pair.under.parts[0].to_string(), "Q(x, y) :- T(x, y).");
        // Qᵒ: first disjunct becomes R(x,z), ¬S(z), y = null; T stays.
        assert_eq!(pair.over.parts.len(), 2);
        assert_eq!(
            pair.over.parts[0].to_string(),
            "Q(x, y) :- R(x, z), not S(z), y = null."
        );
        assert_eq!(pair.over.parts[1].to_string(), "Q(x, y) :- T(x, y).");
        assert!(pair.over.has_null());
        assert!(!pair.coincide());
    }

    #[test]
    fn orderable_query_has_coinciding_plans() {
        let (pair, schema) = plans(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        assert!(pair.coincide());
        assert!(!pair.over.has_null());
        // The shared plan is executable as ordered.
        for part in &pair.under.parts {
            assert!(crate::executable::is_executable_cq(&part.cq, &schema));
        }
    }

    #[test]
    fn unsat_disjunct_contributes_to_neither() {
        let (pair, _) = plans(
            "R^oo.\n\
             Q(x) :- R(x, y), not R(x, y).\n\
             Q(x) :- R(x, x).",
        );
        assert_eq!(pair.under.parts.len(), 1);
        assert_eq!(pair.over.parts.len(), 1);
        assert!(pair.coincide());
    }

    #[test]
    fn fully_unanswerable_disjunct_becomes_all_null_row() {
        let (pair, _) = plans(
            "B^ii.\n\
             Q(x, y) :- B(x, y).",
        );
        assert!(pair.under.is_false());
        assert_eq!(pair.over.parts.len(), 1);
        let p = &pair.over.parts[0];
        assert!(p.cq.body.is_empty());
        assert_eq!(p.null_vars.len(), 2);
        assert_eq!(p.to_string(), "Q(x, y) :- x = null, y = null.");
    }

    #[test]
    fn as_query_respects_nulls() {
        let (pair, _) = plans(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        );
        assert!(pair.over.as_query().is_none());
        let uq = pair.under.as_query().unwrap();
        assert_eq!(uq.disjuncts.len(), 1);
    }

    #[test]
    fn false_plan_as_query_is_empty_union() {
        let (pair, _) = plans("B^ii.\nQ(x, y) :- B(x, y).");
        let uq = pair.under.as_query().unwrap();
        assert!(uq.is_false());
        assert_eq!(pair.under.to_string(), "Q(x, y) :- false.");
    }

    #[test]
    fn display_with_adornments() {
        let (pair, schema) = plans(
            "C^oo. B^ioo. L^o.\n\
             Q(i, t) :- C(i, a), B(i, a, t), not L(i).",
        );
        let shown = pair.under.parts[0].display_with(&schema);
        assert_eq!(shown, "Q(i, t) :- C^oo(i, a), B^ioo(i, a, t), not L^o(i).");
    }
}
