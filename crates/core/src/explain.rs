//! Feasibility explanations for "view design and view debugging" (paper,
//! Section 4.1): *why* is a query infeasible, and what would fix it?
//!
//! FEASIBLE returns a boolean; a view designer needs to know which literal
//! of which disjunct blocks the plan, which variables lack bindings, and
//! whether the blockage is real (no other disjunct covers the answers) or
//! absorbed (the disjunct's answerable part is contained in the rest).

use crate::answerable::answerable_split;
use crate::feasible::{feasible_detailed_with, DecisionPath};
use lap_containment::ContainmentEngine;
use lap_ir::{ConjunctiveQuery, Literal, Schema, UnionQuery, Var};
use std::collections::HashSet;
use std::fmt;

/// Why one literal is unanswerable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedLiteral {
    /// The literal.
    pub literal: Literal,
    /// The variables that never receive bindings (in input slots for
    /// positive literals; anywhere for negative literals).
    pub unbound_vars: Vec<Var>,
    /// True iff the relation has no declared access pattern at all.
    pub no_patterns: bool,
}

impl fmt::Display for BlockedLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.literal)?;
        if self.no_patterns {
            write!(f, " — relation has no access pattern")
        } else if self.literal.positive {
            write!(
                f,
                " — every pattern needs a value for {}",
                vars_list(&self.unbound_vars)
            )
        } else {
            write!(
                f,
                " — negation cannot bind {}",
                vars_list(&self.unbound_vars)
            )
        }
    }
}

fn vars_list(vs: &[Var]) -> String {
    let items: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
    items.join(", ")
}

/// Diagnosis for one disjunct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisjunctDiagnosis {
    /// Index in the union.
    pub index: usize,
    /// The disjunct.
    pub disjunct: ConjunctiveQuery,
    /// Unanswerable literals with their blocked variables. Empty when the
    /// disjunct is fully answerable.
    pub blocked: Vec<BlockedLiteral>,
    /// Head variables that would have to be emitted as `null`.
    pub null_head_vars: Vec<Var>,
    /// True iff the disjunct's answerable part is contained in the rest of
    /// the union — its blockage is harmless (the Example-3 situation).
    pub absorbed: bool,
    /// True iff the disjunct is unsatisfiable (contributes nothing).
    pub unsatisfiable: bool,
}

/// A full feasibility explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explanation {
    /// The overall verdict.
    pub feasible: bool,
    /// Which branch of FEASIBLE decided it.
    pub decided_by: DecisionPath,
    /// Per-disjunct findings, in union order.
    pub disjuncts: Vec<DisjunctDiagnosis>,
}

impl Explanation {
    /// The disjuncts that actually make the query infeasible: blocked, not
    /// absorbed, and satisfiable.
    pub fn culprits(&self) -> impl Iterator<Item = &DisjunctDiagnosis> {
        self.disjuncts
            .iter()
            .filter(|d| !d.unsatisfiable && !d.blocked.is_empty() && !d.absorbed)
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "feasible: {} (decided by {:?})",
            self.feasible, self.decided_by
        )?;
        for d in &self.disjuncts {
            writeln!(f, "disjunct {}: {}", d.index, d.disjunct)?;
            if d.unsatisfiable {
                writeln!(f, "  unsatisfiable — contributes no answers")?;
                continue;
            }
            if d.blocked.is_empty() {
                writeln!(f, "  fully answerable")?;
                continue;
            }
            for b in &d.blocked {
                writeln!(f, "  blocked: {b}")?;
            }
            if !d.null_head_vars.is_empty() {
                writeln!(
                    f,
                    "  head variable(s) {} would be null",
                    vars_list(&d.null_head_vars)
                )?;
            }
            if d.absorbed {
                writeln!(f, "  but absorbed: the answerable part is covered by the rest of the union")?;
            } else {
                writeln!(f, "  CULPRIT: answers may be lost here")?;
            }
        }
        Ok(())
    }
}

/// Explains the feasibility verdict for `q` (see module docs).
pub fn explain(q: &UnionQuery, schema: &Schema) -> Explanation {
    explain_with(q, schema, &ContainmentEngine::default())
}

/// [`explain`] with every containment decision (the FEASIBLE check *and*
/// the per-disjunct absorption checks) delegated to `engine`. The
/// absorption checks revisit `ans(d) ⊑ Q` for each blocked disjunct, so a
/// caching engine pays for itself here.
pub fn explain_with(q: &UnionQuery, schema: &Schema, engine: &ContainmentEngine) -> Explanation {
    let report = feasible_detailed_with(q, schema, engine);
    let mut disjuncts = Vec::with_capacity(q.disjuncts.len());
    for (index, cq) in q.disjuncts.iter().enumerate() {
        let split = answerable_split(cq, schema);
        if split.unsatisfiable {
            disjuncts.push(DisjunctDiagnosis {
                index,
                disjunct: cq.clone(),
                blocked: Vec::new(),
                null_head_vars: Vec::new(),
                absorbed: true,
                unsatisfiable: true,
            });
            continue;
        }
        let bound: HashSet<Var> = split.answerable.iter().flat_map(|l| l.vars()).collect();
        let blocked: Vec<BlockedLiteral> = split
            .unanswerable
            .iter()
            .map(|lit| diagnose_literal(lit, &bound, schema))
            .collect();
        let a_vars: HashSet<Var> = bound.iter().copied().collect();
        let null_head_vars: Vec<Var> = cq
            .free_vars()
            .into_iter()
            .filter(|v| !a_vars.contains(v))
            .collect();
        // Absorption: is the blockage harmless? By Corollary 17 distributed
        // over disjuncts, `Q` is feasible iff every disjunct's answerable
        // part is contained in the *whole* query — so a blocked disjunct is
        // harmless exactly when `ans(d) ⊑ Q` (and its head needs no nulls).
        let absorbed = if blocked.is_empty() {
            true
        } else if null_head_vars.is_empty() {
            let ans_d = UnionQuery::single(split.ans_query(&cq.head).expect("satisfiable"));
            engine.contained(&ans_d, q)
        } else {
            false
        };
        disjuncts.push(DisjunctDiagnosis {
            index,
            disjunct: cq.clone(),
            blocked,
            null_head_vars,
            absorbed,
            unsatisfiable: false,
        });
    }
    Explanation {
        feasible: report.feasible,
        decided_by: report.decided_by,
        disjuncts,
    }
}

fn diagnose_literal(lit: &Literal, bound: &HashSet<Var>, schema: &Schema) -> BlockedLiteral {
    let decl = schema.relation(lit.atom.predicate.name);
    let no_patterns = decl.is_none_or(|d| d.patterns.is_empty());
    let unbound_vars: Vec<Var> = if lit.positive {
        // Variables that appear in input slots of every pattern and are
        // unbound: report the unbound vars of the *least demanding*
        // pattern (fewest unbound inputs) — the closest fix.
        match decl {
            Some(d) if !d.patterns.is_empty() => {
                let mut best: Option<Vec<Var>> = None;
                for p in &d.patterns {
                    let missing: Vec<Var> = p
                        .input_positions()
                        .filter_map(|j| lit.atom.args[j].as_var())
                        .filter(|v| !bound.contains(v))
                        .collect();
                    if best.as_ref().is_none_or(|b| missing.len() < b.len()) {
                        best = Some(missing);
                    }
                }
                best.unwrap_or_default()
            }
            _ => lit.vars().filter(|v| !bound.contains(v)).collect(),
        }
    } else {
        lit.vars().filter(|v| !bound.contains(v)).collect()
    };
    BlockedLiteral {
        literal: lit.clone(),
        unbound_vars,
        no_patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_program;

    fn setup(text: &str) -> (UnionQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().clone(), p.schema)
    }

    #[test]
    fn example_4_culprit_is_b() {
        let (q, schema) = setup(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        );
        let e = explain(&q, &schema);
        assert!(!e.feasible);
        let culprits: Vec<_> = e.culprits().collect();
        assert_eq!(culprits.len(), 1);
        assert_eq!(culprits[0].index, 0);
        assert_eq!(culprits[0].blocked.len(), 1);
        assert_eq!(culprits[0].blocked[0].literal.to_string(), "B(x, y)");
        assert_eq!(
            culprits[0].blocked[0].unbound_vars,
            vec![Var::new("y")]
        );
        assert_eq!(culprits[0].null_head_vars, vec![Var::new("y")]);
        let shown = e.to_string();
        assert!(shown.contains("CULPRIT"), "{shown}");
    }

    #[test]
    fn example_3_blockage_is_absorbed() {
        let (q, schema) = setup(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        let e = explain(&q, &schema);
        assert!(e.feasible);
        assert_eq!(e.culprits().count(), 0);
        assert!(e.disjuncts.iter().all(|d| d.absorbed));
        assert!(!e.disjuncts[0].blocked.is_empty());
    }

    #[test]
    fn no_pattern_relation_is_reported() {
        let (q, schema) = setup("R^oo.\nQ(x) :- R(x, y), Zeta(y).");
        let e = explain(&q, &schema);
        assert!(!e.feasible);
        let c: Vec<_> = e.culprits().collect();
        assert!(c[0].blocked[0].no_patterns);
        assert!(e.to_string().contains("no access pattern"));
    }

    #[test]
    fn unsat_disjunct_marked() {
        let (q, schema) = setup(
            "R^oo.\n\
             Q(x) :- R(x, y), not R(x, y).\n\
             Q(x) :- R(x, x).",
        );
        let e = explain(&q, &schema);
        assert!(e.feasible);
        assert!(e.disjuncts[0].unsatisfiable);
        assert_eq!(e.culprits().count(), 0);
    }

    #[test]
    fn single_disjunct_self_absorption() {
        // Example 9: the redundant unanswerable B(y) is absorbed by the
        // disjunct itself.
        let (q, schema) = setup("F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).");
        let e = explain(&q, &schema);
        assert!(e.feasible);
        assert_eq!(e.culprits().count(), 0);
        assert!(e.disjuncts[0].absorbed);
        assert_eq!(e.disjuncts[0].blocked.len(), 1);
    }

    #[test]
    fn fully_answerable_disjuncts_report_clean() {
        let (q, schema) = setup("C^oo.\nQ(i) :- C(i, a).");
        let e = explain(&q, &schema);
        assert!(e.feasible);
        assert!(e.disjuncts[0].blocked.is_empty());
        assert!(e.to_string().contains("fully answerable"));
    }

    #[test]
    fn engine_backed_explain_agrees_and_records_decisions() {
        use lap_containment::{ContainmentEngine, EngineConfig};
        let (q, schema) = setup(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        let plain = explain(&q, &schema);
        let engine = ContainmentEngine::new(EngineConfig::full());
        let with = explain_with(&q, &schema, &engine);
        assert_eq!(plain, with);
        // FEASIBLE's check plus one absorption check per blocked disjunct.
        assert!(engine.stats().decisions >= 2, "{}", engine.stats());
        // A second explanation reuses cached verdicts.
        let again = explain_with(&q, &schema, &engine);
        assert_eq!(plain, again);
        assert!(engine.stats().cache_hits >= 1, "{}", engine.stats());
    }
}
