//! Algorithm ANSWERABLE (paper, Figure 1) and the answerable part `ans(Q)`
//! (Definitions 6–7).

use lap_ir::{is_satisfiable, ConjunctiveQuery, Literal, Schema, Term, UnionQuery, Var};
use std::collections::HashSet;

/// The decomposition of a CQ¬ into its answerable and unanswerable parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerableSplit {
    /// True iff the query is unsatisfiable (then `ans(Q) = false` and both
    /// literal lists are empty).
    pub unsatisfiable: bool,
    /// The answerable literals, *in the order ANSWERABLE added them* — this
    /// order is an executable order for this sub-plan.
    pub answerable: Vec<Literal>,
    /// The literals that are not `Q`-answerable, in original order.
    pub unanswerable: Vec<Literal>,
}

impl AnswerableSplit {
    /// True iff every literal is answerable (and the query satisfiable).
    pub fn all_answerable(&self) -> bool {
        !self.unsatisfiable && self.unanswerable.is_empty()
    }

    /// `ans(Q)` as a query with the same head, body in executable order.
    /// `None` when the query is unsatisfiable (`ans(Q) = false`).
    pub fn ans_query(&self, head: &lap_ir::Atom) -> Option<ConjunctiveQuery> {
        if self.unsatisfiable {
            None
        } else {
            Some(ConjunctiveQuery::new(head.clone(), self.answerable.clone()))
        }
    }
}

/// Can `lit` be executed given the bound variables `bound`?
///
/// * A **positive** literal is executable iff some declared access pattern
///   of its relation has all its input slots covered by constants or bound
///   variables (Definition 3's "adornments can be added").
/// * A **negative** literal is executable iff *all* its variables are
///   bound — negation only filters (Example 1) — and its relation exposes
///   at least one access pattern, so membership can actually be tested.
pub fn literal_executable(lit: &Literal, bound: &HashSet<Var>, schema: &Schema) -> bool {
    let Some(decl) = schema.relation(lit.atom.predicate.name) else {
        return false;
    };
    if decl.patterns.is_empty() {
        return false;
    }
    let arg_bound = |j: usize| match lit.atom.args[j] {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(&v),
    };
    if lit.positive {
        decl.callable_with(arg_bound)
    } else {
        (0..lit.atom.args.len()).all(arg_bound)
    }
}

/// Algorithm ANSWERABLE (Figure 1), *without* the satisfiability shortcut:
/// computes which literals of `q` are `Q`-answerable and in which order.
/// Used directly for orderability (Proposition 1, which does not involve
/// satisfiability).
pub fn answerable_literals(q: &ConjunctiveQuery, schema: &Schema) -> (Vec<Literal>, Vec<Literal>) {
    let mut in_a = vec![false; q.body.len()];
    let mut answerable: Vec<Literal> = Vec::new();
    let mut bound: HashSet<Var> = HashSet::new();
    loop {
        let mut done = true;
        for (lit, in_a) in q.body.iter().zip(in_a.iter_mut()) {
            if *in_a {
                continue;
            }
            if literal_executable(lit, &bound, schema) {
                *in_a = true;
                answerable.push(lit.clone());
                bound.extend(lit.vars());
                done = false;
            }
        }
        if done {
            break;
        }
    }
    let unanswerable = q
        .body
        .iter()
        .enumerate()
        .filter(|&(i, _)| !in_a[i])
        .map(|(_, l)| l.clone())
        .collect();
    (answerable, unanswerable)
}

/// Algorithm ANSWERABLE (Figure 1) for a CQ¬ query: returns `false` (the
/// unsatisfiable marker) or the answerable/unanswerable decomposition.
pub fn answerable_split(q: &ConjunctiveQuery, schema: &Schema) -> AnswerableSplit {
    if !is_satisfiable(q) {
        return AnswerableSplit {
            unsatisfiable: true,
            answerable: Vec::new(),
            unanswerable: Vec::new(),
        };
    }
    let (answerable, unanswerable) = answerable_literals(q, schema);
    AnswerableSplit {
        unsatisfiable: false,
        answerable,
        unanswerable,
    }
}

/// Definition 6: a literal `R̂(x̄)` — *not necessarily in `Q`* — is
/// `Q`-answerable if there is an executable query consisting of `R̂(x̄)`
/// and literals of `Q`.
///
/// Since answerable literals of `Q` bind a fixed closure of variables `B∞`
/// regardless of order, this reduces to: run ANSWERABLE over `Q`'s own
/// literals, then test `lit` against the resulting bound set.
pub fn is_q_answerable(lit: &Literal, q: &ConjunctiveQuery, schema: &Schema) -> bool {
    let (answerable, _) = answerable_literals(q, schema);
    let bound: HashSet<Var> = answerable.iter().flat_map(|l| l.vars()).collect();
    literal_executable(lit, &bound, schema)
}

/// `ans(Q)` for a UCQ¬ query (Definition 7): the union of the answerable
/// parts of the disjuncts; unsatisfiable disjuncts contribute `false` and
/// are dropped. The result's disjunct bodies are in executable order.
pub fn ans(q: &UnionQuery, schema: &Schema) -> UnionQuery {
    let mut disjuncts = Vec::new();
    for cq in &q.disjuncts {
        let split = answerable_split(cq, schema);
        if let Some(a) = split.ans_query(&cq.head) {
            disjuncts.push(a);
        }
    }
    if disjuncts.is_empty() {
        UnionQuery::empty(q.head.clone())
    } else {
        UnionQuery::new(disjuncts).expect("disjunct heads unchanged")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::{parse_cq, parse_program};

    fn setup(text: &str) -> (ConjunctiveQuery, Schema) {
        let p = parse_program(text).unwrap();
        let q = p.single_query().unwrap().disjuncts[0].clone();
        (q, p.schema)
    }

    #[test]
    fn example_1_is_fully_answerable() {
        let (q, schema) = setup(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        let split = answerable_split(&q, &schema);
        assert!(split.all_answerable());
        // ANSWERABLE discovers C first (free scan), then — still in the same
        // pass — ¬L (its variable i is now bound), and B on the second pass.
        let order: Vec<String> = split.answerable.iter().map(|l| l.to_string()).collect();
        assert_eq!(order, vec!["C(i, a)", "not L(i)", "B(i, a, t)"]);
    }

    #[test]
    fn negation_cannot_bind() {
        // ¬S(z) would bind z if it could produce bindings; it cannot.
        let (q, schema) = setup(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).",
        );
        let split = answerable_split(&q, &schema);
        // R binds x, z; then ¬S filters; B^ii never answerable (y unbound).
        let ans: Vec<String> = split.answerable.iter().map(|l| l.to_string()).collect();
        assert_eq!(ans, vec!["R(x, z)", "not S(z)"]);
        let un: Vec<String> = split.unanswerable.iter().map(|l| l.to_string()).collect();
        assert_eq!(un, vec!["B(x, y)"]);
    }

    #[test]
    fn unsatisfiable_query_is_false() {
        let (q, schema) = setup("R^o.\nQ(x) :- R(x), not R(x).");
        let split = answerable_split(&q, &schema);
        assert!(split.unsatisfiable);
        assert!(split.ans_query(&q.head).is_none());
    }

    #[test]
    fn example_3_unanswerable_existentials() {
        let (q, schema) = setup(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).",
        );
        let split = answerable_split(&q, &schema);
        // L^o binds i; B^ioo(i, a, t) follows; B(i2, a2, t) has no pattern
        // with its inputs bound (i2 unbound for ioo, a2 unbound for oio).
        let ans: Vec<String> = split.answerable.iter().map(|l| l.to_string()).collect();
        assert_eq!(ans, vec!["L(i)", "B(i, a, t)"]);
        assert_eq!(split.unanswerable.len(), 1);
    }

    #[test]
    fn constants_count_as_bound() {
        let (q, schema) = setup("B^i.\nQ(x) :- R(x), not B(3).");
        // R undeclared -> unanswerable; ¬B(3) ground -> answerable first.
        let split = answerable_split(&q, &schema);
        assert_eq!(split.answerable.len(), 1);
        assert_eq!(split.answerable[0].to_string(), "not B(3)");
        assert_eq!(split.unanswerable.len(), 1);
    }

    #[test]
    fn relation_without_patterns_is_unanswerable() {
        let (q, schema) = setup("R^oo.\nQ(x) :- R(x, y), Z(y).");
        // Z appears in no pattern declaration.
        let split = answerable_split(&q, &schema);
        assert_eq!(split.unanswerable.len(), 1);
        assert_eq!(split.unanswerable[0].to_string(), "Z(y)");
    }

    #[test]
    fn ans_union_drops_unsat_disjuncts() {
        let p = parse_program(
            "R^oo. S^o.\n\
             Q(x) :- R(x, y), S(y), not S(y).\n\
             Q(x) :- R(x, y).",
        )
        .unwrap();
        let q = p.single_query().unwrap();
        let a = ans(q, &p.schema);
        assert_eq!(a.disjuncts.len(), 1);
        assert_eq!(a.disjuncts[0].to_string(), "Q(x) :- R(x, y).");
    }

    #[test]
    fn ans_of_fully_unsat_union_is_false() {
        let p = parse_program("R^o.\nQ(x) :- R(x), not R(x).").unwrap();
        let a = ans(p.single_query().unwrap(), &p.schema);
        assert!(a.is_false());
    }

    #[test]
    fn paper_example_9_ans() {
        // F^o, B^i: Q(x) :- F(x), B(x), B(y), F(z) has ans = F(x),B(x),F(z).
        let p = parse_program(
            "F^o. B^i.\n\
             Q(x) :- F(x), B(x), B(y), F(z).",
        )
        .unwrap();
        let q = &p.single_query().unwrap().disjuncts[0];
        let split = answerable_split(q, &p.schema);
        let mut ans_lits: Vec<String> = split.answerable.iter().map(|l| l.to_string()).collect();
        ans_lits.sort();
        assert_eq!(ans_lits, vec!["B(x)", "F(x)", "F(z)"]);
        assert_eq!(split.unanswerable.len(), 1);
        assert_eq!(split.unanswerable[0].to_string(), "B(y)");
    }

    #[test]
    fn quadratic_worst_case_chain_terminates() {
        // R^io chain written in reverse order forces one discovery per pass.
        let mut text = String::from("S^o. R^io.\n");
        text.push_str("Q(x0) :- ");
        let n = 60;
        let mut parts = Vec::new();
        for i in (0..n).rev() {
            parts.push(format!("R(x{}, x{})", i, i + 1));
        }
        parts.push("S(x0)".to_owned());
        text.push_str(&parts.join(", "));
        text.push('.');
        let (q, schema) = {
            let p = parse_program(&text).unwrap();
            (p.single_query().unwrap().disjuncts[0].clone(), p.schema)
        };
        let split = answerable_split(&q, &schema);
        assert!(split.all_answerable());
        assert_eq!(split.answerable[0].to_string(), "S(x0)");
    }

    #[test]
    fn literal_executable_respects_patterns() {
        let p = parse_program("B^oi.\nQ(x, y) :- B(x, y).").unwrap();
        let lit = &p.single_query().unwrap().disjuncts[0].body[0];
        let mut bound = HashSet::new();
        assert!(!literal_executable(lit, &bound, &p.schema));
        bound.insert(Var::new("y"));
        assert!(literal_executable(lit, &bound, &p.schema));
        let _ = parse_cq; // referenced helper
    }
}

#[cfg(test)]
mod def6_tests {
    use super::*;
    use lap_ir::{parse_literal, parse_program};

    #[test]
    fn external_literal_answerability() {
        // Example-1 setting: with C^oo scannable, the external literal
        // B(i, a, t2) is Q-answerable (i and a get bound), but P^ii(w, v)
        // over fresh vars is not.
        let p = parse_program(
            "B^ioo. B^oio. C^oo. L^o. P^ii.\n\
             Q(i, a) :- C(i, a).",
        )
        .unwrap();
        let q = &p.single_query().unwrap().disjuncts[0];
        let b = parse_literal("B(i, a, t2)").unwrap();
        assert!(is_q_answerable(&b, q, &p.schema));
        let unreachable = parse_literal("P(w, v)").unwrap();
        assert!(!is_q_answerable(&unreachable, q, &p.schema));
        // A negated external literal needs all its vars bound.
        let neg_ok = parse_literal("not L(i)").unwrap();
        assert!(is_q_answerable(&neg_ok, q, &p.schema));
        let neg_bad = parse_literal("not L(t2)").unwrap();
        assert!(!is_q_answerable(&neg_bad, q, &p.schema));
    }

    #[test]
    fn proposition_9_q_answerable_implies_q_plus_answerable() {
        // Negative literals of Q never contribute bindings, so dropping
        // them must not change answerability (Proposition 9).
        let p = parse_program(
            "R^oo. S^o. B^io.\n\
             Q(x) :- R(x, y), not S(y).",
        )
        .unwrap();
        let q = &p.single_query().unwrap().disjuncts[0];
        let q_plus = ConjunctiveQuery::new(
            q.head.clone(),
            q.body.iter().filter(|l| l.positive).cloned().collect(),
        );
        let b = parse_literal("B(x, w)").unwrap();
        assert_eq!(
            is_q_answerable(&b, q, &p.schema),
            is_q_answerable(&b, &q_plus, &p.schema)
        );
        assert!(is_q_answerable(&b, q, &p.schema));
    }
}
