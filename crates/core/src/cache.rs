//! A shared plan cache: compile once per *query text*, serve many
//! sessions.
//!
//! The `lapd` query service answers a stream of repeated queries; paying
//! parse + containment + lowering on every request is exactly the cost
//! [`crate::PreparedQuery`] was built to amortize. [`PlanCache`] is the
//! concurrent, bounded store that makes the amortization shared: an LRU
//! map from **canonical query text** ([`canonical_text`]) to `Arc`-shared
//! compiled entries, bounded by an estimated **byte budget** instead of an
//! entry count (one giant union should not pin a thousand small plans
//! out), with hit/miss/eviction counters mirrored to a recorder
//! (`plan_cache.hit` / `plan_cache.miss` / `plan_cache.eviction` /
//! `plan_cache.publish`).
//!
//! ## The publish-swap invariant
//!
//! Cached entries are shared across sessions, so **nothing may mutate an
//! entry in place** — a reader holding the `Arc` mid-execution would see a
//! torn plan (`recalibrate_prepared`'s in-place `replace_plans` is safe
//! only for an entry a single caller owns). Instead, adaptive re-planning
//! follows *replace-on-publish*: build the recalibrated entry **aside**
//! (clone, re-plan the clone), then [`PlanCache::publish`] it, which swaps
//! the cache slot atomically under the cache lock. Sessions that already
//! hold the old `Arc` finish on the old — internally consistent — plans;
//! every later [`PlanCache::get`] sees the new entry. Both plans compute
//! the same answers (re-ordering an executable body is
//! answer-preserving), so the swap is invisible except in cost.
//!
//! Compilation happens **outside** the cache lock: two sessions racing on
//! the same cold key may both compile, and the second insert wins. That
//! duplicated work is benign (both entries are equivalent) and keeps a
//! slow compile from serializing every other session.

use lap_obs::{Counter, Recorder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default byte budget: 64 MiB of estimated plan bytes.
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Canonicalizes query/program text for cache keying: whitespace runs
/// collapse to one space and the ends are trimmed, so reformatting a
/// program does not defeat the cache while any semantic change (even a
/// renamed variable) keys a distinct entry.
pub fn canonical_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_gap = true; // swallow leading whitespace
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_gap {
                out.push(' ');
                in_gap = true;
            }
        } else {
            out.push(ch);
            in_gap = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A point-in-time view of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the caller compiled).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Replace-on-publish swaps (adaptive re-planning).
    pub publishes: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident.
    pub bytes: usize,
}

impl PlanCacheStats {
    /// Hit rate over all lookups, in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-entry view for operator consoles (`daemon-ctl stats`): which keys
/// are resident, how big each is, and how often each has been served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanCacheEntry {
    /// Canonical query text the entry is keyed on.
    pub key: String,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// Lookups served from this slot since it was (re)inserted.
    pub hits: u64,
    /// LRU clock value at last use (larger = more recently used).
    pub last_used: u64,
}

struct Slot<V> {
    value: Arc<V>,
    bytes: usize,
    /// LRU clock: larger = more recently used.
    last_used: u64,
    /// Hits served from this slot since (re)insertion.
    hits: u64,
}

struct CacheState<V> {
    slots: HashMap<String, Slot<V>>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe byte-budgeted LRU cache of `Arc`-shared compiled plans,
/// keyed on canonical query text. See the module docs for the sharing and
/// publish-swap contract.
pub struct PlanCache<V> {
    state: Mutex<CacheState<V>>,
    byte_budget: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    publishes: Counter,
}

impl<V> PlanCache<V> {
    /// A cache bounded by `byte_budget` estimated bytes (min 1), with
    /// detached counters.
    pub fn new(byte_budget: usize) -> PlanCache<V> {
        PlanCache {
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            byte_budget: byte_budget.max(1),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
            publishes: Counter::detached(),
        }
    }

    /// Mirrors the cache counters into `recorder` as `plan_cache.hit`,
    /// `plan_cache.miss`, `plan_cache.eviction`, and `plan_cache.publish`.
    pub fn with_recorder(mut self, recorder: &Recorder) -> PlanCache<V> {
        self.hits = recorder.counter("plan_cache.hit");
        self.misses = recorder.counter("plan_cache.miss");
        self.evictions = recorder.counter("plan_cache.eviction");
        self.publishes = recorder.counter("plan_cache.publish");
        self
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Looks `key` up, bumping the hit/miss counters and the entry's LRU
    /// position.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                slot.hits += 1;
                self.hits.incr();
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Looks `key` up **without** touching the hit/miss counters or the
    /// LRU clock — for maintenance passes (e.g. building a recalibrated
    /// replacement aside) that must not masquerade as query traffic.
    pub fn peek(&self, key: &str) -> Option<Arc<V>> {
        let state = self.lock();
        state.slots.get(key).map(|slot| Arc::clone(&slot.value))
    }

    /// Inserts `value` under `key` with an estimated size of `bytes`,
    /// evicting least-recently-used entries until the budget holds again
    /// (the fresh entry itself is never evicted by its own insert).
    /// Returns the shared handle.
    pub fn insert(&self, key: &str, value: V, bytes: usize) -> Arc<V> {
        let value = Arc::new(value);
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(old) = state.slots.insert(
            key.to_owned(),
            Slot { value: Arc::clone(&value), bytes, last_used: tick, hits: 0 },
        ) {
            state.bytes -= old.bytes;
        }
        state.bytes += bytes;
        self.evict_to_budget(&mut state, key);
        value
    }

    /// The cache-level lookup-or-compile entry point: on a hit, the shared
    /// entry; on a miss, `compile()` runs **without the cache lock held**
    /// and its result is inserted (`size` estimates its bytes). Returns
    /// the handle plus whether it was a hit. Two racing sessions may both
    /// compile a cold key; the later insert wins — benign, both entries
    /// are equivalent compilations of the same text.
    pub fn get_or_compile<E>(
        &self,
        key: &str,
        size: impl FnOnce(&V) -> usize,
        compile: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, bool), E> {
        if let Some(found) = self.get(key) {
            return Ok((found, true));
        }
        let value = compile()?;
        let bytes = size(&value);
        Ok((self.insert(key, value, bytes), false))
    }

    /// Replace-on-publish: atomically swaps the slot for `key` to the
    /// already-built `value` (see the module docs for why in-place
    /// mutation of a shared entry is forbidden). Readers holding the old
    /// `Arc` keep a consistent entry; new lookups see the new one. When
    /// `key` is absent (e.g. evicted while the replacement was being
    /// built), the new entry is simply inserted.
    pub fn publish(&self, key: &str, value: V, bytes: usize) -> Arc<V> {
        self.publishes.incr();
        self.insert(key, value, bytes)
    }

    /// Drops the entry for `key`, if resident.
    pub fn invalidate(&self, key: &str) {
        let mut state = self.lock();
        if let Some(old) = state.slots.remove(key) {
            state.bytes -= old.bytes;
        }
    }

    /// Current counter values and residency.
    pub fn stats(&self) -> PlanCacheStats {
        let state = self.lock();
        PlanCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            publishes: self.publishes.get(),
            entries: state.slots.len(),
            bytes: state.bytes,
        }
    }

    /// Per-entry residency detail, sorted by key for stable console and
    /// JSON output. Does not touch counters or the LRU clock.
    pub fn entries_detail(&self) -> Vec<PlanCacheEntry> {
        let state = self.lock();
        let mut entries: Vec<PlanCacheEntry> = state
            .slots
            .iter()
            .map(|(key, slot)| PlanCacheEntry {
                key: key.clone(),
                bytes: slot.bytes,
                hits: slot.hits,
                last_used: slot.last_used,
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        entries
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState<V>> {
        self.state.lock().expect("plan cache mutex not poisoned")
    }

    /// Evicts least-recently-used entries (never `fresh`) until the byte
    /// budget holds or only the fresh entry remains.
    fn evict_to_budget(&self, state: &mut CacheState<V>, fresh: &str) {
        while state.bytes > self.byte_budget && state.slots.len() > 1 {
            let victim = state
                .slots
                .iter()
                .filter(|(k, _)| k.as_str() != fresh)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(old) = state.slots.remove(&victim) {
                state.bytes -= old.bytes;
                self.evictions.incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_text_is_whitespace_insensitive_but_content_sensitive() {
        let a = canonical_text("C^oo.\nQ(i) :- C(i, a).\n");
        let b = canonical_text("  C^oo.   Q(i) :-\tC(i, a).  ");
        assert_eq!(a, b);
        assert_ne!(a, canonical_text("C^oo. Q(j) :- C(j, a)."));
    }

    #[test]
    fn hit_miss_and_lru_eviction_under_byte_budget() {
        let cache: PlanCache<String> = PlanCache::new(100);
        assert!(cache.get("a").is_none());
        cache.insert("a", "A".to_owned(), 40);
        cache.insert("b", "B".to_owned(), 40);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(cache.get("a").as_deref(), Some(&"A".to_owned()));
        cache.insert("c", "C".to_owned(), 40);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "{stats:?}");
        assert_eq!(stats.evictions, 1);
        assert!(cache.get("b").is_none(), "LRU entry must have been evicted");
        assert!(cache.get("a").is_some() && cache.get("c").is_some());
        assert!(stats.bytes <= 100);
    }

    #[test]
    fn oversized_entry_survives_its_own_insert() {
        let cache: PlanCache<u8> = PlanCache::new(10);
        cache.insert("big", 1, 1000);
        assert!(cache.get("big").is_some(), "fresh entry is never self-evicted");
        cache.insert("next", 2, 5);
        // The oversized entry is the eviction victim of the next insert.
        assert!(cache.get("big").is_none());
        assert!(cache.get("next").is_some());
    }

    #[test]
    fn get_or_compile_compiles_once_then_hits() {
        let cache: PlanCache<u32> = PlanCache::new(1000);
        let mut compiles = 0;
        let (v, hit) = cache
            .get_or_compile("k", |_| 8, || -> Result<u32, ()> {
                compiles += 1;
                Ok(42)
            })
            .unwrap();
        assert_eq!((*v, hit, compiles), (42, false, 1));
        let (v, hit) = cache
            .get_or_compile("k", |_| 8, || -> Result<u32, ()> {
                compiles += 1;
                Ok(99)
            })
            .unwrap();
        assert_eq!((*v, hit, compiles), (42, true, 1), "hit must not recompile");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn publish_swaps_the_slot_but_old_handles_stay_consistent() {
        let cache: PlanCache<Vec<u64>> = PlanCache::new(1000);
        cache.insert("q", vec![1, 2, 3], 24);
        let old = cache.get("q").unwrap();
        let swapped = cache.publish("q", vec![3, 2, 1], 24);
        assert_eq!(*old, vec![1, 2, 3], "held handle keeps the old entry intact");
        assert_eq!(*swapped, vec![3, 2, 1]);
        assert_eq!(*cache.get("q").unwrap(), vec![3, 2, 1], "new lookups see the swap");
        assert_eq!(cache.stats().publishes, 1);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn concurrent_sessions_share_one_compilation_steady_state() {
        let cache: std::sync::Arc<PlanCache<String>> = std::sync::Arc::new(PlanCache::new(10_000));
        // Warm the key, then hammer it from many threads: every lookup
        // must hit and return the same shared entry.
        cache.insert("q", "plan".to_owned(), 16);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let got = cache.get("q").expect("warm key always hits");
                        assert_eq!(*got, "plan");
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 1600);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn entries_detail_reports_per_entry_hits_and_bytes() {
        let cache: PlanCache<u8> = PlanCache::new(1000);
        cache.insert("b", 2, 20);
        cache.insert("a", 1, 10);
        cache.get("a");
        cache.get("a");
        cache.get("b");
        let detail = cache.entries_detail();
        assert_eq!(detail.len(), 2);
        assert_eq!(
            detail.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
            ["a", "b"],
            "sorted by key"
        );
        assert_eq!((detail[0].bytes, detail[0].hits), (10, 2));
        assert_eq!((detail[1].bytes, detail[1].hits), (20, 1));
        assert!(detail[1].last_used > 0);
        // A publish resets the slot's hit count — it is a new entry.
        cache.publish("a", 3, 10);
        let detail = cache.entries_detail();
        assert_eq!(detail[0].hits, 0);
        // The detail pass itself must not count as traffic.
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn recorder_mirrors_cache_counters() {
        let rec = Recorder::new();
        let cache: PlanCache<u8> = PlanCache::new(100).with_recorder(&rec);
        cache.get("missing");
        cache.insert("k", 1, 10);
        cache.get("k");
        cache.publish("k", 2, 10);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("plan_cache.miss"), 1);
        assert_eq!(snap.counter("plan_cache.hit"), 1);
        assert_eq!(snap.counter("plan_cache.publish"), 1);
    }
}
