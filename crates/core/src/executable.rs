//! Executability (Definition 3) and orderability (Definition 4) tests.

use crate::answerable::{answerable_literals, literal_executable};
use lap_ir::{AccessPattern, ConjunctiveQuery, Schema, Term, UnionQuery, Var};
use std::collections::HashSet;

/// Checks Definition 3 for one CQ¬: can adornments be chosen so the body
/// executes *in its given order*, every variable being bound (by an output
/// slot of an earlier positive literal, or a constant) before it is needed
/// at an input slot or in a negated literal?
///
/// Greedy left-to-right is complete here: whichever usable pattern is
/// chosen for a literal, afterwards *all* its variables are bound, so the
/// set of bound variables after each step does not depend on the choice.
pub fn is_executable_cq(q: &ConjunctiveQuery, schema: &Schema) -> bool {
    let mut bound: HashSet<Var> = HashSet::new();
    for lit in &q.body {
        if !literal_executable(lit, &bound, schema) {
            return false;
        }
        bound.extend(lit.vars());
    }
    true
}

/// Definition 3 for a UCQ¬: every disjunct executable. The query `false`
/// (no disjuncts) is vacuously executable; a disjunct with an empty body
/// (`true`) is executable here only in the degenerate all-constant-head
/// case — the paper treats `true` as non-executable, which for safe queries
/// never arises.
pub fn is_executable(q: &UnionQuery, schema: &Schema) -> bool {
    q.disjuncts.iter().all(|cq| is_executable_cq(cq, schema))
}

/// Orderability of a CQ¬ (Definition 4) via Proposition 1: `Q` is orderable
/// iff every literal of `Q` is `Q`-answerable. Quadratic (Corollary 3).
pub fn is_orderable_cq(q: &ConjunctiveQuery, schema: &Schema) -> bool {
    let (_, unanswerable) = answerable_literals(q, schema);
    unanswerable.is_empty()
}

/// Orderability of a UCQ¬: every disjunct orderable.
pub fn is_orderable(q: &UnionQuery, schema: &Schema) -> bool {
    q.disjuncts.iter().all(|cq| is_orderable_cq(cq, schema))
}

/// Returns an executable reordering of `q`'s body (the ANSWERABLE discovery
/// order), or `None` if `q` is not orderable.
pub fn executable_order(q: &ConjunctiveQuery, schema: &Schema) -> Option<ConjunctiveQuery> {
    let (answerable, unanswerable) = answerable_literals(q, schema);
    if !unanswerable.is_empty() {
        return None;
    }
    Some(ConjunctiveQuery::new(q.head.clone(), answerable))
}

/// Chooses a concrete adornment (access pattern) for every literal of an
/// executable-ordered body, for display and for Definition 2's notion of a
/// `P`-adornment. Positive literals get the most selective usable pattern;
/// negative literals get the membership-test pattern.
///
/// Returns `None` if the body is not executable in its given order.
pub fn choose_adornments(
    q: &ConjunctiveQuery,
    schema: &Schema,
) -> Option<Vec<AccessPattern>> {
    let mut bound: HashSet<Var> = HashSet::new();
    let mut out = Vec::with_capacity(q.body.len());
    for lit in &q.body {
        let decl = schema.relation(lit.atom.predicate.name)?;
        let arg_bound = |j: usize| match lit.atom.args[j] {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(&v),
        };
        let pattern = if lit.positive {
            decl.usable_pattern(arg_bound)?
        } else {
            if !(0..lit.atom.args.len()).all(arg_bound) {
                return None;
            }
            decl.usable_pattern(|_| true)?
        };
        out.push(pattern);
        bound.extend(lit.vars());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_program;

    fn program(text: &str) -> (UnionQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().clone(), p.schema)
    }

    #[test]
    fn example_1_not_executable_but_orderable() {
        let (q, schema) = program(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        assert!(!is_executable(&q, &schema));
        assert!(is_orderable(&q, &schema));
        let ordered = executable_order(&q.disjuncts[0], &schema).unwrap();
        assert!(is_executable_cq(&ordered, &schema));
    }

    #[test]
    fn example_3_not_orderable() {
        let (q, schema) = program(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        assert!(!is_orderable(&q, &schema));
        // …but its equivalent rewriting is executable as written.
        let (q2, schema2) = program(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- L(i), B(i, a, t).",
        );
        assert!(is_executable(&q2, &schema2));
    }

    #[test]
    fn executable_implies_orderable() {
        let (q, schema) = program(
            "S^o. R^io.\n\
             Q(x, y) :- S(x), R(x, y).",
        );
        assert!(is_executable(&q, &schema));
        assert!(is_orderable(&q, &schema));
    }

    #[test]
    fn adornment_choice_prefers_selective_patterns() {
        let (q, schema) = program(
            "C^oo. B^ioo. B^oio.\n\
             Q(t) :- C(i, a), B(i, a, t).",
        );
        let adorn = choose_adornments(&q.disjuncts[0], &schema).unwrap();
        assert_eq!(adorn[0].to_string(), "oo");
        // With i and a both bound, B^ioo (1 input) vs B^oio (1 input):
        // either is usable; the tie-break picks the max-input one, both
        // have one input — accept either.
        assert_eq!(adorn[1].num_inputs(), 1);
    }

    #[test]
    fn adornments_fail_on_non_executable_order() {
        let (q, schema) = program(
            "B^ioo. C^oo.\n\
             Q(t) :- B(i, a, t), C(i, a).",
        );
        assert!(choose_adornments(&q.disjuncts[0], &schema).is_none());
    }

    #[test]
    fn negated_ground_literal_is_executable_first() {
        let (q, schema) = program(
            "L^o. C^oo.\n\
             Q(i) :- not L(3), C(i, a).",
        );
        assert!(is_executable(&q, &schema));
    }

    #[test]
    fn false_union_is_vacuously_executable() {
        let (q, schema) = program("L^o.\nQ(x) :- false.");
        assert!(is_executable(&q, &schema));
        assert!(is_orderable(&q, &schema));
    }

    #[test]
    fn executability_is_order_sensitive_orderability_is_not() {
        let (q, schema) = program(
            "S^o. R^io.\n\
             Q(x, y) :- R(x, y), S(x).",
        );
        assert!(!is_executable(&q, &schema));
        assert!(is_orderable(&q, &schema));
    }
}
