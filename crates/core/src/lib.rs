//! The algorithms of *Nash & Ludäscher, "Processing Unions of Conjunctive
//! Queries with Negation under Limited Access Patterns" (EDBT 2004)*.
//!
//! | Paper item | Entry point |
//! |---|---|
//! | Fig. 1 — ANSWERABLE, `ans(Q)` (Defs. 6–7) | [`answerable_split`], [`ans`] |
//! | Defs. 3–4 — executable / orderable | [`is_executable`], [`is_orderable`], [`executable_order`] |
//! | Fig. 2 — PLAN\* (`Qᵘ`, `Qᵒ`) | [`plan_star`] |
//! | Fig. 3 — FEASIBLE | [`feasible`], [`feasible_detailed`] |
//! | Fig. 4 — ANSWER\* | [`answer_star`], [`answer_star_with_domain`] |
//! | Thm. 18 / Prop. 20 — hardness reductions | [`containment_to_feasibility`], [`containment_to_feasibility_cqn`] |
//!
//! ```
//! use lap_core::{feasible_detailed, DecisionPath};
//! use lap_ir::parse_program;
//!
//! // Example 1 of the paper: not executable as written, but feasible —
//! // and PLAN* detects it without any containment check.
//! let p = parse_program(
//!     "B^ioo. B^oio. C^oo. L^o.\n\
//!      Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
//! )
//! .unwrap();
//! let report = feasible_detailed(p.single_query().unwrap(), &p.schema);
//! assert!(report.feasible);
//! assert_eq!(report.decided_by, DecisionPath::PlansCoincide);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod answer;
mod answerable;
mod cache;
mod executable;
mod explain;
mod feasible;
mod plan;
mod prepared;
mod reduction;
mod render;

pub use answer::{
    answer_star, answer_star_obs, answer_star_obs_cfg, answer_star_planned_obs,
    answer_star_planned_obs_cfg, answer_star_replay, answer_star_replay_cfg,
    answer_star_resilient, answer_star_resilient_cfg, answer_star_resilient_planned_cfg,
    answer_star_with_domain, AnswerOutcome, AnswerReport, Completeness, DegradationReport,
    ImprovedAnswerReport,
};
pub use answerable::{
    ans, answerable_literals, answerable_split, is_q_answerable, literal_executable,
    AnswerableSplit,
};
pub use explain::{explain, explain_with, BlockedLiteral, DisjunctDiagnosis, Explanation};
pub use executable::{
    choose_adornments, executable_order, is_executable, is_executable_cq, is_orderable,
    is_orderable_cq,
};
pub use feasible::{
    feasible, feasible_detailed, feasible_detailed_obs, feasible_detailed_with, DecisionPath,
    FeasibilityReport,
};
pub use lap_containment::{ContainmentEngine, ContainmentStats, EngineConfig, EngineStats};
pub use plan::{lower_pair, plan_star, plan_star_obs, CqPlan, PhysicalPair, PlanPair, UnionPlan};
pub use cache::{canonical_text, PlanCache, PlanCacheEntry, PlanCacheStats, DEFAULT_CACHE_BYTES};
pub use prepared::{PreparedProgram, PreparedQuery};
pub use render::{render_answer_report, render_outcome};
pub use reduction::{
    containment_to_feasibility, containment_to_feasibility_cqn, FeasibilityInstance,
};
