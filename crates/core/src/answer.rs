//! Algorithm ANSWER\* (paper, Figure 4): runtime processing of plans with
//! completeness information, plus the domain-enumeration refinement of the
//! underestimate (Section 4.2, Example 8).

use crate::plan::{lower_pair, plan_star_obs, PlanPair};
use lap_engine::{
    enumerate_domain, execute_physical_union, execute_physical_union_degraded, lower_union,
    CallStats, Database, DisjunctDegradation, EngineError, ExecConfig, FaultConfig,
    ReplaySource, ResilienceConfig, RetryPolicy, SourceRegistry, Tuple, Value,
};
use lap_ir::{Atom, ConjunctiveQuery, Literal, Predicate, Schema, Term, UnionQuery, Var};
use lap_obs::{Json, Recorder};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// Completeness information attached to a runtime answer (Figure 4's
/// output messages, as data).
#[derive(Clone, Debug, PartialEq)]
pub enum Completeness {
    /// `Δ = ∅`: the underestimate *is* the complete answer — even if the
    /// query is infeasible (Example 5).
    Complete,
    /// `Δ ≠ ∅`, null-free: the answer is at least `|ansᵤ| / |ansₒ|`
    /// complete.
    AtLeast(f64),
    /// `Δ` contains nulls: no numeric bound can be given (Example 7).
    Unknown,
}

/// The result of running ANSWER\* on an instance.
#[derive(Clone, Debug, PartialEq)]
pub struct AnswerReport {
    /// `ansᵤ` — the certain answers produced by `Qᵘ`.
    pub under: BTreeSet<Tuple>,
    /// `ansₒ` — the possible answers produced by `Qᵒ` (may contain nulls).
    pub over: BTreeSet<Tuple>,
    /// `Δ = ansₒ ∖ ansᵤ` — the tuples that *may* be part of the answer.
    pub delta: BTreeSet<Tuple>,
    /// The completeness verdict.
    pub completeness: Completeness,
    /// Source-call statistics for evaluating both plans.
    pub stats: CallStats,
    /// The plans that were executed.
    pub plans: PlanPair,
}

impl AnswerReport {
    /// True iff the answer is known complete at runtime.
    pub fn is_complete(&self) -> bool {
        matches!(self.completeness, Completeness::Complete)
    }
}

/// Algorithm ANSWER\* (Figure 4): compute `Qᵘ`, `Qᵒ` with PLAN\*, evaluate
/// both against `db` through pattern-enforcing sources, and report the
/// underestimate together with `Δ` and completeness information.
pub fn answer_star(
    q: &UnionQuery,
    schema: &Schema,
    db: &Database,
) -> Result<AnswerReport, EngineError> {
    answer_star_obs(q, schema, db, &Recorder::disabled())
}

/// [`answer_star`] under `recorder`: the whole run executes in an
/// `answer*` span with `plan*`, `answer*.under`, and `answer*.over`
/// sub-spans (each evaluation phase with per-disjunct sub-spans), and the
/// source registry reports its call counters as `source.*` metrics.
pub fn answer_star_obs(
    q: &UnionQuery,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
) -> Result<AnswerReport, EngineError> {
    answer_star_obs_cfg(q, schema, db, recorder, ExecConfig::default())
}

/// [`answer_star_obs`] under an explicit executor configuration (batch
/// width, columnar vs row executor, I/O workers). Answers are identical
/// across configurations; only the execution shape changes.
pub fn answer_star_obs_cfg(
    q: &UnionQuery,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
    cfg: ExecConfig,
) -> Result<AnswerReport, EngineError> {
    let _span = recorder.span("answer*");
    stamp_journal_meta(recorder, "answer*", q, &RetryPolicy::default(), None, cfg);
    let plans = plan_star_obs(q, schema, recorder);
    let physical = lower_pair(&plans, schema);
    let mut reg =
        SourceRegistry::new(db, schema).recording(recorder).with_io_workers(cfg.io_workers);
    let under = {
        let _under = recorder.span("answer*.under");
        execute_physical_union(&physical.under, &mut reg, cfg)?
    };
    let over = {
        let _over = recorder.span("answer*.over");
        execute_physical_union(&physical.over, &mut reg, cfg)?
    };
    let stats = reg.stats();
    Ok(build_report(under, over, stats, plans))
}

/// [`answer_star_obs`] executing a **pre-optimized** plan pair instead of
/// re-running PLAN\* — the entry point of the feedback loop, where the
/// caller has re-ordered PLAN\*'s output under a journal-calibrated cost
/// model (`lap_planner::optimize_plan_pair`). The pair must be an
/// answer-equivalent reordering of PLAN\*'s plans for `q` (re-ordering an
/// executable body never changes its answers, only its calls), so the
/// report is exactly what [`answer_star_obs`] would have produced, at the
/// calibrated plan's cost.
pub fn answer_star_planned_obs(
    q: &UnionQuery,
    plans: &PlanPair,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
) -> Result<AnswerReport, EngineError> {
    answer_star_planned_obs_cfg(q, plans, schema, db, recorder, ExecConfig::default())
}

/// [`answer_star_planned_obs`] under an explicit executor configuration.
pub fn answer_star_planned_obs_cfg(
    q: &UnionQuery,
    plans: &PlanPair,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
    cfg: ExecConfig,
) -> Result<AnswerReport, EngineError> {
    let _span = recorder.span("answer*");
    stamp_journal_meta(recorder, "answer*.planned", q, &RetryPolicy::default(), None, cfg);
    let physical = lower_pair(plans, schema);
    let mut reg =
        SourceRegistry::new(db, schema).recording(recorder).with_io_workers(cfg.io_workers);
    let under = {
        let _under = recorder.span("answer*.under");
        execute_physical_union(&physical.under, &mut reg, cfg)?
    };
    let over = {
        let _over = recorder.span("answer*.over");
        execute_physical_union(&physical.over, &mut reg, cfg)?
    };
    let stats = reg.stats();
    Ok(build_report(under, over, stats, plans.clone()))
}

pub(crate) fn build_report(
    under: BTreeSet<Tuple>,
    over: BTreeSet<Tuple>,
    stats: CallStats,
    plans: PlanPair,
) -> AnswerReport {
    let delta: BTreeSet<Tuple> = over.difference(&under).cloned().collect();
    let completeness = if delta.is_empty() {
        Completeness::Complete
    } else if delta.iter().any(|t| t.iter().any(|v| v.is_null())) {
        Completeness::Unknown
    } else {
        // Δ is null-free and non-empty, so |ansₒ| ≥ 1.
        Completeness::AtLeast(under.len() as f64 / over.len() as f64)
    };
    AnswerReport {
        under,
        over,
        delta,
        completeness,
        stats,
        plans,
    }
}

/// Which disjuncts a degraded ANSWER\* run had to drop, per plan.
///
/// Empty on a fault-free run. A dropped underestimate disjunct *shrinks*
/// `ansᵤ` (still sound: every reported answer is certain); a dropped
/// overestimate disjunct *breaks the cover* `ansₒ ⊇ answer`, so no
/// completeness bound can be trusted and the verdict falls to
/// [`Completeness::Unknown`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Disjuncts dropped while evaluating `Qᵘ`.
    pub under: Vec<DisjunctDegradation>,
    /// Disjuncts dropped while evaluating `Qᵒ`.
    pub over: Vec<DisjunctDegradation>,
}

impl DegradationReport {
    /// Did any disjunct degrade?
    pub fn is_degraded(&self) -> bool {
        !self.under.is_empty() || !self.over.is_empty()
    }

    /// Total dropped disjuncts across both plans.
    pub fn total(&self) -> usize {
        self.under.len() + self.over.len()
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_degraded() {
            return write!(f, "no degradation");
        }
        let mut first = true;
        for (plan, drops) in [("under", &self.under), ("over", &self.over)] {
            for d in drops {
                if !first {
                    writeln!(f)?;
                }
                first = false;
                write!(f, "[{plan}] {d}")?;
            }
        }
        Ok(())
    }
}

/// The result of a resilient ANSWER\* run: the usual report plus an
/// account of what was lost to source failures.
#[derive(Clone, Debug, PartialEq)]
pub struct AnswerOutcome {
    /// The ANSWER\* report over the *surviving* disjuncts. Its
    /// completeness verdict already accounts for degradation (never
    /// [`Completeness::Complete`] when any disjunct dropped).
    pub report: AnswerReport,
    /// Per-disjunct degradations, split by plan.
    pub degradation: DegradationReport,
    /// Fetch re-attempts issued during the run.
    pub retries: u64,
    /// Transport faults observed (including recovered ones).
    pub failures: u64,
    /// Virtual milliseconds of injected latency and backoff.
    pub virtual_ms: u64,
}

/// ANSWER\* in degradation mode: evaluates both plans through a registry
/// under `resilience` (optional fault injection plus a retry policy), and
/// instead of aborting when a source exhausts its retries, drops only the
/// affected disjunct and reports it.
///
/// The degraded underestimate stays *sound* — every disjunct either
/// contributes exactly its fault-free rows or nothing, so
/// `ansᵤ(degraded) ⊆ ansᵤ(fault-free) ⊆ answer` — while the completeness
/// verdict is downgraded honestly: a degraded run never claims
/// [`Completeness::Complete`], and any overestimate drop (which breaks the
/// `ansₒ ⊇ answer` cover) forces [`Completeness::Unknown`].
pub fn answer_star_resilient(
    q: &UnionQuery,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
    resilience: &ResilienceConfig,
) -> Result<AnswerOutcome, EngineError> {
    answer_star_resilient_cfg(q, schema, db, recorder, resilience, ExecConfig::default())
}

/// [`answer_star_resilient`] under an explicit executor configuration —
/// the way to run the resilient path with overlapped source I/O
/// (`cfg.io_workers > 1`). Answers, degradation, and retry/failure
/// accounting are bit-identical across worker counts; only `virtual_ms`
/// shrinks, since overlapped batches charge their longest worker lane and
/// the under/over phases of the pair overlap too.
pub fn answer_star_resilient_cfg(
    q: &UnionQuery,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
    resilience: &ResilienceConfig,
    cfg: ExecConfig,
) -> Result<AnswerOutcome, EngineError> {
    let _span = recorder.span("answer*");
    stamp_journal_meta(
        recorder,
        "answer*.resilient",
        q,
        &resilience.retry,
        resilience.fault.as_ref(),
        cfg,
    );
    let plans = plan_star_obs(q, schema, recorder);
    let physical = lower_pair(&plans, schema);
    let mut reg = SourceRegistry::new(db, schema)
        .recording(recorder)
        .with_io_workers(cfg.io_workers)
        .with_retry(resilience.retry);
    if let Some(fault) = &resilience.fault {
        reg = reg.with_fault_injection(*fault);
    }
    run_degraded_pair(&physical, &mut reg, cfg, recorder, plans)
}

/// [`answer_star_resilient_cfg`] executing a **pre-optimized** plan pair
/// (see [`answer_star_planned_obs`] for the contract): the resilient leg
/// of the feedback loop, where a calibrated ordering steers calls away
/// from degraded sources before retries and backoff waits pile up.
pub fn answer_star_resilient_planned_cfg(
    q: &UnionQuery,
    plans: &PlanPair,
    schema: &Schema,
    db: &Database,
    recorder: &Recorder,
    resilience: &ResilienceConfig,
    cfg: ExecConfig,
) -> Result<AnswerOutcome, EngineError> {
    let _span = recorder.span("answer*");
    stamp_journal_meta(
        recorder,
        "answer*.resilient.planned",
        q,
        &resilience.retry,
        resilience.fault.as_ref(),
        cfg,
    );
    let physical = lower_pair(plans, schema);
    let mut reg = SourceRegistry::new(db, schema)
        .recording(recorder)
        .with_io_workers(cfg.io_workers)
        .with_retry(resilience.retry);
    if let Some(fault) = &resilience.fault {
        reg = reg.with_fault_injection(*fault);
    }
    run_degraded_pair(&physical, &mut reg, cfg, recorder, plans.clone())
}

/// Evaluates a lowered plan pair in degradation mode and assembles the
/// [`AnswerOutcome`] — the shared tail of [`answer_star_resilient`] and
/// [`answer_star_replay`].
pub(crate) fn run_degraded_pair(
    physical: &crate::plan::PhysicalPair,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
    recorder: &Recorder,
    plans: PlanPair,
) -> Result<AnswerOutcome, EngineError> {
    let base_wall = reg.virtual_elapsed_ms();
    let (under, under_drops) = {
        let _under = recorder.span("answer*.under");
        execute_physical_union_degraded(&physical.under, reg, cfg)?
    };
    let under_wall = reg.virtual_elapsed_ms();
    reg.reset_clock();
    let (over, over_drops) = {
        let _over = recorder.span("answer*.over");
        execute_physical_union_degraded(&physical.over, reg, cfg)?
    };
    let degradation = DegradationReport { under: under_drops, over: over_drops };
    let retries = reg.retries_observed();
    let failures = reg.failures_observed();
    // Overlapped runs overlap the under/over phases of the pair too: the
    // wall clock charges the longer phase, not the sum.
    let virtual_ms = if cfg.io_workers > 1 {
        let over_wall = reg.virtual_elapsed_ms() - under_wall;
        base_wall + (under_wall - base_wall).max(over_wall)
    } else {
        reg.virtual_elapsed_ms()
    };
    let mut report = build_report(under, over, reg.stats(), plans);
    let base = report.completeness.clone();
    report.completeness = degrade_completeness(base, &report, &degradation);
    Ok(AnswerOutcome { report, degradation, retries, failures, virtual_ms })
}

/// Replays a recorded ANSWER\* run: every source call is served from
/// `source` (a [`ReplaySource`] decoded from a flight-recorder journal)
/// instead of a live database, under the *same* retry policy the original
/// run used. Everything above the transport — planning, lowering, the
/// retry loop, the virtual clock, degradation — is deterministic, so the
/// outcome reproduces the recorded run bit for bit.
pub fn answer_star_replay(
    q: &UnionQuery,
    schema: &Schema,
    source: ReplaySource,
    retry: RetryPolicy,
    recorder: &Recorder,
) -> Result<AnswerOutcome, EngineError> {
    answer_star_replay_cfg(q, schema, source, retry, recorder, ExecConfig::default())
}

/// [`answer_star_replay`] under an explicit executor configuration. A
/// recorded overlapped run must be replayed at the *same* `io_workers` it
/// recorded with (carried in the journal metadata) for the outcome —
/// including `virtual_ms` — to reproduce bit for bit.
pub fn answer_star_replay_cfg(
    q: &UnionQuery,
    schema: &Schema,
    source: ReplaySource,
    retry: RetryPolicy,
    recorder: &Recorder,
    cfg: ExecConfig,
) -> Result<AnswerOutcome, EngineError> {
    let _span = recorder.span("answer*");
    stamp_journal_meta(recorder, "answer*.replay", q, &retry, None, cfg);
    let plans = plan_star_obs(q, schema, recorder);
    let physical = lower_pair(&plans, schema);
    let mut reg = SourceRegistry::with_source(Box::new(source), schema)
        .recording(recorder)
        .with_io_workers(cfg.io_workers)
        .with_retry(retry);
    run_degraded_pair(&physical, &mut reg, cfg, recorder, plans)
}

/// Stamps run metadata on the recorder's journal (no-op without one) so a
/// snapshot carries everything a replay needs: what ran, the query text,
/// the retry policy, the fault config, and the journal's own fidelity.
pub(crate) fn stamp_journal_meta(
    recorder: &Recorder,
    run_kind: &str,
    q: &UnionQuery,
    retry: &RetryPolicy,
    fault: Option<&FaultConfig>,
    exec: ExecConfig,
) {
    if let Some(journal) = recorder.journal() {
        let cfg = journal.config();
        journal.merge_meta([
            ("kind", Json::str(run_kind)),
            ("query", Json::str(q.to_string())),
            ("retry", retry.to_json()),
            ("fault", fault.map_or(Json::Null, FaultConfig::to_json)),
            ("io_workers", Json::num(exec.io_workers.max(1) as u64)),
            ("batch_width", Json::num(exec.batch_size.max(1) as u64)),
            ("columnar", Json::Bool(exec.columnar)),
            (
                "journal",
                Json::obj([
                    ("capture_rows", Json::Bool(cfg.capture_rows)),
                    ("sample_every", Json::num(cfg.sample_every)),
                ]),
            ),
        ]);
    }
}

/// Downgrades a completeness verdict for what degradation destroyed.
pub(crate) fn degrade_completeness(
    base: Completeness,
    report: &AnswerReport,
    degradation: &DegradationReport,
) -> Completeness {
    if !degradation.is_degraded() {
        return base;
    }
    // A dropped overestimate disjunct breaks `ansₒ ⊇ answer`: neither
    // `Δ = ∅` nor a |ansᵤ|/|ansₒ| ratio means anything any more.
    if !degradation.over.is_empty() || report.over.is_empty() {
        return Completeness::Unknown;
    }
    // Only the underestimate degraded: the cover still holds, so the ratio
    // bound is still sound — but "complete" is no longer claimable.
    if report.delta.iter().any(|t| t.iter().any(|v| v.is_null())) {
        return Completeness::Unknown;
    }
    Completeness::AtLeast(report.under.len() as f64 / report.over.len() as f64)
}

/// The result of [`answer_star_with_domain`]: the plain report plus the
/// improved underestimate.
#[derive(Clone, Debug, PartialEq)]
pub struct ImprovedAnswerReport {
    /// The base ANSWER\* report.
    pub base: AnswerReport,
    /// The improved `ansᵤ`, evaluated with `dom(x)` views substituted for
    /// the missing bindings of unanswerable literals. Always a superset of
    /// `base.under` and a subset of the true answer.
    pub improved_under: BTreeSet<Tuple>,
    /// Whether domain enumeration reached its fixpoint within budget.
    pub domain_complete: bool,
    /// Source calls spent on domain enumeration.
    pub domain_calls: u64,
    /// Calls + tuples spent evaluating the improved plans.
    pub improved_stats: CallStats,
}

/// ANSWER\* with the Section-4.2 underestimate refinement: for every
/// disjunct with a non-empty unanswerable part, re-admit it by prefixing
/// `dom(v)` atoms for each variable the unanswerable literals need, where
/// `dom` is a domain-enumeration view over the sources (Example 8).
///
/// `domain_budget` caps the number of source calls spent enumerating the
/// domain.
pub fn answer_star_with_domain(
    q: &UnionQuery,
    schema: &Schema,
    db: &Database,
    domain_budget: u64,
) -> Result<ImprovedAnswerReport, EngineError> {
    let base = answer_star(q, schema, db)?;

    // Enumerate the reachable domain, seeded with the query's constants.
    let mut seed: BTreeSet<Value> = BTreeSet::new();
    for cq in &q.disjuncts {
        for lit in &cq.body {
            for &arg in &lit.atom.args {
                if let Term::Const(c) = arg {
                    seed.insert(Value::from(c));
                }
            }
        }
    }
    let mut reg = SourceRegistry::with_cache(db, schema);
    let dom = enumerate_domain(&mut reg, &seed, domain_budget)?;
    let domain_calls = reg.stats().calls;

    // Materialize dom as an auxiliary relation the improved plans can scan.
    let dom_pred = Predicate::new("_dom", 1);
    let mut db2 = db.clone();
    for &v in &dom.values {
        db2.insert("_dom", vec![v])?;
    }
    let mut schema2 = schema.clone();
    schema2
        .add_pattern_str("_dom", "o")
        .expect("fresh unary relation");
    let _ = dom_pred;

    // Build improved plans: answerable part, then dom(v) for each variable
    // still unbound, then the unanswerable literals (all bound now).
    let mut parts: Vec<(ConjunctiveQuery, Vec<Var>)> = Vec::new();
    for cq in &q.disjuncts {
        let split = crate::answerable::answerable_split(cq, schema);
        if split.unsatisfiable {
            continue;
        }
        let mut body: Vec<Literal> = split.answerable.clone();
        if !split.unanswerable.is_empty() {
            let bound: HashSet<Var> = body.iter().flat_map(|l| l.vars()).collect();
            let mut needed: Vec<Var> = Vec::new();
            for lit in &split.unanswerable {
                for v in lit.vars() {
                    if !bound.contains(&v) && !needed.contains(&v) {
                        needed.push(v);
                    }
                }
            }
            for v in &needed {
                body.push(Literal::pos(Atom::from_parts("_dom", vec![Term::Var(*v)])));
            }
            body.extend(split.unanswerable.iter().cloned());
        }
        parts.push((ConjunctiveQuery::new(cq.head.clone(), body), Vec::new()));
    }

    let improved = lower_union(&parts, &schema2);
    let mut reg2 = SourceRegistry::new(&db2, &schema2);
    let improved_under = execute_physical_union(&improved, &mut reg2, ExecConfig::default())?;
    debug_assert!(
        base.under.is_subset(&improved_under),
        "domain refinement must not lose certain answers"
    );
    Ok(ImprovedAnswerReport {
        base,
        improved_under,
        domain_complete: dom.complete,
        domain_calls,
        improved_stats: reg2.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_program;

    fn run(text: &str, facts: &str) -> AnswerReport {
        let p = parse_program(text).unwrap();
        let db = Database::from_facts(facts).unwrap();
        answer_star(p.single_query().unwrap(), &p.schema, &db).unwrap()
    }

    const EX4: &str = "S^o. R^oo. B^ii. T^oo.\n\
                       Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
                       Q(x, y) :- T(x, y).";

    #[test]
    fn example_5_runtime_complete_despite_infeasibility() {
        // R(x,z), ¬S(z) produces nothing (all R.z values are in S), so the
        // unanswerable B is irrelevant and the answer is complete.
        let report = run(EX4, "R(1, 10). S(10). T(7, 8).");
        assert!(report.is_complete());
        assert_eq!(report.under.len(), 1);
        assert!(report.under.contains(&vec![Value::int(7), Value::int(8)]));
        assert_eq!(report.delta.len(), 0);
    }

    #[test]
    fn example_7_null_tuple_in_delta() {
        // R(a, b) with ¬S(b) satisfied: the overestimate contributes
        // (a, null) and no completeness bound can be given.
        let report = run(EX4, r#"R(1, 10). S(99). T(7, 8). B(1, 5)."#);
        assert_eq!(report.completeness, Completeness::Unknown);
        assert!(report
            .delta
            .contains(&vec![Value::int(1), Value::Null]));
        // The true answer contains (1, 5); the underestimate misses it.
        assert!(!report.under.contains(&vec![Value::int(1), Value::int(5)]));
    }

    #[test]
    fn ratio_when_delta_null_free() {
        // Two disjuncts, no nulls: F^o fully answerable; G-with-B dropped
        // from Qᵘ but its answerable part G(x) (head var x bound) has no
        // nulls, so Δ is null-free.
        let text = "F^o. G^o. B^i.\n\
                    Q(x) :- F(x).\n\
                    Q(x) :- G(x), B(y).";
        let report = run(text, "F(1). G(2). B(5).");
        match report.completeness {
            Completeness::AtLeast(r) => assert!((r - 0.5).abs() < 1e-9),
            other => panic!("expected AtLeast, got {other:?}"),
        }
        assert_eq!(report.delta.len(), 1);
    }

    #[test]
    fn feasible_query_always_complete_at_runtime() {
        let text = "B^ioo. B^oio. C^oo. L^o.\n\
                    Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).";
        let report = run(
            text,
            r#"B(1, "a", "t1"). B(2, "b", "t2"). C(1, "a"). C(2, "b"). L(1)."#,
        );
        assert!(report.is_complete());
        assert_eq!(report.under.len(), 1);
    }

    #[test]
    fn stats_are_collected() {
        let text = "C^oo.\nQ(i) :- C(i, a).";
        let report = run(text, r#"C(1, "a"). C(2, "b")."#);
        // Qᵘ and Qᵒ coincide; both are evaluated: 2 calls total.
        assert_eq!(report.stats.calls, 2);
        assert!(report.stats.tuples_returned >= 4);
    }

    #[test]
    fn example_8_domain_improvement_recovers_answers() {
        // B^ii unanswerable in Q1; dom enumeration finds B's second column
        // values via R and S scans... here dom comes from R^oo and T^oo.
        let text = "S^o. R^oo. B^ii. T^oo.\n\
                    Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
                    Q(x, y) :- T(x, y).";
        let p = parse_program(text).unwrap();
        let db = Database::from_facts("R(1, 10). B(1, 10). T(7, 8).").unwrap();
        let rep = answer_star_with_domain(p.single_query().unwrap(), &p.schema, &db, 10_000)
            .unwrap();
        // Base underestimate has only the T tuple.
        assert_eq!(rep.base.under.len(), 1);
        // dom ⊇ {1, 10, 7, 8}; B(1, 10) becomes checkable: (1, 10) is a
        // certain answer now.
        assert!(rep.improved_under.contains(&vec![Value::int(1), Value::int(10)]));
        assert_eq!(rep.improved_under.len(), 2);
        assert!(rep.domain_complete);
    }

    #[test]
    fn resilient_run_without_faults_matches_answer_star() {
        let text = "B^ioo. B^oio. C^oo. L^o.\n\
                    Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).";
        let facts = r#"B(1, "a", "t1"). B(2, "b", "t2"). C(1, "a"). C(2, "b"). L(1)."#;
        let p = parse_program(text).unwrap();
        let db = Database::from_facts(facts).unwrap();
        let q = p.single_query().unwrap();
        let plain = answer_star(q, &p.schema, &db).unwrap();
        let outcome = answer_star_resilient(
            q,
            &p.schema,
            &db,
            &Recorder::disabled(),
            &lap_engine::ResilienceConfig::chaos(0.0, 42),
        )
        .unwrap();
        assert_eq!(outcome.report, plain);
        assert!(!outcome.degradation.is_degraded());
        assert_eq!(outcome.retries, 0);
        assert_eq!(outcome.failures, 0);
    }

    #[test]
    fn total_outage_degrades_every_disjunct_and_reports_unknown() {
        let text = "F^o. G^o.\n\
                    Q(x) :- F(x).\n\
                    Q(x) :- G(x).";
        let p = parse_program(text).unwrap();
        let db = Database::from_facts("F(1). G(2).").unwrap();
        let outcome = answer_star_resilient(
            p.single_query().unwrap(),
            &p.schema,
            &db,
            &Recorder::disabled(),
            &lap_engine::ResilienceConfig::chaos(1.0, 7),
        )
        .unwrap();
        assert!(outcome.report.under.is_empty());
        assert_eq!(outcome.degradation.under.len(), 2);
        assert_eq!(outcome.degradation.over.len(), 2);
        assert_eq!(outcome.report.completeness, Completeness::Unknown);
        assert!(outcome.failures > 0);
        let shown = outcome.degradation.to_string();
        assert!(shown.contains("[under]"), "{shown}");
        assert!(shown.contains("unavailable"), "{shown}");
    }

    #[test]
    fn degraded_run_never_claims_complete() {
        // Sweep seeds at a high fault rate; whenever any disjunct dropped,
        // the verdict must be non-exact and the underestimate sound.
        let text = "F^o. G^o.\n\
                    Q(x) :- F(x).\n\
                    Q(x) :- G(x).";
        let p = parse_program(text).unwrap();
        let db = Database::from_facts("F(1). G(2). G(3).").unwrap();
        let q = p.single_query().unwrap();
        let fault_free = answer_star(q, &p.schema, &db).unwrap();
        let mut saw_degraded = false;
        for seed in 0..32u64 {
            let outcome = answer_star_resilient(
                q,
                &p.schema,
                &db,
                &Recorder::disabled(),
                &lap_engine::ResilienceConfig::chaos(0.4, seed),
            )
            .unwrap();
            assert!(
                outcome.report.under.is_subset(&fault_free.under),
                "seed {seed}: degraded answers must be a subset"
            );
            if outcome.degradation.is_degraded() {
                saw_degraded = true;
                assert!(
                    !outcome.report.is_complete(),
                    "seed {seed}: degraded run claimed completeness"
                );
            }
        }
        assert!(saw_degraded, "rate 0.4 over 32 seeds must degrade at least once");
    }

    #[test]
    fn domain_improvement_never_loses_answers() {
        let text = "F^o. G^o. B^i.\n\
                    Q(x) :- F(x).\n\
                    Q(x) :- G(x), B(y).";
        let p = parse_program(text).unwrap();
        let db = Database::from_facts("F(1). G(2). B(1).").unwrap();
        let rep =
            answer_star_with_domain(p.single_query().unwrap(), &p.schema, &db, 10_000).unwrap();
        assert!(rep.base.under.is_subset(&rep.improved_under));
        // B(1) is reachable? dom = {1, 2} via F^o, G^o; B^i called with 1
        // and 2; B(1) holds, so G(2), B(y=1) succeeds: 2 joins the answers.
        assert!(rep.improved_under.contains(&vec![Value::int(2)]));
    }
}
