//! Canonical text rendering of answer reports and outcomes.
//!
//! `lapq run` prints an [`AnswerReport`] to stdout; the `lapd` daemon
//! ships the same report to a remote client inside a response frame. The
//! acceptance bar for the daemon is **byte identity**: for the same
//! program and facts, the daemon's answer text must equal the one-shot
//! CLI's output exactly, so clients (and the CI smoke test) can `cmp`
//! them. The only way to keep two call sites byte-identical is to have
//! one renderer — this module. `lapq` prints these strings; the daemon
//! frames them; nobody formats a report by hand.

use crate::answer::{AnswerOutcome, AnswerReport, Completeness};
use lap_engine::display_tuple;
use std::fmt::Write as _;

/// Renders the body of an [`AnswerReport`]: certain answers, the
/// completeness verdict, possible extra tuples, and call statistics. Every
/// line is `\n`-terminated; there is no trailing blank line.
pub fn render_answer_report(rep: &AnswerReport) -> String {
    let mut out = String::new();
    for t in &rep.under {
        let _ = writeln!(out, "  {}", display_tuple(t));
    }
    match rep.completeness {
        Completeness::Complete => out.push_str("  -- answer is complete\n"),
        Completeness::AtLeast(r) => {
            let _ = writeln!(out, "  -- answer is not known to be complete (>= {:.0}%)", r * 100.0);
        }
        Completeness::Unknown => out.push_str("  -- answer is not known to be complete\n"),
    }
    if !rep.delta.is_empty() {
        out.push_str("  -- these tuples may be part of the answer:\n");
        for t in &rep.delta {
            let _ = writeln!(out, "     {}", display_tuple(t));
        }
    }
    let _ = writeln!(out, "  -- {}", rep.stats);
    out
}

/// Renders an [`AnswerOutcome`]: the report body, the degradation tail
/// (when any disjunct dropped), the resilience totals, and a trailing
/// blank line — exactly what `lapq run --retry ...` prints per query.
pub fn render_outcome(outcome: &AnswerOutcome) -> String {
    let mut out = render_answer_report(&outcome.report);
    if outcome.degradation.is_degraded() {
        let _ = writeln!(
            out,
            "  -- degraded: {} disjunct(s) dropped after exhausting retries:",
            outcome.degradation.total()
        );
        for line in outcome.degradation.to_string().lines() {
            let _ = writeln!(out, "     {line}");
        }
    }
    let _ = writeln!(
        out,
        "  -- resilience: {} retry(ies), {} source failure(s), {} virtual ms",
        outcome.retries, outcome.failures, outcome.virtual_ms
    );
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_engine::Database;
    use lap_ir::parse_program;
    use lap_obs::Recorder;

    #[test]
    fn report_rendering_covers_every_verdict_shape() {
        let p = parse_program(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        )
        .unwrap();
        let db = Database::from_facts(r#"R(1, 10). S(99). T(7, 8). B(1, 5)."#).unwrap();
        let rep = crate::answer_star(p.single_query().unwrap(), &p.schema, &db).unwrap();
        let text = render_answer_report(&rep);
        assert!(text.contains("  (7, 8)\n"), "{text}");
        assert!(text.contains("  -- answer is not known to be complete\n"), "{text}");
        assert!(text.contains("  -- these tuples may be part of the answer:\n"), "{text}");
        assert!(text.contains("     (1, null)\n"), "{text}");
        assert!(!text.ends_with("\n\n"), "no trailing blank line: {text:?}");

        let complete = crate::answer_star(
            p.single_query().unwrap(),
            &p.schema,
            &Database::from_facts("R(1, 10). S(10). T(7, 8).").unwrap(),
        )
        .unwrap();
        let text = render_answer_report(&complete);
        assert!(text.contains("  -- answer is complete\n"), "{text}");
    }

    #[test]
    fn outcome_rendering_has_resilience_tail_and_trailing_blank() {
        let p = parse_program("F^o. G^o.\nQ(x) :- F(x).\nQ(x) :- G(x).").unwrap();
        let db = Database::from_facts("F(1). G(2).").unwrap();
        let outcome = crate::answer_star_resilient(
            p.single_query().unwrap(),
            &p.schema,
            &db,
            &Recorder::disabled(),
            &lap_engine::ResilienceConfig::chaos(0.0, 1),
        )
        .unwrap();
        let text = render_outcome(&outcome);
        assert!(
            text.contains("  -- resilience: 0 retry(ies), 0 source failure(s), 0 virtual ms\n"),
            "{text}"
        );
        assert!(text.ends_with("\n\n"), "outcome ends with a blank line: {text:?}");

        let degraded = crate::answer_star_resilient(
            p.single_query().unwrap(),
            &p.schema,
            &db,
            &Recorder::disabled(),
            &lap_engine::ResilienceConfig::chaos(1.0, 7),
        )
        .unwrap();
        let text = render_outcome(&degraded);
        assert!(text.contains("disjunct(s) dropped after exhausting retries:"), "{text}");
        assert!(text.contains("     [under]"), "{text}");
    }
}
