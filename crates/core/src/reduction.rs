//! The hardness reductions of Theorem 18 and Proposition 20: containment
//! many-one reduces to feasibility. Used to generate worst-case feasibility
//! instances for the experiment suite (E11) and to test FEASIBLE against
//! the containment engine on adversarial inputs.

use lap_ir::{
    AccessPattern, Atom, ConjunctiveQuery, Literal, Predicate, Schema, Term, UnionQuery, Var,
};

/// A feasibility instance: a query plus the schema of access patterns it is
/// to be decided against.
#[derive(Clone, Debug)]
pub struct FeasibilityInstance {
    /// The constructed query.
    pub query: UnionQuery,
    /// The constructed access patterns.
    pub schema: Schema,
}

/// Theorem 18's construction: given `P, Q ∈ UCQ¬` with the same head,
/// builds `Q' = P' ∨ Q` over a schema where
///
/// * every relation of `P` and `Q` gets the all-output pattern (so `P` and
///   `Q` are executable),
/// * a fresh relation `B` gets pattern `B^i`, and
/// * `P' = P₁ ∧ B(y) ∨ … ∨ P_k ∧ B(y)` for a fresh variable `y`.
///
/// Then `Q'` is feasible **iff** `P ⊑ Q`.
pub fn containment_to_feasibility(p: &UnionQuery, q: &UnionQuery) -> FeasibilityInstance {
    assert_eq!(
        p.signature, q.signature,
        "P and Q must share a head signature"
    );
    let mut schema = Schema::new();
    for pred in p.body_predicates().into_iter().chain(q.body_predicates()) {
        schema
            .add_pattern(pred.name.as_str(), AccessPattern::all_output(pred.arity))
            .expect("consistent arities");
    }
    // Fresh names: the parser cannot produce identifiers containing `$`.
    let b_name = "B$thm18";
    schema
        .add_pattern(b_name, AccessPattern::all_input(1))
        .expect("fresh relation");
    let y = Var::new("_y$thm18");
    let b_pred = Predicate::new(b_name, 1);

    let mut disjuncts = Vec::new();
    for pi in &p.disjuncts {
        let mut cq = pi.clone();
        cq.body
            .push(Literal::pos(Atom::new(b_pred, vec![Term::Var(y)])));
        disjuncts.push(cq);
    }
    disjuncts.extend(q.disjuncts.iter().cloned());
    let query = UnionQuery::new(disjuncts).expect("shared heads");
    FeasibilityInstance { query, schema }
}

/// Proposition 20's construction for CQ¬: given `P, Q ∈ CQ¬` with the same
/// free variables `x̄`, builds
///
/// ```text
/// L(x̄) :- T(u), R̂'₁(u, x̄₁), …, R̂'_k(u, x̄_k),
///                Ŝ'₁(v, ȳ₁), …, Ŝ'_ℓ(v, ȳ_ℓ).
/// ```
///
/// with patterns `T^o`, `R'^{io…o}`, `S'^{io…o}` — `u` is bound by `T`, so
/// the `R'` copies (carrying `P`'s body) are answerable, while `v` is never
/// bound, so the `S'` copies (carrying `Q`'s body) are not. Then `L` is
/// feasible **iff** `P ⊑ Q`.
///
/// As in the paper, "the `Rᵢ`s and `Sᵢ`s are not necessarily distinct": the
/// primed copy of a relation keeps one shared name on both sides — `R'` on
/// the `P` side must be the *same* relation as `R'` on the `Q` side, or the
/// containment mapping `η′: L → ans(L)` underlying the proof could never
/// map the `Q`-side atoms onto the `P`-side ones.
pub fn containment_to_feasibility_cqn(
    p: &ConjunctiveQuery,
    q: &ConjunctiveQuery,
) -> FeasibilityInstance {
    assert_eq!(
        p.head, q.head,
        "P and Q must share an identical head for Proposition 20"
    );
    let mut schema = Schema::new();
    schema
        .add_pattern("T$p20", AccessPattern::all_output(1))
        .expect("fresh");
    let u = Term::Var(Var::new("_u$p20"));
    let v = Term::Var(Var::new("_v$p20"));

    let mut body: Vec<Literal> = Vec::with_capacity(1 + p.body.len() + q.body.len());
    body.push(Literal::pos(Atom::from_parts("T$p20", vec![u])));

    let mut extend = |src: &ConjunctiveQuery, anchor: Term, schema: &mut Schema| {
        for lit in &src.body {
            let name = format!("{}$p20", lit.atom.predicate.name);
            let arity = lit.atom.predicate.arity + 1;
            let mut pattern_word = String::from("i");
            pattern_word.push_str(&"o".repeat(arity - 1));
            schema
                .add_pattern_str(&name, &pattern_word)
                .expect("consistent arity per tagged relation");
            let mut args = Vec::with_capacity(arity);
            args.push(anchor);
            args.extend(lit.atom.args.iter().copied());
            let atom = Atom::from_parts(&name, args);
            body.push(if lit.positive {
                Literal::pos(atom)
            } else {
                Literal::neg(atom)
            });
        }
    };
    extend(p, u, &mut schema);
    extend(q, v, &mut schema);

    let l = ConjunctiveQuery::new(p.head.clone(), body);
    FeasibilityInstance {
        query: UnionQuery::single(l),
        schema,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasible::feasible;
    use lap_containment::{contained, cqn_in_ucqn};
    use lap_ir::{parse_cq, parse_query};

    fn check_thm18(p: &str, q: &str) {
        let p = parse_query(p).unwrap();
        let q = parse_query(q).unwrap();
        let inst = containment_to_feasibility(&p, &q);
        assert_eq!(
            feasible(&inst.query, &inst.schema),
            contained(&p, &q),
            "Theorem 18 equivalence failed for P={p} Q={q}"
        );
    }

    #[test]
    fn theorem_18_on_contained_pair() {
        check_thm18("Q(x) :- R(x), S(x).", "Q(x) :- R(x).");
    }

    #[test]
    fn theorem_18_on_non_contained_pair() {
        check_thm18("Q(x) :- R(x).", "Q(x) :- R(x), S(x).");
    }

    #[test]
    fn theorem_18_with_unions() {
        check_thm18(
            "Q(x) :- F(x).\nQ(x) :- G(x).",
            "Q(x) :- F(x).\nQ(x) :- G(x).\nQ(x) :- H(x).",
        );
        check_thm18("Q(x) :- F(x).\nQ(x) :- G(x).", "Q(x) :- F(x).");
    }

    #[test]
    fn theorem_18_with_negation() {
        check_thm18(
            "Q(x) :- R(x).",
            "Q(x) :- R(x), S(x).\nQ(x) :- R(x), not S(x).",
        );
        check_thm18("Q(x) :- R(x), not S(x).", "Q(x) :- R(x).");
        check_thm18("Q(x) :- R(x).", "Q(x) :- R(x), not S(x).");
    }

    fn check_p20(p: &str, q: &str) {
        let p = parse_cq(p).unwrap();
        let q = parse_cq(q).unwrap();
        let inst = containment_to_feasibility_cqn(&p, &q);
        // For Proposition 20 the relevant containment is P ⊑ P ∧ Q, which
        // equals P ⊑ Q.
        let expected = cqn_in_ucqn(&p, &UnionQuery::single(q.clone()));
        assert_eq!(
            feasible(&inst.query, &inst.schema),
            expected,
            "Proposition 20 equivalence failed for P={p} Q={q}"
        );
    }

    #[test]
    fn proposition_20_on_cq_pairs() {
        check_p20("Q(x) :- R(x), S(x).", "Q(x) :- R(x).");
        check_p20("Q(x) :- R(x).", "Q(x) :- R(x), S(x).");
    }

    #[test]
    fn proposition_20_with_negation() {
        check_p20("Q(x) :- R(x), not S(x).", "Q(x) :- R(x).");
        check_p20("Q(x) :- R(x), S(x).", "Q(x) :- R(x), not S(x).");
        check_p20("Q(x) :- R(x, y), not S(y).", "Q(x) :- R(x, y).");
    }

    #[test]
    fn reduction_schema_makes_p_and_q_executable() {
        let p = parse_query("Q(x) :- R(x), not S(x).").unwrap();
        let q = parse_query("Q(x) :- R(x).").unwrap();
        let inst = containment_to_feasibility(&p, &q);
        // Q (the tail disjuncts) must be executable under the schema.
        let q_part = UnionQuery::new(vec![inst.query.disjuncts.last().unwrap().clone()]).unwrap();
        assert!(crate::executable::is_executable(&q_part, &inst.schema));
        // P' (the head disjuncts) must not be feasible on their own: their
        // B(y) literal is unanswerable.
        let split =
            crate::answerable::answerable_split(&inst.query.disjuncts[0], &inst.schema);
        assert_eq!(split.unanswerable.len(), 1);
    }
}
