//! Prepared queries: compile once, execute many times.
//!
//! The paper separates compile time ("before any specific database
//! instance is considered") from runtime (Section 4). [`PreparedQuery`]
//! materializes that separation as an API: feasibility analysis, plan
//! construction, and (optionally) cost-based validation happen once; each
//! [`PreparedQuery::execute`] then only pays the runtime price.

use crate::answer::{
    build_report, run_degraded_pair, stamp_journal_meta, AnswerOutcome, AnswerReport,
    DegradationReport,
};
use crate::feasible::{feasible_detailed, feasible_detailed_with, DecisionPath, FeasibilityReport};
use crate::plan::{lower_pair, PhysicalPair, PlanPair};
use lap_containment::{ContainmentEngine, EngineConfig};
use lap_engine::{
    execute_physical_union, execute_physical_union_degraded, Database, EngineError, ExecConfig,
    ResilienceConfig, RetryPolicy, SourceRegistry,
};
use lap_ir::{parse_program, Program, Schema, UnionQuery};
use lap_obs::Recorder;
use std::collections::BTreeSet;

/// A query compiled against a schema of access patterns.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    query: UnionQuery,
    schema: Schema,
    report: FeasibilityReport,
    physical: PhysicalPair,
}

impl PreparedQuery {
    /// Compiles `q` against `schema`: runs PLAN\* and FEASIBLE once, then
    /// lowers both plans so [`PreparedQuery::execute`] starts from the
    /// physical operator trees directly.
    pub fn compile(q: &UnionQuery, schema: &Schema) -> PreparedQuery {
        let report = feasible_detailed(q, schema);
        let physical = lower_pair(&report.plans, schema);
        PreparedQuery {
            query: q.clone(),
            schema: schema.clone(),
            report,
            physical,
        }
    }

    /// [`PreparedQuery::compile`] with the feasibility analysis delegated
    /// to `engine` — compiling a batch of queries against one caching
    /// engine shares containment verdicts across them.
    pub fn compile_with(
        q: &UnionQuery,
        schema: &Schema,
        engine: &ContainmentEngine,
    ) -> PreparedQuery {
        let report = feasible_detailed_with(q, schema, engine);
        let physical = lower_pair(&report.plans, schema);
        PreparedQuery {
            query: q.clone(),
            schema: schema.clone(),
            report,
            physical,
        }
    }

    /// The compiled query.
    pub fn query(&self) -> &UnionQuery {
        &self.query
    }

    /// Is the query feasible (answers guaranteed complete on every
    /// instance)?
    pub fn is_feasible(&self) -> bool {
        self.report.feasible
    }

    /// The feasibility analysis, including how it was decided.
    pub fn feasibility(&self) -> &FeasibilityReport {
        &self.report
    }

    /// The compiled plans.
    pub fn plans(&self) -> &PlanPair {
        &self.report.plans
    }

    /// The compiled physical operator trees (lowered once at compile time).
    pub fn physical(&self) -> &PhysicalPair {
        &self.physical
    }

    /// The schema the query was compiled against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replaces the compiled plans and physical trees in place — the
    /// adaptive re-planning hook (`lap_planner::recalibrate_prepared`
    /// re-orders the plan bodies under a journal-calibrated cost model and
    /// re-lowers them after an execution blew its estimates). The
    /// replacement must be answer-equivalent to the compiled plans (a
    /// reordering of the same bodies); the feasibility verdict is kept,
    /// not re-derived.
    pub fn replace_plans(&mut self, plans: PlanPair, physical: PhysicalPair) {
        self.report.plans = plans;
        self.physical = physical;
    }

    /// Executes against an instance (algorithm ANSWER\*, reusing the
    /// compiled physical plans). For feasible queries the overestimate in
    /// the report *is* the exact answer.
    pub fn execute(&self, db: &Database) -> Result<AnswerReport, EngineError> {
        let cfg = ExecConfig::default();
        let mut reg = SourceRegistry::new(db, &self.schema);
        let under = execute_physical_union(&self.physical.under, &mut reg, cfg)?;
        let over = execute_physical_union(&self.physical.over, &mut reg, cfg)?;
        Ok(build_report(under, over, reg.stats(), self.report.plans.clone()))
    }

    /// [`PreparedQuery::execute`] under a recorder and an explicit
    /// executor configuration — the daemon's hot path. Produces exactly
    /// the report [`crate::answer_star_obs_cfg`] would (same spans, same
    /// registry wiring, same physical trees — both lower PLAN\*'s pair
    /// with [`lower_pair`]), minus the per-request planning cost: the
    /// whole point of serving repeated queries from a plan cache.
    pub fn execute_obs_cfg(
        &self,
        db: &Database,
        recorder: &Recorder,
        cfg: ExecConfig,
    ) -> Result<AnswerReport, EngineError> {
        let _span = recorder.span("answer*");
        stamp_journal_meta(
            recorder,
            "answer*.prepared",
            &self.query,
            &RetryPolicy::default(),
            None,
            cfg,
        );
        let mut reg = SourceRegistry::new(db, &self.schema)
            .recording(recorder)
            .with_io_workers(cfg.io_workers);
        let under = {
            let _under = recorder.span("answer*.under");
            execute_physical_union(&self.physical.under, &mut reg, cfg)?
        };
        let over = {
            let _over = recorder.span("answer*.over");
            execute_physical_union(&self.physical.over, &mut reg, cfg)?
        };
        Ok(build_report(under, over, reg.stats(), self.report.plans.clone()))
    }

    /// [`PreparedQuery::execute_resilient`] under a recorder and an
    /// explicit executor configuration, with the same degradation
    /// accounting as [`crate::answer_star_resilient_cfg`] — the daemon's
    /// resilient path.
    pub fn execute_resilient_obs_cfg(
        &self,
        db: &Database,
        recorder: &Recorder,
        resilience: &ResilienceConfig,
        cfg: ExecConfig,
    ) -> Result<AnswerOutcome, EngineError> {
        let _span = recorder.span("answer*");
        stamp_journal_meta(
            recorder,
            "answer*.prepared.resilient",
            &self.query,
            &resilience.retry,
            resilience.fault.as_ref(),
            cfg,
        );
        let mut reg = SourceRegistry::new(db, &self.schema)
            .recording(recorder)
            .with_io_workers(cfg.io_workers)
            .with_retry(resilience.retry);
        if let Some(fault) = &resilience.fault {
            reg = reg.with_fault_injection(*fault);
        }
        run_degraded_pair(&self.physical, &mut reg, cfg, recorder, self.report.plans.clone())
    }

    /// A size estimate for plan-cache accounting: the rendered footprint
    /// of the query, schema, and both physical trees. Not exact heap
    /// bytes — a stable, cheap proxy that grows with what the entry
    /// actually pins.
    pub fn estimated_bytes(&self) -> usize {
        self.query.to_string().len()
            + self.schema.to_string().len()
            + self.physical.under.to_string().len()
            + self.physical.over.to_string().len()
    }

    /// [`PreparedQuery::execute`] in degradation mode: sources run under
    /// `resilience` (fault injection + retries) and a disjunct whose
    /// source stays unavailable is dropped and reported instead of
    /// aborting the run. See [`crate::answer_star_resilient`] for the
    /// soundness and completeness-downgrade contract.
    pub fn execute_resilient(
        &self,
        db: &Database,
        resilience: &ResilienceConfig,
    ) -> Result<AnswerOutcome, EngineError> {
        let cfg = ExecConfig::default();
        let mut reg = SourceRegistry::new(db, &self.schema).with_retry(resilience.retry);
        if let Some(fault) = &resilience.fault {
            reg = reg.with_fault_injection(*fault);
        }
        let (under, under_drops) = execute_physical_union_degraded(&self.physical.under, &mut reg, cfg)?;
        reg.reset_clock();
        let (over, over_drops) = execute_physical_union_degraded(&self.physical.over, &mut reg, cfg)?;
        let degradation = DegradationReport { under: under_drops, over: over_drops };
        let retries = reg.retries_observed();
        let failures = reg.failures_observed();
        let virtual_ms = reg.virtual_elapsed_ms();
        let mut report = build_report(under, over, reg.stats(), self.report.plans.clone());
        let base = report.completeness.clone();
        report.completeness = crate::answer::degrade_completeness(base, &report, &degradation);
        Ok(AnswerOutcome { report, degradation, retries, failures, virtual_ms })
    }

    /// Executes and returns the *best available* answer set: the exact
    /// answer (overestimate) for feasible null-free plans, the certain
    /// answers otherwise.
    pub fn execute_best(&self, db: &Database) -> Result<BTreeSet<lap_engine::Tuple>, EngineError> {
        let report = self.execute(db)?;
        if self.report.feasible && !self.report.plans.over.has_null() {
            Ok(report.over)
        } else {
            Ok(report.under)
        }
    }

    /// How the feasibility decision was reached (fast path vs containment).
    pub fn decision_path(&self) -> DecisionPath {
        self.report.decided_by
    }

    /// The relation names this query's bodies reference — the daemon's
    /// telemetry watcher uses this to map a drifted source to the cached
    /// entries whose plans depend on it.
    pub fn relations(&self) -> BTreeSet<String> {
        self.query
            .disjuncts
            .iter()
            .flat_map(|cq| &cq.body)
            .map(|lit| lit.atom.predicate.name.as_str().to_owned())
            .collect()
    }
}

/// A whole program compiled once: the parsed [`Program`] plus one
/// [`PreparedQuery`] per query, in program order. This is what the `lapd`
/// plan cache stores per canonical program text — a session that hits the
/// cache executes straight from the physical trees, paying neither parse
/// nor PLAN\*/FEASIBLE nor lowering.
#[derive(Clone, Debug)]
pub struct PreparedProgram {
    program: Program,
    prepared: Vec<PreparedQuery>,
}

impl PreparedProgram {
    /// Parses and compiles `text`, sharing one containment engine across
    /// the program's queries.
    pub fn compile(text: &str) -> Result<PreparedProgram, String> {
        PreparedProgram::compile_with(text, &ContainmentEngine::new(EngineConfig::default()))
    }

    /// [`PreparedProgram::compile`] against a caller-provided (typically
    /// long-lived, memoized) containment engine.
    pub fn compile_with(text: &str, engine: &ContainmentEngine) -> Result<PreparedProgram, String> {
        let program = parse_program(text).map_err(|e| e.to_string())?;
        let prepared = program
            .queries
            .iter()
            .map(|q| PreparedQuery::compile_with(q, &program.schema, engine))
            .collect();
        Ok(PreparedProgram { program, prepared })
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled queries, in program order.
    pub fn queries(&self) -> &[PreparedQuery] {
        &self.prepared
    }

    /// Cache-accounting size estimate: the sum over the compiled queries
    /// (see [`PreparedQuery::estimated_bytes`]).
    pub fn estimated_bytes(&self) -> usize {
        self.prepared.iter().map(PreparedQuery::estimated_bytes).sum()
    }

    /// The union of [`PreparedQuery::relations`] over the program.
    pub fn relations(&self) -> BTreeSet<String> {
        self.prepared.iter().flat_map(PreparedQuery::relations).collect()
    }

    /// A copy of this program with `prepared` substituted for the compiled
    /// queries — the build-aside step of replace-on-publish recalibration
    /// (see [`crate::PlanCache`]): clone the shared entry's queries,
    /// recalibrate the clones, then publish the result as a new entry.
    /// The substitutes must be answer-equivalent recompilations of the
    /// same queries, one per original.
    pub fn with_queries(&self, prepared: Vec<PreparedQuery>) -> PreparedProgram {
        assert_eq!(
            prepared.len(),
            self.prepared.len(),
            "substituted queries must match the program one-for-one"
        );
        PreparedProgram { program: self.program.clone(), prepared }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_engine::eval_oracle;
    use lap_ir::parse_program;

    fn setup(text: &str) -> (UnionQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().clone(), p.schema)
    }

    #[test]
    fn compile_once_execute_many() {
        let (q, schema) = setup(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        let prepared = PreparedQuery::compile(&q, &schema);
        assert!(prepared.is_feasible());
        for facts in [
            r#"B(1, "a", "t"). C(1, "a")."#,
            r#"B(1, "a", "t"). C(1, "a"). L(1)."#,
            r#"C(9, "z")."#,
        ] {
            let db = Database::from_facts(facts).unwrap();
            let rep = prepared.execute(&db).unwrap();
            assert!(rep.is_complete());
            let oracle = eval_oracle(&q, &db).unwrap();
            assert_eq!(rep.under, oracle, "on {facts}");
        }
    }

    #[test]
    fn execute_best_returns_exact_answers_for_feasible_queries() {
        // Example 3: feasible via containment; the underestimate is empty
        // but execute_best returns the exact overestimate.
        let (q, schema) = setup(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        let prepared = PreparedQuery::compile(&q, &schema);
        assert!(prepared.is_feasible());
        let db = Database::from_facts(r#"B(1, "adams", "t"). L(1)."#).unwrap();
        let best = prepared.execute_best(&db).unwrap();
        assert_eq!(best.len(), 1);
        // ANSWER* alone would have reported only the (empty) underestimate.
        let rep = prepared.execute(&db).unwrap();
        assert!(rep.under.is_empty());
    }

    #[test]
    fn prepared_obs_execution_reproduces_answer_star_exactly() {
        // The daemon serves cached PreparedQuery entries; the contract is
        // that their reports — answers, completeness, *and* call stats —
        // are indistinguishable from a one-shot answer_star run.
        let (q, schema) = setup(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        let db = Database::from_facts(
            r#"B(1, "a", "t1"). B(2, "b", "t2"). C(1, "a"). C(2, "b"). L(1)."#,
        )
        .unwrap();
        let prepared = PreparedQuery::compile(&q, &schema);
        for cfg in [ExecConfig::default(), ExecConfig::default().with_io_workers(4)] {
            let one_shot =
                crate::answer::answer_star_obs_cfg(&q, &schema, &db, &Recorder::disabled(), cfg)
                    .unwrap();
            let served = prepared.execute_obs_cfg(&db, &Recorder::disabled(), cfg).unwrap();
            assert_eq!(served, one_shot);
        }
    }

    #[test]
    fn prepared_resilient_obs_matches_answer_star_resilient() {
        let (q, schema) = setup("F^o. G^o.\nQ(x) :- F(x).\nQ(x) :- G(x).");
        let db = Database::from_facts("F(1). G(2). G(3).").unwrap();
        let prepared = PreparedQuery::compile(&q, &schema);
        for seed in [0u64, 7, 21] {
            let res = ResilienceConfig::chaos(0.4, seed);
            let cfg = ExecConfig::default();
            let one_shot = crate::answer::answer_star_resilient_cfg(
                &q,
                &schema,
                &db,
                &Recorder::disabled(),
                &res,
                cfg,
            )
            .unwrap();
            let served = prepared
                .execute_resilient_obs_cfg(&db, &Recorder::disabled(), &res, cfg)
                .unwrap();
            assert_eq!(served, one_shot, "seed {seed}");
        }
    }

    #[test]
    fn prepared_program_compiles_every_query_in_order() {
        let text = "C^oo. F^o.\n\
                    Q(i) :- C(i, a).\n\
                    P(x) :- F(x).";
        let prog = PreparedProgram::compile(text).unwrap();
        assert_eq!(prog.queries().len(), 2);
        assert_eq!(prog.program().queries.len(), 2);
        assert!(prog.estimated_bytes() > 0);
        let db = Database::from_facts(r#"C(1, "a"). F(9)."#).unwrap();
        let reps: Vec<AnswerReport> = prog
            .queries()
            .iter()
            .map(|p| p.execute(&db).unwrap())
            .collect();
        assert_eq!(reps[0].under.len(), 1);
        assert_eq!(reps[1].under.len(), 1);
        assert!(PreparedProgram::compile("Q(x) :- ???").is_err());
    }

    #[test]
    fn infeasible_prepared_query_returns_certain_answers() {
        let (q, schema) = setup(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        );
        let prepared = PreparedQuery::compile(&q, &schema);
        assert!(!prepared.is_feasible());
        let db = Database::from_facts("T(1, 2). R(3, 4). B(3, 5).").unwrap();
        let best = prepared.execute_best(&db).unwrap();
        assert_eq!(best.len(), 1); // only the certain (1, 2)
    }
}
