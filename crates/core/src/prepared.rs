//! Prepared queries: compile once, execute many times.
//!
//! The paper separates compile time ("before any specific database
//! instance is considered") from runtime (Section 4). [`PreparedQuery`]
//! materializes that separation as an API: feasibility analysis, plan
//! construction, and (optionally) cost-based validation happen once; each
//! [`PreparedQuery::execute`] then only pays the runtime price.

use crate::answer::{build_report, AnswerOutcome, AnswerReport, DegradationReport};
use crate::feasible::{feasible_detailed, feasible_detailed_with, DecisionPath, FeasibilityReport};
use crate::plan::{lower_pair, PhysicalPair, PlanPair};
use lap_containment::ContainmentEngine;
use lap_engine::{
    execute_physical_union, execute_physical_union_degraded, Database, EngineError, ExecConfig,
    ResilienceConfig, SourceRegistry,
};
use lap_ir::{Schema, UnionQuery};
use std::collections::BTreeSet;

/// A query compiled against a schema of access patterns.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    query: UnionQuery,
    schema: Schema,
    report: FeasibilityReport,
    physical: PhysicalPair,
}

impl PreparedQuery {
    /// Compiles `q` against `schema`: runs PLAN\* and FEASIBLE once, then
    /// lowers both plans so [`PreparedQuery::execute`] starts from the
    /// physical operator trees directly.
    pub fn compile(q: &UnionQuery, schema: &Schema) -> PreparedQuery {
        let report = feasible_detailed(q, schema);
        let physical = lower_pair(&report.plans, schema);
        PreparedQuery {
            query: q.clone(),
            schema: schema.clone(),
            report,
            physical,
        }
    }

    /// [`PreparedQuery::compile`] with the feasibility analysis delegated
    /// to `engine` — compiling a batch of queries against one caching
    /// engine shares containment verdicts across them.
    pub fn compile_with(
        q: &UnionQuery,
        schema: &Schema,
        engine: &ContainmentEngine,
    ) -> PreparedQuery {
        let report = feasible_detailed_with(q, schema, engine);
        let physical = lower_pair(&report.plans, schema);
        PreparedQuery {
            query: q.clone(),
            schema: schema.clone(),
            report,
            physical,
        }
    }

    /// The compiled query.
    pub fn query(&self) -> &UnionQuery {
        &self.query
    }

    /// Is the query feasible (answers guaranteed complete on every
    /// instance)?
    pub fn is_feasible(&self) -> bool {
        self.report.feasible
    }

    /// The feasibility analysis, including how it was decided.
    pub fn feasibility(&self) -> &FeasibilityReport {
        &self.report
    }

    /// The compiled plans.
    pub fn plans(&self) -> &PlanPair {
        &self.report.plans
    }

    /// The compiled physical operator trees (lowered once at compile time).
    pub fn physical(&self) -> &PhysicalPair {
        &self.physical
    }

    /// The schema the query was compiled against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replaces the compiled plans and physical trees in place — the
    /// adaptive re-planning hook (`lap_planner::recalibrate_prepared`
    /// re-orders the plan bodies under a journal-calibrated cost model and
    /// re-lowers them after an execution blew its estimates). The
    /// replacement must be answer-equivalent to the compiled plans (a
    /// reordering of the same bodies); the feasibility verdict is kept,
    /// not re-derived.
    pub fn replace_plans(&mut self, plans: PlanPair, physical: PhysicalPair) {
        self.report.plans = plans;
        self.physical = physical;
    }

    /// Executes against an instance (algorithm ANSWER\*, reusing the
    /// compiled physical plans). For feasible queries the overestimate in
    /// the report *is* the exact answer.
    pub fn execute(&self, db: &Database) -> Result<AnswerReport, EngineError> {
        let cfg = ExecConfig::default();
        let mut reg = SourceRegistry::new(db, &self.schema);
        let under = execute_physical_union(&self.physical.under, &mut reg, cfg)?;
        let over = execute_physical_union(&self.physical.over, &mut reg, cfg)?;
        Ok(build_report(under, over, reg.stats(), self.report.plans.clone()))
    }

    /// [`PreparedQuery::execute`] in degradation mode: sources run under
    /// `resilience` (fault injection + retries) and a disjunct whose
    /// source stays unavailable is dropped and reported instead of
    /// aborting the run. See [`crate::answer_star_resilient`] for the
    /// soundness and completeness-downgrade contract.
    pub fn execute_resilient(
        &self,
        db: &Database,
        resilience: &ResilienceConfig,
    ) -> Result<AnswerOutcome, EngineError> {
        let cfg = ExecConfig::default();
        let mut reg = SourceRegistry::new(db, &self.schema).with_retry(resilience.retry);
        if let Some(fault) = &resilience.fault {
            reg = reg.with_fault_injection(*fault);
        }
        let (under, under_drops) = execute_physical_union_degraded(&self.physical.under, &mut reg, cfg)?;
        reg.reset_clock();
        let (over, over_drops) = execute_physical_union_degraded(&self.physical.over, &mut reg, cfg)?;
        let degradation = DegradationReport { under: under_drops, over: over_drops };
        let retries = reg.retries_observed();
        let failures = reg.failures_observed();
        let virtual_ms = reg.virtual_elapsed_ms();
        let mut report = build_report(under, over, reg.stats(), self.report.plans.clone());
        let base = report.completeness.clone();
        report.completeness = crate::answer::degrade_completeness(base, &report, &degradation);
        Ok(AnswerOutcome { report, degradation, retries, failures, virtual_ms })
    }

    /// Executes and returns the *best available* answer set: the exact
    /// answer (overestimate) for feasible null-free plans, the certain
    /// answers otherwise.
    pub fn execute_best(&self, db: &Database) -> Result<BTreeSet<lap_engine::Tuple>, EngineError> {
        let report = self.execute(db)?;
        if self.report.feasible && !self.report.plans.over.has_null() {
            Ok(report.over)
        } else {
            Ok(report.under)
        }
    }

    /// How the feasibility decision was reached (fast path vs containment).
    pub fn decision_path(&self) -> DecisionPath {
        self.report.decided_by
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_engine::eval_oracle;
    use lap_ir::parse_program;

    fn setup(text: &str) -> (UnionQuery, Schema) {
        let p = parse_program(text).unwrap();
        (p.single_query().unwrap().clone(), p.schema)
    }

    #[test]
    fn compile_once_execute_many() {
        let (q, schema) = setup(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        let prepared = PreparedQuery::compile(&q, &schema);
        assert!(prepared.is_feasible());
        for facts in [
            r#"B(1, "a", "t"). C(1, "a")."#,
            r#"B(1, "a", "t"). C(1, "a"). L(1)."#,
            r#"C(9, "z")."#,
        ] {
            let db = Database::from_facts(facts).unwrap();
            let rep = prepared.execute(&db).unwrap();
            assert!(rep.is_complete());
            let oracle = eval_oracle(&q, &db).unwrap();
            assert_eq!(rep.under, oracle, "on {facts}");
        }
    }

    #[test]
    fn execute_best_returns_exact_answers_for_feasible_queries() {
        // Example 3: feasible via containment; the underestimate is empty
        // but execute_best returns the exact overestimate.
        let (q, schema) = setup(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        let prepared = PreparedQuery::compile(&q, &schema);
        assert!(prepared.is_feasible());
        let db = Database::from_facts(r#"B(1, "adams", "t"). L(1)."#).unwrap();
        let best = prepared.execute_best(&db).unwrap();
        assert_eq!(best.len(), 1);
        // ANSWER* alone would have reported only the (empty) underestimate.
        let rep = prepared.execute(&db).unwrap();
        assert!(rep.under.is_empty());
    }

    #[test]
    fn infeasible_prepared_query_returns_certain_answers() {
        let (q, schema) = setup(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        );
        let prepared = PreparedQuery::compile(&q, &schema);
        assert!(!prepared.is_feasible());
        let db = Database::from_facts("T(1, 2). R(3, 4). B(3, 5).").unwrap();
        let best = prepared.execute_best(&db).unwrap();
        assert_eq!(best.len(), 1); // only the certain (1, 2)
    }
}
