//! Algorithm FEASIBLE (paper, Figure 3) — deciding feasibility of UCQ¬
//! queries. Π₂ᴾ-complete in general (Corollary 19), but with the quadratic
//! fast paths of PLAN\* in front of the containment check.

use crate::plan::{plan_star_obs, PlanPair};
use lap_containment::{ContainmentEngine, ContainmentStats};
use lap_ir::{Schema, UnionQuery};
use lap_obs::Recorder;

/// How a feasibility decision was reached — the basis of the paper's claim
/// that the worst case is often avoidable (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecisionPath {
    /// `Qᵘ = Qᵒ`: the query is orderable; feasible without any containment
    /// check.
    PlansCoincide,
    /// The overestimate contains a `null`: `ans(Q)` is unsafe, so `Q` is
    /// infeasible — again without a containment check.
    OverestimateHasNull,
    /// The full check `ans(Q) ⊑ Q` (Corollary 17) had to run.
    ContainmentCheck,
}

/// The outcome of [`feasible_detailed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeasibilityReport {
    /// Is the query feasible?
    pub feasible: bool,
    /// Which branch of FEASIBLE decided it.
    pub decided_by: DecisionPath,
    /// The PLAN\* output, reusable for execution.
    pub plans: PlanPair,
    /// Counters from the `ans(Q) ⊑ Q` decision — `None` when no
    /// engine-driven containment check ran (a PLAN\* fast path decided, or
    /// the check was the Σ-strengthened chase variant).
    pub containment: Option<ContainmentStats>,
}

/// Algorithm FEASIBLE (Figure 3).
///
/// ```text
/// (Qᵘ, Qᵒ) := PLAN*(Q)
/// if Qᵘ = Qᵒ            then return true
/// if Qᵒ contains null    then return false
/// else                        return Qᵒ ⊑ Q
/// ```
///
/// Correctness: `Qᵒ` (read as a query, legal exactly when null-free) *is*
/// `ans(Q)`, so the last line is Corollary 17's criterion
/// `Q feasible ⟺ ans(Q) ⊑ Q`, and by Theorem 16 `ans(Q)` is then the
/// witnessing minimal executable query.
pub fn feasible(q: &UnionQuery, schema: &Schema) -> bool {
    feasible_detailed(q, schema).feasible
}

/// [`feasible`] with the decision path and the computed plans exposed.
/// Runs sequentially and uncached; use [`feasible_detailed_with`] to supply
/// a configured [`ContainmentEngine`].
pub fn feasible_detailed(q: &UnionQuery, schema: &Schema) -> FeasibilityReport {
    feasible_detailed_with(q, schema, &ContainmentEngine::default())
}

/// [`feasible_detailed`] with the `ans(Q) ⊑ Q` check delegated to `engine`
/// — parallel per-disjunct evaluation and verdict-cache reuse across calls,
/// as configured. The verdict is the same for every engine configuration;
/// only [`FeasibilityReport::containment`] differs.
pub fn feasible_detailed_with(
    q: &UnionQuery,
    schema: &Schema,
    engine: &ContainmentEngine,
) -> FeasibilityReport {
    feasible_detailed_obs(q, schema, engine, engine.recorder())
}

/// [`feasible_detailed_with`] under `recorder`: the decision runs in a
/// `feasible` span, with `plan*`/`answerable` sub-spans from PLAN\* and a
/// `containment` sub-span when the `ans(Q) ⊑ Q` check actually runs.
pub fn feasible_detailed_obs(
    q: &UnionQuery,
    schema: &Schema,
    engine: &ContainmentEngine,
    recorder: &Recorder,
) -> FeasibilityReport {
    let _span = recorder.span("feasible");
    let plans = plan_star_obs(q, schema, recorder);
    if plans.coincide() {
        return FeasibilityReport {
            feasible: true,
            decided_by: DecisionPath::PlansCoincide,
            plans,
            containment: None,
        };
    }
    if plans.over.has_null() {
        return FeasibilityReport {
            feasible: false,
            decided_by: DecisionPath::OverestimateHasNull,
            plans,
            containment: None,
        };
    }
    let ans_q = plans
        .over
        .as_query()
        .expect("null-free overestimate is a plain query");
    let (feasible, stats) = {
        let _containment = recorder.span("containment");
        engine.contained_stats(&ans_q, q)
    };
    FeasibilityReport {
        feasible,
        decided_by: DecisionPath::ContainmentCheck,
        plans,
        containment: Some(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_program;

    fn check(text: &str) -> FeasibilityReport {
        let p = parse_program(text).unwrap();
        feasible_detailed(p.single_query().unwrap(), &p.schema)
    }

    #[test]
    fn example_1_feasible_by_fast_path() {
        let r = check(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        assert!(r.feasible);
        assert_eq!(r.decided_by, DecisionPath::PlansCoincide);
    }

    #[test]
    fn example_3_feasible_only_by_containment() {
        let r = check(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        );
        assert!(r.feasible);
        assert_eq!(r.decided_by, DecisionPath::ContainmentCheck);
    }

    #[test]
    fn example_4_infeasible_by_null() {
        let r = check(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        );
        assert!(!r.feasible);
        assert_eq!(r.decided_by, DecisionPath::OverestimateHasNull);
    }

    #[test]
    fn example_9_cq_feasible() {
        let r = check(
            "F^o. B^i.\n\
             Q(x) :- F(x), B(x), B(y), F(z).",
        );
        // ans(Q) = F(x), B(x), F(z) ⊑ Q (map y ↦ x), so feasible.
        assert!(r.feasible);
        assert_eq!(r.decided_by, DecisionPath::ContainmentCheck);
    }

    #[test]
    fn example_10_ucq_feasible() {
        let r = check(
            "F^o. G^o. H^o. B^i.\n\
             Q(x) :- F(x), G(x).\n\
             Q(x) :- F(x), H(x), B(y).\n\
             Q(x) :- F(x).",
        );
        assert!(r.feasible);
        assert_eq!(r.decided_by, DecisionPath::ContainmentCheck);
    }

    #[test]
    fn genuinely_infeasible_cq() {
        // B^i with y existential and no way to bind it; ans(Q) = F(x) is a
        // strict superset of Q's answers on some instance.
        let r = check(
            "F^o. B^i.\n\
             Q(x) :- F(x), B(y).",
        );
        assert!(!r.feasible);
        assert_eq!(r.decided_by, DecisionPath::ContainmentCheck);
    }

    #[test]
    fn unsat_disjuncts_do_not_block_feasibility() {
        let r = check(
            "R^oo.\n\
             Q(x) :- R(x, y), not R(x, y).\n\
             Q(x) :- R(x, x).",
        );
        assert!(r.feasible);
        assert_eq!(r.decided_by, DecisionPath::PlansCoincide);
    }

    #[test]
    fn negation_blocks_binding_infeasible() {
        // ¬S is the only occurrence of z besides R^ii — nothing binds x, z.
        let r = check(
            "S^o. R^ii.\n\
             Q(x) :- R(x, z), not S(z).",
        );
        assert!(!r.feasible);
        assert_eq!(r.decided_by, DecisionPath::OverestimateHasNull);
    }

    #[test]
    fn false_query_is_feasible() {
        let r = check("R^oo.\nQ(x) :- R(x, y), not R(x, y).");
        assert!(r.feasible);
        assert_eq!(r.decided_by, DecisionPath::PlansCoincide);
        assert!(r.plans.under.is_false());
    }

    #[test]
    fn feasible_wrapper_agrees() {
        let p = parse_program("F^o. B^i.\nQ(x) :- F(x), B(y).").unwrap();
        assert!(!feasible(p.single_query().unwrap(), &p.schema));
    }

    #[test]
    fn fast_paths_record_no_containment_stats() {
        let r = check(
            "B^ioo. B^oio. C^oo. L^o.\n\
             Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        );
        assert_eq!(r.decided_by, DecisionPath::PlansCoincide);
        assert!(r.containment.is_none());
        let r = check(
            "S^o. R^ii.\n\
             Q(x) :- R(x, z), not S(z).",
        );
        assert_eq!(r.decided_by, DecisionPath::OverestimateHasNull);
        assert!(r.containment.is_none());
    }

    #[test]
    fn containment_branch_records_stats() {
        let r = check("F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).");
        assert_eq!(r.decided_by, DecisionPath::ContainmentCheck);
        let stats = r.containment.expect("containment ran");
        assert_eq!(stats.engine_cache_misses, 1, "{stats:?}");
    }

    #[test]
    fn engine_configurations_agree_and_cache_across_calls() {
        use lap_containment::EngineConfig;
        let p = parse_program(
            "B^ioo. B^oio. L^o.\n\
             Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        )
        .unwrap();
        let q = p.single_query().unwrap();
        let baseline = feasible_detailed(q, &p.schema);
        let engine = ContainmentEngine::new(EngineConfig::full());
        let first = feasible_detailed_with(q, &p.schema, &engine);
        assert_eq!(first.feasible, baseline.feasible);
        assert_eq!(first.decided_by, baseline.decided_by);
        // The same query checked again hits the verdict cache.
        let second = feasible_detailed_with(q, &p.schema, &engine);
        assert_eq!(second.feasible, baseline.feasible);
        let stats = second.containment.expect("containment ran");
        assert_eq!(stats.engine_cache_hits, 1, "{stats:?}");
        assert_eq!(engine.stats().cache_hits, 1);
    }
}
