//! Containment of unions of conjunctive queries (Sagiv–Yannakakis, [SY80]).

use crate::cq::cq_contained;
use lap_ir::UnionQuery;

/// `P ⊑ Q` for unions of plain conjunctive queries. By \[SY80\],
/// `P₁ ∨ … ∨ P_m ⊑ Q₁ ∨ … ∨ Q_n` iff every `P_i` is contained in *some*
/// single `Q_j` — the union does not help on the right-hand side for
/// positive queries. NP-complete.
pub fn ucq_contained(p: &UnionQuery, q: &UnionQuery) -> bool {
    debug_assert!(p.is_positive() && q.is_positive());
    p.disjuncts
        .iter()
        .all(|pi| q.disjuncts.iter().any(|qj| cq_contained(pi, qj)))
}

/// `P ≡ Q` for unions of plain conjunctive queries.
pub fn ucq_equivalent(p: &UnionQuery, q: &UnionQuery) -> bool {
    ucq_contained(p, q) && ucq_contained(q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_query;

    fn contained(p: &str, q: &str) -> bool {
        ucq_contained(&parse_query(p).unwrap(), &parse_query(q).unwrap())
    }

    #[test]
    fn single_disjunct_reduces_to_cq() {
        assert!(contained("Q(x) :- R(x), S(x).", "Q(x) :- R(x)."));
    }

    #[test]
    fn union_is_monotone() {
        // F ⊑ F ∨ G.
        assert!(contained("Q(x) :- F(x).", "Q(x) :- F(x).\nQ(x) :- G(x)."));
        assert!(!contained("Q(x) :- F(x).\nQ(x) :- G(x).", "Q(x) :- F(x)."));
    }

    #[test]
    fn each_disjunct_needs_a_home() {
        assert!(contained(
            "Q(x) :- F(x), G(x).\nQ(x) :- H(x), F(x).",
            "Q(x) :- G(x).\nQ(x) :- H(x)."
        ));
        assert!(!contained(
            "Q(x) :- F(x), G(x).\nQ(x) :- H(x).",
            "Q(x) :- G(x).\nQ(x) :- F(x)."
        ));
    }

    #[test]
    fn paper_example_10_containments() {
        // Q from Example 10: F∧G ∨ F∧H∧B(y) ∨ F. Its minimal form is F.
        let q = parse_query(
            "Q(x) :- F(x), G(x).\n\
             Q(x) :- F(x), H(x), B(y).\n\
             Q(x) :- F(x).",
        )
        .unwrap();
        let m = parse_query("Q(x) :- F(x).").unwrap();
        assert!(ucq_equivalent(&q, &m));
    }

    #[test]
    fn false_is_bottom() {
        let falsum = parse_query("Q(x) :- false.").unwrap();
        let f = parse_query("Q(x) :- F(x).").unwrap();
        assert!(ucq_contained(&falsum, &f));
        assert!(!ucq_contained(&f, &falsum));
        assert!(ucq_contained(&falsum, &falsum));
    }
}
