//! Containment of plain conjunctive queries (Chandra–Merlin, [CM77]).

use crate::mapping::{has_homomorphism, unify_heads};
use lap_ir::{Atom, ConjunctiveQuery, Substitution};

/// `P ⊑ Q` for plain conjunctive queries: true iff there is a containment
/// mapping `σ: vars(Q) → terms(P)` with `σ(head(Q)) = head(P)` and
/// `σ(Q's atoms) ⊆ P's atoms` (Chandra–Merlin). NP-complete in general;
/// the search is backtracking with predicate indexing and
/// most-constrained-first ordering.
///
/// Both queries must be positive; negated literals (which this function
/// ignores per its contract) are rejected in debug builds.
pub fn cq_contained(p: &ConjunctiveQuery, q: &ConjunctiveQuery) -> bool {
    debug_assert!(p.is_positive(), "cq_contained requires positive P");
    debug_assert!(q.is_positive(), "cq_contained requires positive Q");
    let mut init = Substitution::new();
    if unify_heads(&q.head, &p.head, &mut init).is_none() {
        return false;
    }
    let q_atoms: Vec<&Atom> = q.body.iter().map(|l| &l.atom).collect();
    let p_atoms: Vec<&Atom> = p.body.iter().map(|l| &l.atom).collect();
    has_homomorphism(&q_atoms, &p_atoms, init)
}

/// `P ≡ Q` for plain conjunctive queries.
pub fn cq_equivalent(p: &ConjunctiveQuery, q: &ConjunctiveQuery) -> bool {
    cq_contained(p, q) && cq_contained(q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_cq;

    fn contained(p: &str, q: &str) -> bool {
        cq_contained(&parse_cq(p).unwrap(), &parse_cq(q).unwrap())
    }

    #[test]
    fn reflexive() {
        let q = "Q(x, y) :- R(x, z), S(z, y).";
        assert!(contained(q, q));
    }

    #[test]
    fn longer_chain_contained_in_shorter() {
        // A 3-chain from x is contained in a 2-chain from x (map the
        // 2-chain's tail var onto the 3-chain's middle).
        assert!(contained(
            "Q(x) :- R(x, y), R(y, z), R(z, w).",
            "Q(x) :- R(x, u), R(u, v)."
        ));
        // ...but not conversely.
        assert!(!contained(
            "Q(x) :- R(x, u), R(u, v).",
            "Q(x) :- R(x, y), R(y, z), R(z, w)."
        ));
    }

    #[test]
    fn cycle_contained_in_path() {
        // A self-loop R(a,a) is contained in any R-path query.
        assert!(contained("Q(k) :- K(k), R(a, a).", "Q(k) :- K(k), R(x, y), R(y, z)."));
    }

    #[test]
    fn head_variables_pin_the_mapping() {
        // Both bodies have R(x,y), but the head exports different ends.
        assert!(!contained("Q(x) :- R(x, y).", "Q(y) :- R(x, y)."));
    }

    #[test]
    fn extra_conjunct_strengthens() {
        // P with extra S(x) is contained in Q without it.
        assert!(contained("Q(x) :- R(x), S(x).", "Q(x) :- R(x)."));
        assert!(!contained("Q(x) :- R(x).", "Q(x) :- R(x), S(x)."));
    }

    #[test]
    fn constants_refine_containment() {
        assert!(contained("Q(x) :- R(x, 1).", "Q(x) :- R(x, y)."));
        assert!(!contained("Q(x) :- R(x, y).", "Q(x) :- R(x, 1)."));
        assert!(contained("Q(x) :- R(x, 1).", "Q(x) :- R(x, 1)."));
    }

    #[test]
    fn equivalence_of_renamed_queries() {
        assert!(cq_equivalent(
            &parse_cq("Q(x) :- R(x, y), S(y).").unwrap(),
            &parse_cq("Q(a) :- R(a, b), S(b).").unwrap(),
        ));
    }

    #[test]
    fn redundant_atom_equivalence() {
        // Q with a redundant second R-atom is equivalent to its core.
        assert!(cq_equivalent(
            &parse_cq("Q(x) :- R(x, y), R(x, z).").unwrap(),
            &parse_cq("Q(x) :- R(x, y).").unwrap(),
        ));
    }
}
