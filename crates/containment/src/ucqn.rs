//! Containment of (unions of) conjunctive queries with negation, following
//! the Wei–Lausen characterization ([WL03], restated as Theorems 12 and 13
//! of the paper). Π₂ᴾ-complete.

use crate::mapping::{for_each_homomorphism, unify_heads};
use lap_ir::{is_satisfiable, Atom, ConjunctiveQuery, Literal, Substitution, UnionQuery};
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Instrumentation counters for one top-level containment decision —
/// exposes where the Π₂ᴾ effort goes (experiment E11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContainmentStats {
    /// Invocations of the Theorem-13 recursion (including the root).
    pub recursive_calls: u64,
    /// Recursion results answered from the memo cache.
    pub cache_hits: u64,
    /// Complete containment mappings σ handed to the negative-literal
    /// validation (candidate witnesses examined).
    pub mappings_checked: u64,
    /// Peak number of positive atoms on the `P` side (how far the chase of
    /// added `R(σȳ)` atoms grew).
    pub max_p_atoms: usize,
    /// Worker threads spawned by the parallel top level (0 when run
    /// sequentially).
    pub parallel_workers: usize,
    /// Per-disjunct tasks abandoned early because another disjunct already
    /// failed containment (parallel early-exit cancellation).
    pub cancelled_tasks: u64,
    /// Decisions answered from a [`crate::ContainmentEngine`] verdict
    /// cache instead of running the recursion at all.
    pub engine_cache_hits: u64,
    /// Decisions that missed the engine's verdict cache (or ran without
    /// one) and paid for the full procedure.
    pub engine_cache_misses: u64,
}

impl ContainmentStats {
    /// Merges another record into this one (counters add, peaks max).
    pub fn absorb(&mut self, other: &ContainmentStats) {
        self.recursive_calls += other.recursive_calls;
        self.cache_hits += other.cache_hits;
        self.mappings_checked += other.mappings_checked;
        self.max_p_atoms = self.max_p_atoms.max(other.max_p_atoms);
        self.parallel_workers = self.parallel_workers.max(other.parallel_workers);
        self.cancelled_tasks += other.cancelled_tasks;
        self.engine_cache_hits += other.engine_cache_hits;
        self.engine_cache_misses += other.engine_cache_misses;
    }
}

/// `P ⊑ Q` for UCQ¬ queries: every disjunct of `P` must be contained in `Q`
/// (the union on the left distributes; the union on the right is handled by
/// Theorem 13's per-disjunct mapping search inside the recursion).
pub fn ucqn_contained(p: &UnionQuery, q: &UnionQuery) -> bool {
    ucqn_contained_stats(p, q).0
}

/// [`ucqn_contained`] with instrumentation counters.
pub fn ucqn_contained_stats(p: &UnionQuery, q: &UnionQuery) -> (bool, ContainmentStats) {
    let mut ctx = Ctx::default();
    let result = p.disjuncts.iter().all(|pi| cqn_rec(pi, q, &mut ctx));
    (result, ctx.stats)
}

/// [`ucqn_contained_stats`], fanning the per-disjunct checks of `P` onto
/// scoped worker threads.
///
/// `P ⊑ Q` distributes over `P`'s union: each disjunct `P_i ⊑ Q` is an
/// independent (and itself potentially exponential) decision, so disjuncts
/// are handed to workers through a shared index. The first disjunct found
/// *not* contained flips a cancellation flag: in-flight recursions bail at
/// their next entry and remaining disjuncts are skipped, mirroring the
/// short-circuit of the sequential `all(..)` loop. The decision returned is
/// always identical to the sequential one; only the counters differ (workers
/// keep private memo caches, so cross-disjunct cache hits are not shared).
pub fn ucqn_contained_parallel(p: &UnionQuery, q: &UnionQuery) -> (bool, ContainmentStats) {
    let n = p.disjuncts.len();
    if n <= 1 {
        return ucqn_contained_stats(p, q);
    }
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(n);
    let cancel = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let mut agg = ContainmentStats {
        parallel_workers: workers,
        ..ContainmentStats::default()
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut ctx = Ctx {
                        cancel: Some(&cancel),
                        ..Ctx::default()
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if cancel.load(Ordering::Relaxed) {
                            ctx.stats.cancelled_tasks += 1;
                            continue;
                        }
                        if !cqn_rec(&p.disjuncts[i], q, &mut ctx) && !ctx.cancelled() {
                            failed.store(true, Ordering::Relaxed);
                            cancel.store(true, Ordering::Relaxed);
                        }
                    }
                    ctx.stats
                })
            })
            .collect();
        for h in handles {
            agg.absorb(&h.join().expect("containment worker must not panic"));
        }
    });
    (!failed.load(Ordering::Relaxed), agg)
}

/// `P ⊑ Q` for a single CQ¬ `P` against a UCQ¬ `Q` (Theorem 13):
///
/// `P ⊑ Q₁ ∨ … ∨ Q_k` iff `P` is unsatisfiable, or there are an `i` and a
/// containment mapping `σ: vars(Q_i) → terms(P)` witnessing `P⁺ ⊑ Q_i⁺`
/// such that for every negative literal `¬R(ȳ)` of `Q_i`:
///
/// * `R(σȳ)` does not appear (positively) in `P`, and
/// * recursively, `P ∧ R(σȳ) ⊑ Q`.
///
/// Termination: each recursive step conjoins a *new* positive atom over the
/// fixed term universe of `P` (σ maps into terms of `P`), so the body grows
/// strictly within a finite space. Results are memoized on the normalized
/// `P` side (the `Q` side is constant through the recursion).
pub fn cqn_in_ucqn(p: &ConjunctiveQuery, q: &UnionQuery) -> bool {
    cqn_rec(p, q, &mut Ctx::default())
}

/// `P ≡ Q` for UCQ¬ queries.
pub fn ucqn_equivalent(p: &UnionQuery, q: &UnionQuery) -> bool {
    ucqn_contained(p, q) && ucqn_contained(q, p)
}

type Cache = HashMap<(Atom, Vec<Literal>), bool>;

#[derive(Default)]
struct Ctx<'a> {
    cache: Cache,
    stats: ContainmentStats,
    /// Set by a sibling worker once the overall decision is known; the
    /// recursion bails at its next entry. A cancelled recursion's return
    /// value is meaningless and must not be recorded anywhere durable.
    cancel: Option<&'a AtomicBool>,
}

impl Ctx<'_> {
    fn cancelled(&self) -> bool {
        self.cancel
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

fn normalize(p: &ConjunctiveQuery) -> (Atom, Vec<Literal>) {
    let mut body = p.body.clone();
    body.sort();
    body.dedup();
    (p.head.clone(), body)
}

fn cqn_rec(p: &ConjunctiveQuery, q: &UnionQuery, ctx: &mut Ctx) -> bool {
    if ctx.cancelled() {
        // The overall decision is already known; unwind without caring
        // about the answer (the caller discards it).
        return true;
    }
    ctx.stats.recursive_calls += 1;
    if !is_satisfiable(p) {
        return true;
    }
    let key = normalize(p);
    if let Some(&r) = ctx.cache.get(&key) {
        ctx.stats.cache_hits += 1;
        return r;
    }
    let p_pos: Vec<&Atom> = p.body.iter().filter(|l| l.positive).map(|l| &l.atom).collect();
    ctx.stats.max_p_atoms = ctx.stats.max_p_atoms.max(p_pos.len());
    let p_pos_set: HashSet<&Atom> = p_pos.iter().copied().collect();

    let mut result = false;
    for qi in &q.disjuncts {
        let mut init = Substitution::new();
        if unify_heads(&qi.head, &p.head, &mut init).is_none() {
            continue;
        }
        let qi_pos: Vec<&Atom> = qi
            .body
            .iter()
            .filter(|l| l.positive)
            .map(|l| &l.atom)
            .collect();
        let qi_neg: Vec<&Atom> = qi
            .body
            .iter()
            .filter(|l| !l.positive)
            .map(|l| &l.atom)
            .collect();
        let found = for_each_homomorphism(&qi_pos, &p_pos, init, &mut |sigma| {
            ctx.stats.mappings_checked += 1;
            if negatives_ok(p, &p_pos_set, &qi_neg, sigma, q, ctx) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if found {
            result = true;
            break;
        }
    }
    if ctx.cancelled() {
        // `result` may reflect a truncated search — don't poison the memo.
        return result;
    }
    ctx.cache.insert(key, result);
    result
}

fn negatives_ok(
    p: &ConjunctiveQuery,
    p_pos_set: &HashSet<&Atom>,
    qi_neg: &[&Atom],
    sigma: &Substitution,
    q: &UnionQuery,
    ctx: &mut Ctx,
) -> bool {
    for &natom in qi_neg {
        // Every variable of the negative literal must be bound by σ.
        // (Guaranteed for safe Q_i, whose variables all occur in Q_i⁺ or the
        // head; tolerated as "mapping fails" for unsafe inputs.)
        if natom.vars().any(|v| sigma.get(v).is_none()) {
            return false;
        }
        let r_atom = sigma.apply_atom(natom);
        if p_pos_set.contains(&r_atom) {
            return false;
        }
        // Recursive condition: P ∧ R(σȳ) ⊑ Q.
        let mut p_ext = p.clone();
        p_ext.body.push(Literal::pos(r_atom));
        if !cqn_rec(&p_ext, q, ctx) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_query;

    fn contained(p: &str, q: &str) -> bool {
        ucqn_contained(&parse_query(p).unwrap(), &parse_query(q).unwrap())
    }

    #[test]
    fn reduces_to_cq_on_positive_queries() {
        assert!(contained("Q(x) :- R(x), S(x).", "Q(x) :- R(x)."));
        assert!(!contained("Q(x) :- R(x).", "Q(x) :- R(x), S(x)."));
    }

    #[test]
    fn unsatisfiable_left_side_is_contained_in_anything() {
        assert!(contained(
            "Q(x) :- R(x), not R(x).",
            "Q(x) :- S(x)."
        ));
    }

    #[test]
    fn negative_literal_must_be_absent_on_the_left() {
        // P = R(x) ∧ S(x); Q = R(x) ∧ ¬S(x): not contained.
        assert!(!contained("Q(x) :- R(x), S(x).", "Q(x) :- R(x), not S(x)."));
        // P = R(x) ∧ ¬S(x) ⊑ Q = R(x): contained (dropping a filter weakens).
        assert!(contained("Q(x) :- R(x), not S(x).", "Q(x) :- R(x)."));
        // P = R(x) ⋢ Q = R(x) ∧ ¬S(x): a DB with R(a), S(a) breaks it.
        assert!(!contained("Q(x) :- R(x).", "Q(x) :- R(x), not S(x)."));
    }

    #[test]
    fn identical_negation_is_reflexive() {
        let q = "Q(x) :- R(x), not S(x).";
        assert!(contained(q, q));
    }

    #[test]
    fn excluded_middle_union_covers() {
        // R(x) ⊑ (R(x) ∧ S(x)) ∨ (R(x) ∧ ¬S(x)): the classic case where the
        // right-hand union genuinely needs the recursion — no single
        // disjunct contains P.
        assert!(contained(
            "Q(x) :- R(x).",
            "Q(x) :- R(x), S(x).\nQ(x) :- R(x), not S(x)."
        ));
    }

    #[test]
    fn excluded_middle_needs_both_disjuncts() {
        assert!(!contained("Q(x) :- R(x).", "Q(x) :- R(x), S(x)."));
        assert!(!contained("Q(x) :- R(x).", "Q(x) :- R(x), not S(x)."));
    }

    #[test]
    fn paper_example_3_equivalence() {
        // Q(a) :- B(i,a,t), L(i), B(i2,a2,t)  ∨  B(i,a,t), L(i), ¬B(i2,a2,t)
        // is equivalent to Q'(a) :- L(i), B(i,a,t).
        let q = parse_query(
            "Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        )
        .unwrap();
        let q2 = parse_query("Q(a) :- L(i), B(i, a, t).").unwrap();
        assert!(ucqn_equivalent(&q, &q2));
    }

    #[test]
    fn two_step_recursion() {
        // P = R(x) ⊑ (R(x)∧S(x)) ∨ (R(x)∧¬S(x)∧T(x)) ∨ (R(x)∧¬S(x)∧¬T(x)).
        assert!(contained(
            "Q(x) :- R(x).",
            "Q(x) :- R(x), S(x).\n\
             Q(x) :- R(x), not S(x), T(x).\n\
             Q(x) :- R(x), not S(x), not T(x)."
        ));
        // Remove the last disjunct and containment breaks.
        assert!(!contained(
            "Q(x) :- R(x).",
            "Q(x) :- R(x), S(x).\n\
             Q(x) :- R(x), not S(x), T(x)."
        ));
    }

    #[test]
    fn negation_on_the_left_strengthens() {
        assert!(contained(
            "Q(x) :- R(x), not S(x), not T(x).",
            "Q(x) :- R(x), not S(x)."
        ));
        assert!(!contained(
            "Q(x) :- R(x), not S(x).",
            "Q(x) :- R(x), not S(x), not T(x)."
        ));
    }

    #[test]
    fn union_on_left_distributes() {
        assert!(contained(
            "Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).",
            "Q(x) :- R(x)."
        ));
        assert!(!contained(
            "Q(x) :- R(x), not S(x).\nQ(x) :- T(x).",
            "Q(x) :- R(x)."
        ));
    }

    #[test]
    fn false_left_and_right() {
        let falsum = parse_query("Q(x) :- false.").unwrap();
        let r = parse_query("Q(x) :- R(x), not S(x).").unwrap();
        assert!(ucqn_contained(&falsum, &r));
        assert!(!ucqn_contained(&r, &falsum));
        // An unsatisfiable query *is* contained in false.
        let unsat = parse_query("Q(x) :- R(x), not R(x).").unwrap();
        assert!(ucqn_contained(&unsat, &falsum));
    }

    #[test]
    fn repeated_variable_patterns() {
        // P = R(x,x) ⊑ Q = R(x,y) but not conversely.
        assert!(contained("Q(k) :- K(k), R(x, x).", "Q(k) :- K(k), R(x, y)."));
        assert!(!contained("Q(k) :- K(k), R(x, y).", "Q(k) :- K(k), R(x, x)."));
    }

    #[test]
    fn wl03_interaction_of_negation_and_join() {
        // P(x) :- E(x,y), E(y,z), ¬E(x,z)  (an "open triangle" query)
        // is contained in  Q(x) :- E(x,y), ¬E(y,y)?  No: take
        // E = {(a,b),(b,c),(b,b)} minus... let the checker decide; the
        // point of this test is agreement with a hand-constructed
        // counterexample: D = {E(a,a)}: P(a)? E(a,a),E(a,a),¬E(a,a) fails.
        // D = {E(a,b),E(b,b)}: P(a) holds via y=b,z=b? ¬E(a,b) is false...
        // choose z=b: needs ¬E(a,b): false. So P(a) fails. Try
        // D = {E(a,b),E(b,c)}: P(a) via y=b,z=c, ¬E(a,c) holds. Q(a) needs
        // E(a,y') with ¬E(y',y'): y'=b, ¬E(b,b) holds. Hmm. Counterexample:
        // add E(b,b): D = {E(a,b),E(b,c),E(b,b)}: P(a): y=b,z=c ¬E(a,c) ok.
        // Q(a): only E(a,b), needs ¬E(b,b): fails. So P ⋢ Q.
        assert!(!contained(
            "Q(x) :- E(x, y), E(y, z), not E(x, z).",
            "Q(x) :- E(x, y), not E(y, y)."
        ));
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use lap_ir::parse_query;

    #[test]
    fn stats_count_the_excluded_middle_recursion() {
        let p = parse_query("Q(x) :- R(x).").unwrap();
        let q = parse_query(
            "Q(x) :- R(x), S(x).\n\
             Q(x) :- R(x), not S(x).",
        )
        .unwrap();
        let (result, stats) = ucqn_contained_stats(&p, &q);
        assert!(result);
        assert!(stats.recursive_calls >= 2, "{stats:?}");
        assert!(stats.mappings_checked >= 2, "{stats:?}");
        assert!(stats.max_p_atoms >= 2, "{stats:?}");
    }

    #[test]
    fn positive_containment_uses_one_call_per_disjunct() {
        let p = parse_query("Q(x) :- R(x), S(x).").unwrap();
        let q = parse_query("Q(x) :- R(x).").unwrap();
        let (result, stats) = ucqn_contained_stats(&p, &q);
        assert!(result);
        assert_eq!(stats.recursive_calls, 1);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn cache_hits_appear_on_repeated_subproblems() {
        // Two identical negative literals lead to the same extended P.
        let p = parse_query("Q(x) :- R(x).").unwrap();
        let q = parse_query(
            "Q(x) :- R(x), S(x).\n\
             Q(x) :- R(x), not S(x), not S(x).",
        )
        .unwrap();
        let (result, stats) = ucqn_contained_stats(&p, &q);
        assert!(result);
        assert!(stats.cache_hits >= 1, "{stats:?}");
    }

    #[test]
    fn stats_absorb_adds_counters_and_maxes_peaks() {
        let mut a = ContainmentStats {
            recursive_calls: 3,
            cache_hits: 1,
            mappings_checked: 5,
            max_p_atoms: 4,
            parallel_workers: 2,
            cancelled_tasks: 0,
            engine_cache_hits: 1,
            engine_cache_misses: 2,
        };
        let b = ContainmentStats {
            recursive_calls: 7,
            cache_hits: 2,
            mappings_checked: 1,
            max_p_atoms: 9,
            parallel_workers: 1,
            cancelled_tasks: 3,
            engine_cache_hits: 0,
            engine_cache_misses: 1,
        };
        a.absorb(&b);
        assert_eq!(a.recursive_calls, 10);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.mappings_checked, 6);
        assert_eq!(a.max_p_atoms, 9);
        assert_eq!(a.parallel_workers, 2);
        assert_eq!(a.cancelled_tasks, 3);
        assert_eq!(a.engine_cache_hits, 1);
        assert_eq!(a.engine_cache_misses, 3);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use lap_ir::parse_query;

    fn agree(p: &str, q: &str) {
        let p = parse_query(p).unwrap();
        let q = parse_query(q).unwrap();
        let (seq, _) = ucqn_contained_stats(&p, &q);
        let (par, stats) = ucqn_contained_parallel(&p, &q);
        assert_eq!(seq, par, "P={p} Q={q} ({stats:?})");
    }

    #[test]
    fn parallel_agrees_on_multi_disjunct_left_sides() {
        agree(
            "Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).\nQ(x) :- R(x), T(x).",
            "Q(x) :- R(x).",
        );
        agree(
            "Q(x) :- R(x), not S(x).\nQ(x) :- T(x).",
            "Q(x) :- R(x).",
        );
        agree(
            "Q(x) :- R(x).\nQ(x) :- S(x).\nQ(x) :- T(x).\nQ(x) :- U(x).",
            "Q(x) :- R(x).\nQ(x) :- S(x).\nQ(x) :- T(x).\nQ(x) :- U(x).",
        );
    }

    #[test]
    fn parallel_single_disjunct_falls_back_to_sequential() {
        let p = parse_query("Q(x) :- R(x), not S(x).").unwrap();
        let q = parse_query("Q(x) :- R(x).").unwrap();
        let (r, stats) = ucqn_contained_parallel(&p, &q);
        assert!(r);
        assert_eq!(stats.parallel_workers, 0);
    }

    #[test]
    fn parallel_reports_workers_and_cancellation() {
        // First disjunct fails containment; the rest are candidates for
        // cancellation (timing-dependent, so only the worker count is a
        // hard assertion).
        let p = parse_query(
            "Q(x) :- A(x).\nQ(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).\nQ(x) :- T(x).",
        )
        .unwrap();
        let q = parse_query("Q(x) :- R(x).").unwrap();
        let (r, stats) = ucqn_contained_parallel(&p, &q);
        assert!(!r);
        assert!(stats.parallel_workers >= 1, "{stats:?}");
    }
}
