//! Containment-mapping (homomorphism) search.
//!
//! A *containment mapping* from query `Q` to query `P` (witnessing `P ⊑ Q`
//! for conjunctive queries, Chandra–Merlin) is a function
//! `σ: vars(Q) → terms(P)` that
//!
//! * maps `Q`'s head tuple onto `P`'s head tuple (in particular it is the
//!   identity on free variables when the heads are literally equal), and
//! * maps every atom `R(ȳ)` of `Q`'s (positive) body to an atom `R(σȳ)`
//!   present in `P`'s body.
//!
//! The search is a classic backtracking join over `Q`'s atoms with two
//! optimizations: candidate atoms are pre-indexed by predicate, and atoms
//! are ordered most-constrained-first (atoms sharing variables with already
//! mapped atoms come earlier, which prunes aggressively on the dense
//! equality patterns that containment instances exhibit).

use lap_ir::{Atom, Substitution, Term};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Unifies the pair of head atoms, extending `subst` (source-side variables
/// bind to target-side terms). Returns `None` when the heads cannot be
/// unified (different predicates, or clashing constants).
pub fn unify_heads(from: &Atom, to: &Atom, subst: &mut Substitution) -> Option<()> {
    if from.predicate != to.predicate {
        return None;
    }
    for (&s, &t) in from.args.iter().zip(to.args.iter()) {
        match s {
            Term::Var(v) => match subst.get(v) {
                Some(prev) if prev != t => return None,
                Some(_) => {}
                None => subst.insert(v, t),
            },
            Term::Const(_) if s == t => {}
            Term::Const(_) => return None,
        }
    }
    Some(())
}

/// Searches for homomorphisms extending `initial` that map every atom in
/// `from` to some atom in `to`. Invokes `visit` on each complete mapping;
/// the visitor returns [`ControlFlow::Break`] to stop the search (e.g. when
/// a satisfying mapping has been found). Returns `true` iff the search was
/// stopped by the visitor.
pub fn for_each_homomorphism(
    from: &[&Atom],
    to: &[&Atom],
    initial: Substitution,
    visit: &mut dyn FnMut(&Substitution) -> ControlFlow<()>,
) -> bool {
    // Index target atoms by predicate.
    let mut index: HashMap<_, Vec<&Atom>> = HashMap::new();
    for &a in to {
        index.entry(a.predicate).or_default().push(a);
    }
    // Any source predicate absent from the target kills the search early.
    if from.iter().any(|a| !index.contains_key(&a.predicate)) {
        return false;
    }
    let order = constraint_order(from, &initial);
    let mut subst = initial;
    search(&order, 0, &index, &mut subst, visit).is_break()
}

/// Returns `true` iff at least one homomorphism exists.
pub fn has_homomorphism(from: &[&Atom], to: &[&Atom], initial: Substitution) -> bool {
    for_each_homomorphism(from, to, initial, &mut |_| ControlFlow::Break(()))
}

/// Orders atoms most-constrained-first: greedily pick the atom with the most
/// variables already bound (breaking ties toward fewer unbound variables).
fn constraint_order<'a>(from: &[&'a Atom], initial: &Substitution) -> Vec<&'a Atom> {
    let mut bound: Vec<lap_ir::Var> = initial.iter().map(|(v, _)| v).collect();
    let mut remaining: Vec<&Atom> = from.to_vec();
    let mut out = Vec::with_capacity(from.len());
    while !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let total = a.vars().count();
                let already = a.vars().filter(|v| bound.contains(v)).count();
                // Prefer high bound-count, then low unbound-count.
                (i, (already as isize, -((total - already) as isize)))
            })
            .max_by_key(|&(_, key)| key)
            .expect("non-empty");
        let atom = remaining.swap_remove(best_idx);
        for v in atom.vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        out.push(atom);
    }
    out
}

fn search(
    order: &[&Atom],
    depth: usize,
    index: &HashMap<lap_ir::Predicate, Vec<&Atom>>,
    subst: &mut Substitution,
    visit: &mut dyn FnMut(&Substitution) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let Some(atom) = order.get(depth) else {
        return visit(subst);
    };
    let candidates = index
        .get(&atom.predicate)
        .map(|v| v.as_slice())
        .unwrap_or(&[]);
    'candidates: for &target in candidates {
        // Try to unify atom -> target, recording which vars we newly bind.
        let mut newly_bound: Vec<lap_ir::Var> = Vec::new();
        for (&s, &t) in atom.args.iter().zip(target.args.iter()) {
            match s {
                Term::Var(v) => match subst.get(v) {
                    Some(prev) if prev != t => {
                        for v in newly_bound.drain(..) {
                            subst.remove(v);
                        }
                        continue 'candidates;
                    }
                    Some(_) => {}
                    None => {
                        subst.insert(v, t);
                        newly_bound.push(v);
                    }
                },
                Term::Const(_) if s == t => {}
                Term::Const(_) => {
                    for v in newly_bound.drain(..) {
                        subst.remove(v);
                    }
                    continue 'candidates;
                }
            }
        }
        if search(order, depth + 1, index, subst, visit).is_break() {
            return ControlFlow::Break(());
        }
        for v in newly_bound {
            subst.remove(v);
        }
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_cq;

    fn atoms(q: &lap_ir::ConjunctiveQuery) -> Vec<&Atom> {
        q.body.iter().filter(|l| l.positive).map(|l| &l.atom).collect()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let q = parse_cq("Q(x) :- R(x, y), S(y, z).").unwrap();
        assert!(has_homomorphism(&atoms(&q), &atoms(&q), Substitution::new()));
    }

    #[test]
    fn folding_homomorphism() {
        // R(x,y),R(y,x) maps into R(a,a) by x,y -> a.
        let from = parse_cq("Q(k) :- R(x, y), R(y, x), K(k).").unwrap();
        let to = parse_cq("Q(k) :- R(a, a), K(k).").unwrap();
        assert!(has_homomorphism(&atoms(&from), &atoms(&to), Substitution::new()));
    }

    #[test]
    fn no_homomorphism_when_predicate_missing() {
        let from = parse_cq("Q(x) :- R(x), S(x).").unwrap();
        let to = parse_cq("Q(x) :- R(x).").unwrap();
        assert!(!has_homomorphism(&atoms(&from), &atoms(&to), Substitution::new()));
    }

    #[test]
    fn constants_must_match() {
        let from = parse_cq("Q(x) :- R(x, 1).").unwrap();
        let to_bad = parse_cq("Q(x) :- R(x, 2).").unwrap();
        let to_good = parse_cq("Q(x) :- R(y, 1).").unwrap();
        assert!(!has_homomorphism(&atoms(&from), &atoms(&to_bad), Substitution::new()));
        assert!(has_homomorphism(&atoms(&from), &atoms(&to_good), Substitution::new()));
    }

    #[test]
    fn initial_bindings_restrict_search() {
        let from = parse_cq("Q(x) :- R(x, y).").unwrap();
        let to = parse_cq("Q(u) :- R(u, v).").unwrap();
        // Force x -> v: no atom R(v, _) exists, so the search fails.
        let mut init = Substitution::new();
        init.insert(lap_ir::Var::new("x"), Term::var("v"));
        assert!(!has_homomorphism(&atoms(&from), &atoms(&to), init));
    }

    #[test]
    fn enumerates_all_mappings() {
        // R(x) into {R(a), R(b)}: exactly two homomorphisms.
        let from = parse_cq("Q(k) :- R(x), K(k).").unwrap();
        let to = parse_cq("Q(k) :- R(a), R(b), K(k).").unwrap();
        let mut count = 0;
        for_each_homomorphism(&atoms(&from), &atoms(&to), Substitution::new(), &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn unify_heads_binds_and_rejects() {
        let h1 = parse_cq("Q(x, 1) :- R(x).").unwrap().head;
        let h2 = parse_cq("Q(a, 1) :- R(a).").unwrap().head;
        let mut s = Substitution::new();
        assert!(unify_heads(&h1, &h2, &mut s).is_some());
        assert_eq!(s.get(lap_ir::Var::new("x")), Some(Term::var("a")));
        let h3 = parse_cq("Q(a, 2) :- R(a).").unwrap().head;
        let mut s = Substitution::new();
        assert!(unify_heads(&h1, &h3, &mut s).is_none());
    }
}
