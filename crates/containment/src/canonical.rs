//! Canonical-database ("frozen query") containment oracle for CQs.
//!
//! `P ⊑ Q` iff the frozen head of `P` is an answer of `Q` over the
//! canonical database `[P]` obtained by freezing `P`'s variables into fresh
//! constants (Chandra–Merlin). This is a deliberately *independent*
//! implementation from [`crate::cq::cq_contained`] — a naive fact-scan
//! evaluator with no atom reordering or predicate indexing — used as a
//! differential-testing oracle in the property-test suite and as the
//! substrate for the acyclic fast path.

use lap_ir::{Atom, Constant, ConjunctiveQuery, Substitution, Term, UnionQuery, Var};
use std::collections::HashMap;

/// An α-invariant textual key for a UCQ¬, used by the
/// [`crate::ContainmentEngine`] verdict cache.
///
/// Each disjunct's variables are renamed to `_c0, _c1, …` in
/// first-occurrence order (head first, then body in order); the renamed
/// body literals are rendered, sorted, and deduplicated; the rendered
/// disjuncts are sorted. Equal keys therefore imply the two queries are
/// identical up to variable names, body-literal order/duplication, and
/// disjunct order — all semantics-preserving — so caching verdicts under
/// this key is *sound*. It is not *complete* (e.g. two α-equivalent
/// queries whose bodies are permuted in a way that changes variable
/// first-occurrence order can key differently); a missed hit only costs a
/// recomputation.
pub fn canonical_key(q: &UnionQuery) -> String {
    let mut rendered: Vec<String> = q.disjuncts.iter().map(canonical_disjunct).collect();
    rendered.sort();
    rendered.join(" | ")
}

fn canonical_disjunct(p: &ConjunctiveQuery) -> String {
    let mut s = Substitution::new();
    for (i, v) in p.vars().into_iter().enumerate() {
        s.insert(v, Term::Var(Var::new(&format!("_c{i}"))));
    }
    let renamed = p.apply(&s);
    let mut lits: Vec<String> = renamed.body.iter().map(|l| l.to_string()).collect();
    lits.sort();
    lits.dedup();
    format!("{} :- {}", renamed.head, lits.join(", "))
}

/// Freezes the variables of `p` into fresh constants `_frz_<name>`.
/// Returns the substitution used.
pub fn freezing_substitution(p: &ConjunctiveQuery) -> Substitution {
    let mut s = Substitution::new();
    for v in p.vars() {
        s.insert(v, Term::Const(Constant::str(&format!("_frz_{}", v.name()))));
    }
    s
}

/// The canonical database of `p`: its positive body atoms with variables
/// frozen to constants.
pub fn canonical_facts(p: &ConjunctiveQuery) -> Vec<Atom> {
    let s = freezing_substitution(p);
    p.body
        .iter()
        .filter(|l| l.positive)
        .map(|l| s.apply_atom(&l.atom))
        .collect()
}

/// `P ⊑ Q` for plain CQs via the canonical database.
pub fn cq_contained_canonical(p: &ConjunctiveQuery, q: &ConjunctiveQuery) -> bool {
    debug_assert!(p.is_positive() && q.is_positive());
    let s = freezing_substitution(p);
    let facts = canonical_facts(p);
    let frozen_head = s.apply_atom(&p.head);
    // Unify q's head with the frozen head to seed the evaluation.
    if q.head.predicate != frozen_head.predicate {
        return false;
    }
    let mut env: HashMap<Var, Constant> = HashMap::new();
    for (&qt, &ft) in q.head.args.iter().zip(frozen_head.args.iter()) {
        let Term::Const(fc) = ft else {
            unreachable!("frozen head is ground")
        };
        match qt {
            Term::Var(v) => {
                if let Some(&prev) = env.get(&v) {
                    if prev != fc {
                        return false;
                    }
                } else {
                    env.insert(v, fc);
                }
            }
            Term::Const(c) if c == fc => {}
            Term::Const(_) => return false,
        }
    }
    let atoms: Vec<&Atom> = q.body.iter().map(|l| &l.atom).collect();
    eval(&atoms, 0, &facts, &mut env)
}

/// Naive left-to-right evaluation of a list of atoms over ground facts.
fn eval(atoms: &[&Atom], depth: usize, facts: &[Atom], env: &mut HashMap<Var, Constant>) -> bool {
    let Some(atom) = atoms.get(depth) else {
        return true;
    };
    'facts: for fact in facts {
        if fact.predicate != atom.predicate {
            continue;
        }
        let mut bound_here: Vec<Var> = Vec::new();
        for (&at, &ft) in atom.args.iter().zip(fact.args.iter()) {
            let Term::Const(fc) = ft else {
                unreachable!("facts are ground")
            };
            match at {
                Term::Var(v) => match env.get(&v) {
                    Some(&prev) if prev != fc => {
                        for v in bound_here.drain(..) {
                            env.remove(&v);
                        }
                        continue 'facts;
                    }
                    Some(_) => {}
                    None => {
                        env.insert(v, fc);
                        bound_here.push(v);
                    }
                },
                Term::Const(c) if c == fc => {}
                Term::Const(_) => {
                    for v in bound_here.drain(..) {
                        env.remove(&v);
                    }
                    continue 'facts;
                }
            }
        }
        if eval(atoms, depth + 1, facts, env) {
            return true;
        }
        for v in bound_here {
            env.remove(&v);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::cq_contained;
    use lap_ir::parse_cq;

    fn both(p: &str, q: &str) -> (bool, bool) {
        let p = parse_cq(p).unwrap();
        let q = parse_cq(q).unwrap();
        (cq_contained(&p, &q), cq_contained_canonical(&p, &q))
    }

    #[test]
    fn agrees_with_mapping_implementation() {
        let cases = [
            ("Q(x) :- R(x, y), R(y, z).", "Q(x) :- R(x, u)."),
            ("Q(x) :- R(x, u).", "Q(x) :- R(x, y), R(y, z)."),
            ("Q(x) :- R(x, x).", "Q(x) :- R(x, y)."),
            ("Q(x) :- R(x, y).", "Q(x) :- R(x, x)."),
            ("Q(x) :- R(x, 1).", "Q(x) :- R(x, y)."),
            ("Q(x) :- R(x, y).", "Q(x) :- R(x, 1)."),
            ("Q(x, y) :- R(x, z), S(z, y).", "Q(x, y) :- R(x, z), S(z, y)."),
            ("Q(x) :- R(x), S(x).", "Q(x) :- S(x), R(x)."),
        ];
        for (p, q) in cases {
            let (a, b) = both(p, q);
            assert_eq!(a, b, "disagreement on P={p} Q={q}");
        }
    }

    #[test]
    fn canonical_facts_are_ground() {
        let p = parse_cq("Q(x) :- R(x, y), S(y, 3).").unwrap();
        for f in canonical_facts(&p) {
            assert!(f.is_ground(), "{f}");
        }
    }

    #[test]
    fn head_constant_mismatch_fails() {
        let (a, b) = both("Q(1) :- R(1).", "Q(2) :- R(2).");
        assert!(!a);
        assert!(!b);
    }

    #[test]
    fn head_constants_match() {
        let (a, b) = both("Q(1) :- R(1).", "Q(1) :- R(x).");
        // Q's head Q(1) vs frozen head Q(1): fine; body R(x) matches R(1).
        assert!(a);
        assert!(b);
    }
}

#[cfg(test)]
mod key_tests {
    use super::*;
    use lap_ir::parse_query;

    fn key(q: &str) -> String {
        canonical_key(&parse_query(q).unwrap())
    }

    #[test]
    fn alpha_renaming_is_invisible() {
        assert_eq!(
            key("Q(x) :- R(x, y), not S(y)."),
            key("Q(a) :- R(a, b), not S(b).")
        );
    }

    #[test]
    fn disjunct_order_is_invisible() {
        assert_eq!(
            key("Q(x) :- R(x).\nQ(x) :- S(x)."),
            key("Q(x) :- S(x).\nQ(x) :- R(x).")
        );
    }

    #[test]
    fn duplicate_literals_collapse() {
        assert_eq!(key("Q(x) :- R(x), R(x)."), key("Q(x) :- R(x)."));
    }

    #[test]
    fn distinct_queries_key_differently() {
        assert_ne!(key("Q(x) :- R(x)."), key("Q(x) :- S(x)."));
        assert_ne!(key("Q(x) :- R(x, y)."), key("Q(x) :- R(y, x)."));
        assert_ne!(key("Q(x) :- R(x), S(x)."), key("Q(x) :- R(x), not S(x)."));
        assert_ne!(key("Q(x) :- R(x, x)."), key("Q(x) :- R(x, y)."));
    }

    #[test]
    fn constants_are_preserved() {
        assert_ne!(key("Q(x) :- R(x, 1)."), key("Q(x) :- R(x, 2)."));
        assert_eq!(key("Q(x) :- R(x, 1)."), key("Q(y) :- R(y, 1)."));
    }
}
