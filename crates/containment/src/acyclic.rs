//! Acyclicity (GYO reduction) and the polynomial containment fast path for
//! acyclic right-hand queries (Chekuri–Rajaraman [CR97]).
//!
//! `P ⊑ Q` is decided by evaluating `Q` over `P`'s canonical database with
//! the free variables pre-bound to their frozen constants. When `Q` is
//! α-acyclic this boolean evaluation is done with Yannakakis' semijoin
//! program over a GYO join tree — polynomial time — instead of the generic
//! NP backtracking search.

use crate::canonical::{canonical_facts, freezing_substitution};
use lap_ir::{Atom, ConjunctiveQuery, Substitution, Term, Var};
use std::collections::{HashMap, HashSet};

/// A join tree over the atoms of a query: `parent[i]` is the parent of atom
/// `i`, `None` for the root. Produced by GYO ear removal; exists iff the
/// query's hypergraph is α-acyclic.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Parent atom index per atom; exactly one root has `None`.
    pub parent: Vec<Option<usize>>,
    /// Atom indices in the order ears were removed (leaves first). The last
    /// entry is the root.
    pub elimination_order: Vec<usize>,
}

/// Attempts to build a GYO join tree over the positive atoms of `q`.
/// Returns `None` if the hypergraph is cyclic.
pub fn join_tree(q: &ConjunctiveQuery) -> Option<JoinTree> {
    let atoms: Vec<&Atom> = q.body.iter().filter(|l| l.positive).map(|l| &l.atom).collect();
    let n = atoms.len();
    if n == 0 {
        return Some(JoinTree {
            parent: Vec::new(),
            elimination_order: Vec::new(),
        });
    }
    let var_sets: Vec<HashSet<Var>> = atoms.iter().map(|a| a.vars().collect()).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        // Find an ear: an atom e with a witness w (≠ e, alive) such that
        // every variable of e shared with any *other* alive atom occurs in w.
        let mut found = None;
        'ears: for e in 0..n {
            if !alive[e] {
                continue;
            }
            // Variables of e shared with other alive atoms.
            let shared: HashSet<Var> = var_sets[e]
                .iter()
                .filter(|v| {
                    (0..n).any(|j| j != e && alive[j] && var_sets[j].contains(v))
                })
                .copied()
                .collect();
            for w in 0..n {
                if w == e || !alive[w] {
                    continue;
                }
                if shared.is_subset(&var_sets[w]) {
                    found = Some((e, w));
                    break 'ears;
                }
            }
        }
        let (e, w) = found?;
        alive[e] = false;
        parent[e] = Some(w);
        order.push(e);
        remaining -= 1;
    }
    let root = (0..n).find(|&i| alive[i]).expect("one atom remains");
    order.push(root);
    Some(JoinTree {
        parent,
        elimination_order: order,
    })
}

/// True iff the positive body of `q` is α-acyclic.
pub fn is_acyclic(q: &ConjunctiveQuery) -> bool {
    join_tree(q).is_some()
}

/// Polynomial containment check `P ⊑ Q` for plain CQs with acyclic `Q`.
/// Returns `None` when `Q` is cyclic (caller should fall back to the
/// generic check).
pub fn cq_contained_acyclic(p: &ConjunctiveQuery, q: &ConjunctiveQuery) -> Option<bool> {
    debug_assert!(p.is_positive() && q.is_positive());
    let tree = join_tree(q)?;
    if q.head.predicate != p.head.predicate {
        return Some(false);
    }
    let frz = freezing_substitution(p);
    let frozen_head = frz.apply_atom(&p.head);
    // Bind q's head terms to the frozen head constants; reject clashes.
    let mut bind = Substitution::new();
    for (&qt, &ft) in q.head.args.iter().zip(frozen_head.args.iter()) {
        match qt {
            Term::Var(v) => match bind.get(v) {
                Some(prev) if prev != ft => return Some(false),
                Some(_) => {}
                None => bind.insert(v, ft),
            },
            Term::Const(_) if qt == ft => {}
            Term::Const(_) => return Some(false),
        }
    }
    let facts = canonical_facts(p);
    let q_atoms: Vec<Atom> = q
        .body
        .iter()
        .filter(|l| l.positive)
        .map(|l| bind.apply_atom(&l.atom))
        .collect();

    // Per-atom relations: the satisfying assignments of each (partially
    // ground) atom over the canonical database, keyed by the atom's vars.
    let mut relations: Vec<Vec<HashMap<Var, Term>>> = Vec::with_capacity(q_atoms.len());
    for atom in &q_atoms {
        let mut rows = Vec::new();
        'facts: for fact in &facts {
            if fact.predicate != atom.predicate {
                continue;
            }
            let mut row: HashMap<Var, Term> = HashMap::new();
            for (&at, &ft) in atom.args.iter().zip(fact.args.iter()) {
                match at {
                    Term::Var(v) => {
                        if let Some(&prev) = row.get(&v) {
                            if prev != ft {
                                continue 'facts;
                            }
                        } else {
                            row.insert(v, ft);
                        }
                    }
                    Term::Const(_) if at == ft => {}
                    Term::Const(_) => continue 'facts,
                }
            }
            rows.push(row);
        }
        if rows.is_empty() {
            return Some(false);
        }
        relations.push(rows);
    }

    // Bottom-up semijoin pass: reduce each parent by each child in
    // elimination order (children are eliminated before their parents).
    for &e in &tree.elimination_order {
        let Some(w) = tree.parent[e] else {
            continue; // root
        };
        let child_rows = std::mem::take(&mut relations[e]);
        let parent_rows = std::mem::take(&mut relations[w]);
        let kept: Vec<HashMap<Var, Term>> = parent_rows
            .into_iter()
            .filter(|prow| {
                child_rows.iter().any(|crow| {
                    crow.iter()
                        .all(|(v, t)| prow.get(v).is_none_or(|pt| pt == t))
                })
            })
            .collect();
        if kept.is_empty() {
            return Some(false);
        }
        relations[w] = kept;
        relations[e] = child_rows;
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::cq_contained;
    use lap_ir::parse_cq;

    #[test]
    fn chains_are_acyclic() {
        let q = parse_cq("Q(x) :- R(x, y), S(y, z), T(z, w).").unwrap();
        assert!(is_acyclic(&q));
    }

    #[test]
    fn triangles_are_cyclic() {
        let q = parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x).").unwrap();
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn stars_are_acyclic() {
        let q = parse_cq("Q(x) :- R(x, a), S(x, b), T(x, c).").unwrap();
        assert!(is_acyclic(&q));
    }

    #[test]
    fn covering_atom_makes_cycle_acyclic() {
        // A triangle plus an atom covering all three vertices is α-acyclic.
        let q = parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x), U(x, y, z).").unwrap();
        assert!(is_acyclic(&q));
    }

    #[test]
    fn agrees_with_generic_checker() {
        let cases = [
            ("Q(x) :- R(x, y), R(y, z), R(z, w).", "Q(x) :- R(x, u), R(u, v)."),
            ("Q(x) :- R(x, u), R(u, v).", "Q(x) :- R(x, y), R(y, z), R(z, w)."),
            ("Q(x) :- R(x, x).", "Q(x) :- R(x, y)."),
            ("Q(x) :- R(x, y).", "Q(x) :- R(x, x)."),
            ("Q(x) :- R(x, y), S(y, z).", "Q(x) :- R(x, y), S(y, z)."),
            ("Q(x) :- R(x, 1), S(1, x).", "Q(x) :- R(x, w), S(w, x)."),
        ];
        for (p, q) in cases {
            let p = parse_cq(p).unwrap();
            let q = parse_cq(q).unwrap();
            let generic = cq_contained(&p, &q);
            let fast = cq_contained_acyclic(&p, &q).expect("acyclic Q");
            assert_eq!(generic, fast, "disagreement on P={p} Q={q}");
        }
    }

    #[test]
    fn cyclic_q_returns_none() {
        let p = parse_cq("Q(x) :- R(x, x), S(x, x), T(x, x).").unwrap();
        let q = parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x).").unwrap();
        assert!(cq_contained_acyclic(&p, &q).is_none());
        assert!(cq_contained(&p, &q));
    }
}
