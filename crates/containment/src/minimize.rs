//! Query minimization (cores) for CQ and UCQ — the subroutine of Li &
//! Chang's `CQstable`/`UCQstable` baselines (paper, Sections 5.3–5.4).

use crate::cq::cq_contained;
use crate::ucq::ucq_contained;
use crate::ucqn::ucqn_contained;
use lap_ir::{ConjunctiveQuery, UnionQuery};

/// Minimizes a plain conjunctive query by repeatedly deleting redundant
/// body atoms. The result is the *core*: a minimal equivalent subquery,
/// unique up to variable renaming (Chandra–Merlin).
///
/// Deleting an atom always weakens a CQ (`Q ⊑ Q'`), so `Q' ≡ Q` iff
/// `Q' ⊑ Q`; an atom is deleted when that check passes and the deletion
/// keeps the query safe.
pub fn minimize_cq(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    debug_assert!(q.is_positive(), "minimize_cq requires a positive CQ");
    let mut current = q.clone();
    let mut i = 0;
    while i < current.body.len() {
        if current.body.len() == 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.body.remove(i);
        if candidate.is_safe() && cq_contained(&candidate, &current) {
            current = candidate;
            i = 0; // earlier atoms may have become redundant
        } else {
            i += 1;
        }
    }
    current
}

/// Minimizes a union of plain conjunctive queries: first drops disjuncts
/// contained in the remainder of the union, then minimizes each surviving
/// disjunct. This is the "minimal with respect to union" form used by
/// `UCQstable` (paper, Section 5.4 / Example 10).
pub fn minimize_ucq(q: &UnionQuery) -> UnionQuery {
    let mut current = q.clone();
    // Drop disjuncts absorbed by the rest of the union.
    let mut i = 0;
    while i < current.disjuncts.len() {
        if current.disjuncts.len() == 1 {
            break;
        }
        let without = current.without_disjunct(i);
        let singleton = UnionQuery::single(current.disjuncts[i].clone());
        if ucq_contained(&singleton, &without) {
            current = without;
            i = 0;
        } else {
            i += 1;
        }
    }
    // Minimize each disjunct individually.
    current.disjuncts = current.disjuncts.iter().map(minimize_cq).collect();
    current
}

/// Union minimization for UCQ¬: drops disjuncts contained in the rest of
/// the union, using the Wei–Lausen containment (so negation is handled).
/// Unlike [`minimize_ucq`] it does not minimize disjunct bodies —
/// CQ¬-body minimization is not the simple atom-deletion core computation,
/// since removing a negative literal *weakens* the disjunct instead of
/// strengthening it.
pub fn minimize_union_ucqn(q: &UnionQuery) -> UnionQuery {
    let mut current = q.clone();
    let mut i = 0;
    while i < current.disjuncts.len() {
        if current.disjuncts.len() == 1 {
            break;
        }
        let without = current.without_disjunct(i);
        let singleton = UnionQuery::single(current.disjuncts[i].clone());
        if ucqn_contained(&singleton, &without) {
            current = without;
            i = 0;
        } else {
            i += 1;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::cq_equivalent;
    use crate::ucq::ucq_equivalent;
    use lap_ir::{parse_cq, parse_query};

    #[test]
    fn removes_redundant_atom() {
        let q = parse_cq("Q(x) :- R(x, y), R(x, z).").unwrap();
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 1);
        assert!(cq_equivalent(&m, &q));
    }

    #[test]
    fn keeps_non_redundant_atoms() {
        let q = parse_cq("Q(x) :- R(x, y), S(y, x).").unwrap();
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn paper_example_9_minimization() {
        // Q(x) :- F(x), B(x), B(y), F(z) minimizes to M(x) :- F(x), B(x).
        let q = parse_cq("Q(x) :- F(x), B(x), B(y), F(z).").unwrap();
        let m = minimize_cq(&q);
        let expected = parse_cq("Q(x) :- F(x), B(x).").unwrap();
        assert!(cq_equivalent(&m, &expected));
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn folding_chain_minimization() {
        // R(x,y),R(y,z),R(x,w): w-atom folds into the chain start? No:
        // mapping w→y works, so the third atom is redundant.
        let q = parse_cq("Q(x) :- R(x, y), R(y, z), R(x, w).").unwrap();
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 2);
        assert!(cq_equivalent(&m, &q));
    }

    #[test]
    fn paper_example_10_union_minimization() {
        let q = parse_query(
            "Q(x) :- F(x), G(x).\n\
             Q(x) :- F(x), H(x), B(y).\n\
             Q(x) :- F(x).",
        )
        .unwrap();
        let m = minimize_ucq(&q);
        assert_eq!(m.disjuncts.len(), 1);
        assert_eq!(m.disjuncts[0].to_string(), "Q(x) :- F(x).");
        assert!(ucq_equivalent(&m, &q));
    }

    #[test]
    fn union_of_incomparable_disjuncts_is_untouched() {
        let q = parse_query("Q(x) :- F(x).\nQ(x) :- G(x).").unwrap();
        let m = minimize_ucq(&q);
        assert_eq!(m.disjuncts.len(), 2);
    }

    #[test]
    fn ucqn_union_minimization_collapses_excluded_middle() {
        // (R∧S) ∨ (R∧¬S) ∨ R: the first two are absorbed by the third —
        // and conversely R is absorbed by the first two together, so the
        // loop keeps exactly one equivalent form.
        let q = parse_query(
            "Q(x) :- R(x), S(x).\n\
             Q(x) :- R(x), not S(x).\n\
             Q(x) :- R(x).",
        )
        .unwrap();
        let m = minimize_union_ucqn(&q);
        assert!(m.disjuncts.len() < 3, "{m}");
        assert!(crate::ucqn::ucqn_equivalent(&m, &q));
    }

    #[test]
    fn ucqn_union_minimization_keeps_incomparable_negations() {
        let q = parse_query(
            "Q(x) :- R(x), not S(x).\n\
             Q(x) :- R(x), not T(x).",
        )
        .unwrap();
        let m = minimize_union_ucqn(&q);
        assert_eq!(m.disjuncts.len(), 2);
    }

    #[test]
    fn ucqn_union_minimization_drops_unsat_disjuncts() {
        let q = parse_query(
            "Q(x) :- R(x), not R(x).\n\
             Q(x) :- R(x), T(x).",
        )
        .unwrap();
        let m = minimize_union_ucqn(&q);
        assert_eq!(m.disjuncts.len(), 1);
        assert_eq!(m.disjuncts[0].to_string(), "Q(x) :- R(x), T(x).");
    }

    #[test]
    fn minimization_is_idempotent() {
        let q = parse_cq("Q(x) :- R(x, y), R(x, z), S(z).").unwrap();
        let m1 = minimize_cq(&q);
        let m2 = minimize_cq(&m1);
        assert_eq!(m1, m2);
    }
}
