//! A configurable containment engine: the crate's decision procedures
//! behind a handle that adds **parallel** per-disjunct evaluation and a
//! **memoized** verdict cache shared across calls.
//!
//! The paper's `FEASIBLE` algorithm (Fig. 3) and the mediator's rewriting
//! loop both call containment repeatedly — often on the *same* pair of
//! queries (e.g. `ans(Q) ⊑ Q` re-checked per plan candidate, or absorption
//! checks that revisit disjunct pairs). Each decision is Π₂ᴾ-hard in the
//! worst case, so caching verdicts and fanning independent disjuncts onto
//! threads are the two levers that matter. The cache is keyed on
//! [`canonical_key`](crate::canonical_key) pairs, which is α-invariant and
//! *sound*: equal keys imply equivalent queries, so a cached verdict is
//! always the verdict the full procedure would return.
//!
//! [`ContainmentEngine::default()`] is sequential and uncached — exactly
//! the behavior of the free function [`contained`](crate::contained) — so
//! threading an engine through existing code is behavior-preserving until
//! a caller opts in via [`EngineConfig`].

use crate::canonical::canonical_key;
use crate::ucq::ucq_contained;
use crate::ucqn::{ucqn_contained_parallel, ucqn_contained_stats, ContainmentStats};
use lap_ir::UnionQuery;
use lap_obs::{Counter, Recorder};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning knobs for a [`ContainmentEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Fan the per-disjunct containment checks onto scoped worker threads
    /// with early-exit cancellation.
    pub parallel: bool,
    /// Memoize verdicts in a canonical-form cache shared across calls.
    pub cache: bool,
}

impl EngineConfig {
    /// Sequential, uncached — the behavior of the free functions.
    pub fn sequential() -> EngineConfig {
        EngineConfig::default()
    }

    /// Parallel *and* cached.
    pub fn full() -> EngineConfig {
        EngineConfig {
            parallel: true,
            cache: true,
        }
    }
}

/// Aggregate observability counters for one engine over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Containment decisions requested.
    pub decisions: u64,
    /// Decisions answered from the verdict cache.
    pub cache_hits: u64,
    /// Decisions that ran a full procedure (cache miss or caching off).
    pub cache_misses: u64,
    /// Entries currently held by the verdict cache.
    pub cache_entries: usize,
    /// Merged per-decision procedure counters (recursion depth, mappings,
    /// worker threads, cancellations, …).
    pub procedure: ContainmentStats,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} cache_hits={} cache_misses={} cache_entries={} \
             recursive_calls={} memo_hits={} mappings_checked={} workers={} cancelled={}",
            self.decisions,
            self.cache_hits,
            self.cache_misses,
            self.cache_entries,
            self.procedure.recursive_calls,
            self.procedure.cache_hits,
            self.procedure.mappings_checked,
            self.procedure.parallel_workers,
            self.procedure.cancelled_tasks,
        )
    }
}

/// A containment decision service with an optional verdict cache and an
/// optional parallel evaluation strategy. Cheap to share behind an `Arc`;
/// all methods take `&self` and are thread-safe.
///
/// Lifetime counters live in `lap-obs` [`Counter`]s (named
/// `containment.*` when attached to a [`Recorder`], detached otherwise);
/// [`ContainmentEngine::stats`] is a view over them relative to the
/// baselines captured at the last [`ContainmentEngine::clear`].
pub struct ContainmentEngine {
    cfg: EngineConfig,
    recorder: Recorder,
    verdicts: Mutex<HashMap<(String, String), bool>>,
    decisions: Counter,
    hits: Counter,
    misses: Counter,
    recursive_calls: Counter,
    memo_hits: Counter,
    mappings_checked: Counter,
    verdict_contained: Counter,
    verdict_not_contained: Counter,
    /// Counter values at the last `clear()` — shared recorder counters are
    /// monotone, so the per-engine view subtracts these.
    base_decisions: AtomicU64,
    base_hits: AtomicU64,
    base_misses: AtomicU64,
    procedure: Mutex<ContainmentStats>,
}

impl Default for ContainmentEngine {
    fn default() -> ContainmentEngine {
        ContainmentEngine::new(EngineConfig::sequential())
    }
}

impl fmt::Debug for ContainmentEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContainmentEngine")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ContainmentEngine {
    /// An engine with the given configuration (not attached to any
    /// recorder; counters are detached but fully functional).
    pub fn new(cfg: EngineConfig) -> ContainmentEngine {
        ContainmentEngine::with_recorder(cfg, &Recorder::disabled())
    }

    /// An engine whose counters register with `recorder` under the
    /// `containment.*` names (decisions, cache hits/misses, recursive
    /// calls, memo hits, mappings checked, verdict tallies).
    pub fn with_recorder(cfg: EngineConfig, recorder: &Recorder) -> ContainmentEngine {
        let engine = ContainmentEngine {
            cfg,
            recorder: recorder.clone(),
            verdicts: Mutex::new(HashMap::new()),
            decisions: recorder.counter("containment.decisions"),
            hits: recorder.counter("containment.cache_hits"),
            misses: recorder.counter("containment.cache_misses"),
            recursive_calls: recorder.counter("containment.recursive_calls"),
            memo_hits: recorder.counter("containment.memo_hits"),
            mappings_checked: recorder.counter("containment.mappings_checked"),
            verdict_contained: recorder.counter("containment.verdicts.contained"),
            verdict_not_contained: recorder.counter("containment.verdicts.not_contained"),
            base_decisions: AtomicU64::new(0),
            base_hits: AtomicU64::new(0),
            base_misses: AtomicU64::new(0),
            procedure: Mutex::new(ContainmentStats::default()),
        };
        // The shared counters may already carry traffic from elsewhere —
        // start this engine's view at zero.
        engine.base_decisions.store(engine.decisions.get(), Ordering::Relaxed);
        engine.base_hits.store(engine.hits.get(), Ordering::Relaxed);
        engine.base_misses.store(engine.misses.get(), Ordering::Relaxed);
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// The recorder this engine reports to (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// `P ⊑ Q` under this engine's strategy. Same decision as
    /// [`crate::contained`] in every configuration.
    pub fn contained(&self, p: &UnionQuery, q: &UnionQuery) -> bool {
        self.contained_stats(p, q).0
    }

    /// [`ContainmentEngine::contained`] plus this decision's procedure
    /// counters (all-zero except the engine-cache fields on a cache hit).
    pub fn contained_stats(&self, p: &UnionQuery, q: &UnionQuery) -> (bool, ContainmentStats) {
        self.decisions.incr();
        let key = if self.cfg.cache {
            let key = (canonical_key(p), canonical_key(q));
            let cached = {
                let verdicts = self.verdicts.lock().expect("verdict cache not poisoned");
                verdicts.get(&key).copied()
            };
            if let Some(verdict) = cached {
                self.hits.incr();
                self.record_verdict(verdict);
                let stats = ContainmentStats {
                    engine_cache_hits: 1,
                    ..ContainmentStats::default()
                };
                self.procedure
                    .lock()
                    .expect("stats mutex not poisoned")
                    .absorb(&stats);
                return (verdict, stats);
            }
            Some(key)
        } else {
            None
        };
        self.misses.incr();
        let (verdict, mut stats) = self.decide(p, q);
        stats.engine_cache_misses = 1;
        self.record_verdict(verdict);
        self.recursive_calls.add(stats.recursive_calls);
        self.memo_hits.add(stats.cache_hits);
        self.mappings_checked.add(stats.mappings_checked);
        if let Some(key) = key {
            self.verdicts
                .lock()
                .expect("verdict cache not poisoned")
                .insert(key, verdict);
        }
        self.procedure
            .lock()
            .expect("stats mutex not poisoned")
            .absorb(&stats);
        (verdict, stats)
    }

    fn record_verdict(&self, verdict: bool) {
        if verdict {
            self.verdict_contained.incr();
        } else {
            self.verdict_not_contained.incr();
        }
    }

    /// Runs the underlying decision procedure, preserving the free
    /// function's dispatch: positive pairs take the plain UCQ path.
    fn decide(&self, p: &UnionQuery, q: &UnionQuery) -> (bool, ContainmentStats) {
        if p.is_positive() && q.is_positive() {
            // Sagiv–Yannakakis per-disjunct-pair mapping search; cheap
            // enough that the parallel fan-out is reserved for negation.
            (ucq_contained(p, q), ContainmentStats::default())
        } else if self.cfg.parallel {
            ucqn_contained_parallel(p, q)
        } else {
            ucqn_contained_stats(p, q)
        }
    }

    /// `P ≡ Q` under this engine's strategy.
    pub fn equivalent(&self, p: &UnionQuery, q: &UnionQuery) -> bool {
        self.contained(p, q) && self.contained(q, p)
    }

    /// A snapshot of the engine's lifetime counters (since construction /
    /// the last [`ContainmentEngine::clear`]) — a view over the shared
    /// recorder counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            decisions: self.decisions.get() - self.base_decisions.load(Ordering::Relaxed),
            cache_hits: self.hits.get() - self.base_hits.load(Ordering::Relaxed),
            cache_misses: self.misses.get() - self.base_misses.load(Ordering::Relaxed),
            cache_entries: self
                .verdicts
                .lock()
                .expect("verdict cache not poisoned")
                .len(),
            procedure: *self.procedure.lock().expect("stats mutex not poisoned"),
        }
    }

    /// Drops all cached verdicts and zeroes this engine's stats view (the
    /// recorder's lifetime counters are monotone and keep their values).
    pub fn clear(&self) {
        self.verdicts
            .lock()
            .expect("verdict cache not poisoned")
            .clear();
        self.base_decisions.store(self.decisions.get(), Ordering::Relaxed);
        self.base_hits.store(self.hits.get(), Ordering::Relaxed);
        self.base_misses.store(self.misses.get(), Ordering::Relaxed);
        *self.procedure.lock().expect("stats mutex not poisoned") = ContainmentStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contained;
    use lap_ir::parse_query;

    fn q(text: &str) -> UnionQuery {
        parse_query(text).unwrap()
    }

    const PAIRS: &[(&str, &str)] = &[
        ("Q(x) :- R(x).", "Q(x) :- R(x), S(x).\nQ(x) :- R(x), not S(x)."),
        ("Q(x) :- R(x), S(x).", "Q(x) :- R(x)."),
        ("Q(x) :- R(x).", "Q(x) :- R(x), S(x)."),
        ("Q(x) :- R(x), not S(x).", "Q(x) :- R(x)."),
        ("Q(x) :- R(x).", "Q(x) :- R(x), not S(x)."),
        (
            "Q(x) :- E(x, y), E(y, z), not E(x, z).",
            "Q(x) :- E(x, y), not E(y, y).",
        ),
        (
            "Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).",
            "Q(x) :- R(x).",
        ),
    ];

    #[test]
    fn every_config_agrees_with_the_free_function() {
        let configs = [
            EngineConfig::sequential(),
            EngineConfig::full(),
            EngineConfig {
                parallel: true,
                cache: false,
            },
            EngineConfig {
                parallel: false,
                cache: true,
            },
        ];
        for cfg in configs {
            let engine = ContainmentEngine::new(cfg);
            for (p, qq) in PAIRS {
                let (p, qq) = (q(p), q(qq));
                assert_eq!(
                    engine.contained(&p, &qq),
                    contained(&p, &qq),
                    "cfg {cfg:?} disagrees on P={p} Q={qq}"
                );
            }
        }
    }

    #[test]
    fn cache_hits_on_repeat_and_alpha_variants() {
        let engine = ContainmentEngine::new(EngineConfig {
            parallel: false,
            cache: true,
        });
        let p = q("Q(x) :- R(x), not S(x).");
        let qq = q("Q(x) :- R(x).");
        assert!(engine.contained(&p, &qq));
        let (_, stats) = engine.contained_stats(&p, &qq);
        assert_eq!(stats.engine_cache_hits, 1, "{stats:?}");
        // An α-renamed variant hits the same entry.
        let p2 = q("Q(a) :- R(a), not S(a).");
        let (v, stats) = engine.contained_stats(&p2, &qq);
        assert!(v);
        assert_eq!(stats.engine_cache_hits, 1, "{stats:?}");
        let s = engine.stats();
        assert_eq!(s.decisions, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_entries, 1);
    }

    #[test]
    fn uncached_engine_never_reports_hits() {
        let engine = ContainmentEngine::default();
        let p = q("Q(x) :- R(x).");
        for _ in 0..3 {
            engine.contained(&p, &p);
        }
        let s = engine.stats();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.cache_entries, 0);
    }

    #[test]
    fn parallel_engine_reports_workers() {
        let engine = ContainmentEngine::new(EngineConfig {
            parallel: true,
            cache: false,
        });
        let p = q("Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).\nQ(x) :- R(x), T(x).");
        let qq = q("Q(x) :- R(x).");
        let (v, stats) = engine.contained_stats(&p, &qq);
        assert!(v);
        assert!(stats.parallel_workers >= 1, "{stats:?}");
    }

    #[test]
    fn clear_resets_everything() {
        let engine = ContainmentEngine::new(EngineConfig::full());
        let p = q("Q(x) :- R(x), not S(x).");
        engine.contained(&p, &p);
        engine.contained(&p, &p);
        engine.clear();
        let s = engine.stats();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn recorder_mirrors_engine_counters() {
        let rec = Recorder::new();
        let engine = ContainmentEngine::with_recorder(EngineConfig::full(), &rec);
        let p = q("Q(x) :- R(x), not S(x).");
        let qq = q("Q(x) :- R(x).");
        engine.contained(&p, &qq); // miss
        engine.contained(&p, &qq); // hit
        engine.contained(&qq, &p); // miss, not contained
        let s = engine.stats();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("containment.decisions"), s.decisions);
        assert_eq!(snap.counter("containment.cache_hits"), s.cache_hits);
        assert_eq!(snap.counter("containment.cache_misses"), s.cache_misses);
        assert_eq!(
            snap.counter("containment.recursive_calls"),
            s.procedure.recursive_calls
        );
        assert_eq!(
            snap.counter("containment.verdicts.contained")
                + snap.counter("containment.verdicts.not_contained"),
            s.decisions
        );
        // clear() re-baselines the view without touching the recorder.
        engine.clear();
        assert_eq!(engine.stats(), EngineStats::default());
        assert_eq!(rec.snapshot().counter("containment.decisions"), 3);
        engine.contained(&p, &qq);
        assert_eq!(engine.stats().decisions, 1);
        assert_eq!(rec.snapshot().counter("containment.decisions"), 4);
    }

    #[test]
    fn stats_display_is_complete() {
        let engine = ContainmentEngine::new(EngineConfig::full());
        let p = q("Q(x) :- R(x), not S(x).");
        engine.contained(&p, &p);
        let line = engine.stats().to_string();
        for field in ["decisions=", "cache_hits=", "cache_misses=", "recursive_calls="] {
            assert!(line.contains(field), "{line}");
        }
    }
}
