//! Query containment for CQ, UCQ, CQ¬, and UCQ¬.
//!
//! This crate implements the containment machinery that the paper's
//! `FEASIBLE` algorithm reduces to (Section 5.1):
//!
//! * [`cq_contained`] — Chandra–Merlin containment of plain conjunctive
//!   queries via containment-mapping search (**NP**-complete) \[CM77\].
//! * [`cq_contained_canonical`] — an independent canonical-database oracle
//!   for the same problem, used for differential testing.
//! * [`cq_contained_acyclic`] — the polynomial fast path for acyclic
//!   right-hand queries (GYO join tree + boolean Yannakakis) \[CR97\].
//! * [`ucq_contained`] — Sagiv–Yannakakis containment of unions \[SY80\].
//! * [`ucqn_contained`] / [`cqn_in_ucqn`] — the Wei–Lausen procedure for
//!   queries with safe negation (**Π₂ᴾ**-complete), Theorems 12–13 of the
//!   paper \[WL03\].
//! * [`minimize_cq`] / [`minimize_ucq`] — cores and union minimization, the
//!   subroutines of the Li–Chang baseline algorithms.
//!
//! The top-level entry point [`contained`] dispatches to the cheapest
//! applicable procedure: plain-positive pairs take the UCQ path (a plain
//! mapping search per disjunct pair), anything with negation takes the
//! Wei–Lausen recursion — which degenerates to exactly the positive check
//! when no negative literals are present, making the treatment uniform in
//! the sense of the paper's Section 5.
//!
//! ```
//! use lap_containment::contained;
//! use lap_ir::parse_query;
//!
//! let p = parse_query("Q(x) :- R(x).").unwrap();
//! let q = parse_query(
//!     "Q(x) :- R(x), S(x).\n\
//!      Q(x) :- R(x), not S(x).",
//! )
//! .unwrap();
//! assert!(contained(&p, &q)); // needs the excluded-middle recursion
//! assert!(contained(&q, &p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclic;
mod canonical;
mod cq;
mod engine;
mod mapping;
mod minimize;
mod ucq;
mod ucqn;

pub use acyclic::{cq_contained_acyclic, is_acyclic, join_tree, JoinTree};
pub use canonical::{canonical_facts, canonical_key, cq_contained_canonical, freezing_substitution};
pub use cq::{cq_contained, cq_equivalent};
pub use engine::{ContainmentEngine, EngineConfig, EngineStats};
pub use mapping::{for_each_homomorphism, has_homomorphism, unify_heads};
pub use minimize::{minimize_cq, minimize_ucq, minimize_union_ucqn};
pub use ucq::{ucq_contained, ucq_equivalent};
pub use ucqn::{
    cqn_in_ucqn, ucqn_contained, ucqn_contained_parallel, ucqn_contained_stats, ucqn_equivalent,
    ContainmentStats,
};

use lap_ir::UnionQuery;

/// `P ⊑ Q`: containment of UCQ¬ queries, dispatching to the cheapest
/// applicable decision procedure (see crate docs).
pub fn contained(p: &UnionQuery, q: &UnionQuery) -> bool {
    if p.is_positive() && q.is_positive() {
        ucq_contained(p, q)
    } else {
        ucqn_contained(p, q)
    }
}

/// `P ≡ Q`: equivalence of UCQ¬ queries.
pub fn equivalent(p: &UnionQuery, q: &UnionQuery) -> bool {
    contained(p, q) && contained(q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_query;

    #[test]
    fn dispatch_agrees_on_positive_queries() {
        let p = parse_query("Q(x) :- R(x, y), R(y, z).").unwrap();
        let q = parse_query("Q(x) :- R(x, u).").unwrap();
        assert_eq!(ucq_contained(&p, &q), ucqn_contained(&p, &q));
        assert_eq!(ucq_contained(&q, &p), ucqn_contained(&q, &p));
        assert!(contained(&p, &q));
        assert!(!contained(&q, &p));
    }

    #[test]
    fn equivalence_is_symmetric_containment() {
        let p = parse_query("Q(x) :- R(x, y).").unwrap();
        let q = parse_query("Q(a) :- R(a, b).").unwrap();
        assert!(equivalent(&p, &q));
    }
}
