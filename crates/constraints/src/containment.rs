//! Containment *under integrity constraints*: `P ⊑_Σ Q` — on every
//! instance satisfying `Σ`, `P`'s answers are among `Q`'s.
//!
//! Decided by chase-then-contain: `P ⊑_Σ Q` iff `chase_Σ(P) ⊑ Q` (the
//! classic reduction; for inclusion and functional dependencies with a
//! terminating chase this is sound and, for positive `Q`, complete). The
//! verdicts here are conservative when completeness cannot be guaranteed:
//!
//! * `true` is always sound (the chase only adds logical consequences);
//! * `false` may be a *don't know* when the chase hit its round cap
//!   (cyclic inclusions) — callers needing the distinction can inspect
//!   [`chase`]'s `complete` flag themselves.

use crate::chase::{chase, satisfiable_under, SatVerdict, DEFAULT_CHASE_ROUNDS};
use crate::deps::ConstraintSet;
use lap_containment::{cqn_in_ucqn, ucqn_contained};
use lap_ir::{ConjunctiveQuery, UnionQuery};

/// `P ⊑_Σ Q` for a CQ¬ left side against a UCQ¬ right side.
pub fn cqn_contained_under(
    p: &ConjunctiveQuery,
    q: &UnionQuery,
    cs: &ConstraintSet,
) -> bool {
    match satisfiable_under(p, cs, DEFAULT_CHASE_ROUNDS) {
        SatVerdict::Unsatisfiable => return true, // vacuous
        SatVerdict::Satisfiable | SatVerdict::Unknown => {}
    }
    let chased = chase(p, cs, DEFAULT_CHASE_ROUNDS);
    if chased.constant_clash {
        return true;
    }
    cqn_in_ucqn(&chased.query, q)
}

/// `P ⊑_Σ Q` for UCQ¬ queries: every disjunct of `P` contained under `Σ`.
pub fn contained_under(p: &UnionQuery, q: &UnionQuery, cs: &ConstraintSet) -> bool {
    if cs.is_empty() {
        return ucqn_contained(p, q);
    }
    p.disjuncts.iter().all(|pi| cqn_contained_under(pi, q, cs))
}

/// `P ≡_Σ Q`.
pub fn equivalent_under(p: &UnionQuery, q: &UnionQuery, cs: &ConstraintSet) -> bool {
    contained_under(p, q, cs) && contained_under(q, p, cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::{FunctionalDep, InclusionDep};
    use lap_ir::{parse_query, Predicate};

    fn fk_r_to_s() -> ConstraintSet {
        // R.1 ⊆ S.0 (Example 6's shape).
        ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("R", 2),
            vec![1],
            Predicate::new("S", 1),
            vec![0],
        ))
    }

    #[test]
    fn inclusion_makes_the_classic_containment_hold() {
        // P(x) :- R(x, y) ⊑_Σ Q(x) :- R(x, y), S(y) under R.1 ⊆ S.0 —
        // false without Σ, true with it.
        let p = parse_query("Q(x) :- R(x, y).").unwrap();
        let q = parse_query("Q(x) :- R(x, y), S(y).").unwrap();
        assert!(!ucqn_contained(&p, &q));
        assert!(contained_under(&p, &q, &fk_r_to_s()));
        assert!(equivalent_under(&p, &q, &fk_r_to_s()));
    }

    #[test]
    fn direction_matters() {
        // Q ⊑ P holds even without Σ (drop a conjunct); both directions
        // give equivalence under Σ, but only one without.
        let p = parse_query("Q(x) :- R(x, y).").unwrap();
        let q = parse_query("Q(x) :- R(x, y), S(y).").unwrap();
        assert!(contained_under(&q, &p, &ConstraintSet::new()));
        assert!(!equivalent_under(&p, &q, &ConstraintSet::new()));
    }

    #[test]
    fn negation_interacts_with_the_chase() {
        // P(x) :- R(x, y), ¬S(y) is Σ-unsatisfiable, hence ⊑_Σ anything.
        let p = parse_query("Q(x) :- R(x, y), not S(y).").unwrap();
        let anything = parse_query("Q(x) :- Z(x).").unwrap();
        assert!(contained_under(&p, &anything, &fk_r_to_s()));
        assert!(!ucqn_contained(&p, &anything));
    }

    #[test]
    fn fd_chase_enables_folding() {
        // Under R: 0→1, the two R-atoms below denote the same row, so
        // P(x) :- R(x, y), R(x, z), T(y) ⊑_Σ Q(x) :- R(x, w), T(w) already
        // holds without Σ (map w↦y) — the interesting direction is with z:
        // P(x) :- R(x, y), R(x, z), T(z) ⊑_Σ Q(x) :- R(x, w), T(w)?
        // Without Σ: map w↦z (R(x,z), T(z) both present): holds anyway.
        // A genuinely Σ-dependent case: P(x) :- R(x, y), R(x, z), T(y),
        // U(z) ⊑_Σ Q(x) :- R(x, w), T(w), U(w): needs y = z.
        let cs = ConstraintSet::new()
            .with_functional(FunctionalDep::new(Predicate::new("R", 2), vec![0], vec![1]));
        let p = parse_query("Q(x) :- R(x, y), R(x, z), T(y), U(z).").unwrap();
        let q = parse_query("Q(x) :- R(x, w), T(w), U(w).").unwrap();
        assert!(!ucqn_contained(&p, &q));
        assert!(contained_under(&p, &q, &cs));
    }

    #[test]
    fn empty_constraints_reduce_to_plain_containment() {
        let p = parse_query("Q(x) :- R(x, y), S(y).").unwrap();
        let q = parse_query("Q(x) :- R(x, y).").unwrap();
        assert_eq!(
            contained_under(&p, &q, &ConstraintSet::new()),
            ucqn_contained(&p, &q)
        );
    }
}
