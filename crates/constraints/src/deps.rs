//! Integrity-constraint types: inclusion and functional dependencies.

use lap_ir::Predicate;
use std::fmt;

/// An inclusion dependency `R[c1…ck] ⊆ S[d1…dk]`: every projection of an
/// `R`-tuple onto `c1…ck` appears as the projection of some `S`-tuple onto
/// `d1…dk`. The paper's Example 6 uses the unary case "`R.z` is a foreign
/// key referencing `S.z`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InclusionDep {
    /// The referencing relation.
    pub from: Predicate,
    /// Referencing columns (0-based), same length as `to_cols`.
    pub from_cols: Vec<usize>,
    /// The referenced relation.
    pub to: Predicate,
    /// Referenced columns (0-based).
    pub to_cols: Vec<usize>,
}

impl InclusionDep {
    /// Builds and validates an inclusion dependency.
    pub fn new(
        from: Predicate,
        from_cols: Vec<usize>,
        to: Predicate,
        to_cols: Vec<usize>,
    ) -> InclusionDep {
        assert_eq!(from_cols.len(), to_cols.len(), "column lists must align");
        assert!(!from_cols.is_empty(), "at least one column");
        assert!(from_cols.iter().all(|&c| c < from.arity), "from columns in range");
        assert!(to_cols.iter().all(|&c| c < to.arity), "to columns in range");
        InclusionDep {
            from,
            from_cols,
            to,
            to_cols,
        }
    }
}

impl fmt::Display for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] ⊆ {}[{}]",
            self.from.name,
            cols(&self.from_cols),
            self.to.name,
            cols(&self.to_cols)
        )
    }
}

/// A functional dependency `R: c1…ck → d1…dm`: tuples agreeing on the
/// determinant columns agree on the dependent columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionalDep {
    /// The constrained relation.
    pub relation: Predicate,
    /// Determinant columns (0-based).
    pub determinant: Vec<usize>,
    /// Dependent columns (0-based).
    pub dependent: Vec<usize>,
}

impl FunctionalDep {
    /// Builds and validates a functional dependency.
    pub fn new(relation: Predicate, determinant: Vec<usize>, dependent: Vec<usize>) -> FunctionalDep {
        assert!(!determinant.is_empty() && !dependent.is_empty());
        assert!(determinant.iter().chain(&dependent).all(|&c| c < relation.arity));
        FunctionalDep {
            relation,
            determinant,
            dependent,
        }
    }

    /// A key constraint: `determinant → all other columns`.
    pub fn key(relation: Predicate, determinant: Vec<usize>) -> FunctionalDep {
        let dependent: Vec<usize> =
            (0..relation.arity).filter(|c| !determinant.contains(c)).collect();
        FunctionalDep::new(relation, determinant, dependent)
    }
}

impl fmt::Display for FunctionalDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {}",
            self.relation.name,
            cols(&self.determinant),
            cols(&self.dependent)
        )
    }
}

fn cols(cs: &[usize]) -> String {
    cs.iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// A set of integrity constraints `Σ`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    /// Inclusion dependencies.
    pub inclusions: Vec<InclusionDep>,
    /// Functional dependencies.
    pub functionals: Vec<FunctionalDep>,
}

impl ConstraintSet {
    /// An empty constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds an inclusion dependency (builder style).
    pub fn with_inclusion(mut self, ind: InclusionDep) -> ConstraintSet {
        self.inclusions.push(ind);
        self
    }

    /// Adds a functional dependency (builder style).
    pub fn with_functional(mut self, fd: FunctionalDep) -> ConstraintSet {
        self.functionals.push(fd);
        self
    }

    /// True iff no constraints.
    pub fn is_empty(&self) -> bool {
        self.inclusions.is_empty() && self.functionals.is_empty()
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ind in &self.inclusions {
            writeln!(f, "{ind}")?;
        }
        for fd in &self.functionals {
            writeln!(f, "{fd}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let r = Predicate::new("R", 2);
        let s = Predicate::new("S", 1);
        let ind = InclusionDep::new(r, vec![1], s, vec![0]);
        assert_eq!(ind.to_string(), "R[1] ⊆ S[0]");
        let fd = FunctionalDep::new(r, vec![0], vec![1]);
        assert_eq!(fd.to_string(), "R: 0 -> 1");
    }

    #[test]
    fn key_covers_remaining_columns() {
        let r = Predicate::new("R", 4);
        let k = FunctionalDep::key(r, vec![0, 2]);
        assert_eq!(k.dependent, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "column lists must align")]
    fn misaligned_inclusion_panics() {
        InclusionDep::new(Predicate::new("R", 2), vec![0, 1], Predicate::new("S", 2), vec![0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_fd_panics() {
        FunctionalDep::new(Predicate::new("R", 2), vec![0], vec![5]);
    }
}
