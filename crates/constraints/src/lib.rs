//! Integrity constraints and the Example-6 semantic optimizer — the
//! extension the paper sketches ("if R.z is a foreign key referencing S.z
//! … the first disjunct can be discarded at compile-time by a semantic
//! optimizer") and names as future work ("the addition of integrity
//! constraints").
//!
//! * [`InclusionDep`] / [`FunctionalDep`] / [`ConstraintSet`] — `Σ`.
//! * [`chase`] — the restricted chase of a CQ¬ body with `Σ` (IND steps
//!   add witnesses with fresh variables, FD steps unify; bounded rounds).
//! * [`satisfiable_under`] — Proposition 8 generalized: unsatisfiability
//!   modulo `Σ` via a complementary pair over the chased body.
//! * [`prune_unsatisfiable`] / [`feasible_under`] — the semantic
//!   optimizer: discard Σ-unsatisfiable disjuncts, then decide feasibility
//!   as usual. A query infeasible in general can become feasible under the
//!   constraints, and ANSWER\*'s runtime completeness on fk-closed
//!   instances (experiment E9) becomes a compile-time guarantee.
//!
//! ```
//! use lap_constraints::{feasible_under, ConstraintSet, InclusionDep};
//! use lap_core::feasible;
//! use lap_ir::{parse_program, Predicate};
//!
//! let p = parse_program(
//!     "S^o. R^oo. B^ii. T^oo.\n\
//!      Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
//!      Q(x, y) :- T(x, y).",
//! )
//! .unwrap();
//! let q = p.single_query().unwrap();
//! assert!(!feasible(q, &p.schema)); // infeasible in general
//!
//! // …but R.z is a foreign key into S.z, so the blocked disjunct can
//! // never produce answers:
//! let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
//!     Predicate::new("R", 2), vec![1],
//!     Predicate::new("S", 1), vec![0],
//! ));
//! assert!(feasible_under(q, &cs, &p.schema).feasible);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chase;
mod containment;
mod deps;
mod optimizer;
mod parse;

pub use chase::{chase, satisfiable_under, ChaseResult, SatVerdict, DEFAULT_CHASE_ROUNDS};
pub use containment::{contained_under, cqn_contained_under, equivalent_under};
pub use deps::{ConstraintSet, FunctionalDep, InclusionDep};
pub use optimizer::{feasible_under, prune_unsatisfiable};
pub use parse::{parse_constraints, ConstraintParseError};
