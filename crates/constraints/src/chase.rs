//! The (restricted) chase of a CQ¬ body with inclusion and functional
//! dependencies, and satisfiability modulo constraints.
//!
//! The chase extends the *positive* part of a query with the logical
//! consequences of `Σ`:
//!
//! * an **FD step** `R: X → Y` unifies the `Y`-columns of two `R`-atoms
//!   that agree syntactically on their `X`-columns (a clash of two distinct
//!   constants proves unsatisfiability outright);
//! * an **IND step** `R[X] ⊆ S[Y]` adds an `S`-atom (fresh variables in
//!   the unconstrained columns) for any `R`-atom whose projection is not
//!   yet witnessed.
//!
//! Over a chased body, Proposition 8 generalizes: the query is
//! unsatisfiable **under Σ** iff some negative literal's atom appears
//! among the chased positive atoms. Unsatisfiability verdicts are sound
//! even if the chase is cut short (every derived atom is a consequence);
//! the *satisfiable* verdict additionally needs the fixpoint, hence the
//! [`SatVerdict::Unknown`] case for cyclic INDs that exceed the round cap.

use crate::deps::ConstraintSet;
use lap_ir::{Atom, ConjunctiveQuery, FreshVarGen, Literal, Substitution, Term, Var};
use std::collections::HashSet;

/// Outcome of a satisfiability-modulo-constraints check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatVerdict {
    /// A contradiction was derived: no instance satisfying `Σ` satisfies
    /// the query body.
    Unsatisfiable,
    /// The chase reached its fixpoint and the chased body is a model.
    Satisfiable,
    /// The round cap was hit before a fixpoint (cyclic inclusions);
    /// treat as possibly satisfiable.
    Unknown,
}

/// Result of chasing a query body.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The query with the chased positive atoms appended and all FD
    /// unifications applied (head and negatives included).
    pub query: ConjunctiveQuery,
    /// True iff an FD clashed two distinct constants (hard contradiction).
    pub constant_clash: bool,
    /// True iff the fixpoint was reached within the round cap.
    pub complete: bool,
}

/// Default bound on chase rounds (each round applies every constraint
/// once); only cyclic inclusion dependencies can exhaust it.
pub const DEFAULT_CHASE_ROUNDS: usize = 16;

/// Chases `q` with `cs` for at most `max_rounds` rounds.
pub fn chase(q: &ConjunctiveQuery, cs: &ConstraintSet, max_rounds: usize) -> ChaseResult {
    let mut query = q.clone();
    let mut fresh = FreshVarGen::new();
    let mut constant_clash = false;
    let mut complete = false;

    for _ in 0..max_rounds {
        let mut changed = false;

        // FD steps to local fixpoint.
        while let Some((v_from, t_to)) = find_fd_unification(&query, cs, &mut constant_clash) {
            let mut s = Substitution::new();
            s.insert(v_from, t_to);
            query = query.apply(&s);
            changed = true;
        }
        if constant_clash {
            return ChaseResult {
                query,
                constant_clash: true,
                complete: true,
            };
        }

        // IND steps: add missing witnesses.
        let additions = find_ind_additions(&query, cs, &mut fresh);
        if !additions.is_empty() {
            changed = true;
            query.body.extend(additions.into_iter().map(Literal::pos));
        }

        if !changed {
            complete = true;
            break;
        }
    }

    ChaseResult {
        query,
        constant_clash,
        complete,
    }
}

/// Finds one FD-mandated unification `(var, term)`, or sets
/// `constant_clash` when two distinct constants must be equal.
fn find_fd_unification(
    q: &ConjunctiveQuery,
    cs: &ConstraintSet,
    constant_clash: &mut bool,
) -> Option<(Var, Term)> {
    let atoms: Vec<&Atom> = q.body.iter().filter(|l| l.positive).map(|l| &l.atom).collect();
    for fd in &cs.functionals {
        let rel: Vec<&&Atom> = atoms.iter().filter(|a| a.predicate == fd.relation).collect();
        for i in 0..rel.len() {
            for j in (i + 1)..rel.len() {
                let (a, b) = (rel[i], rel[j]);
                if fd.determinant.iter().any(|&c| a.args[c] != b.args[c]) {
                    continue;
                }
                for &c in &fd.dependent {
                    match (a.args[c], b.args[c]) {
                        (x, y) if x == y => {}
                        (Term::Var(v), t) | (t, Term::Var(v)) => return Some((v, t)),
                        (Term::Const(_), Term::Const(_)) => {
                            *constant_clash = true;
                            return None;
                        }
                    }
                }
            }
        }
    }
    None
}

/// Finds all missing inclusion witnesses for the current body.
fn find_ind_additions(
    q: &ConjunctiveQuery,
    cs: &ConstraintSet,
    fresh: &mut FreshVarGen,
) -> Vec<Atom> {
    let atoms: Vec<&Atom> = q.body.iter().filter(|l| l.positive).map(|l| &l.atom).collect();
    let mut additions: Vec<Atom> = Vec::new();
    let mut planned: HashSet<(lap_ir::Predicate, Vec<usize>, Vec<Term>)> = HashSet::new();
    for ind in &cs.inclusions {
        for a in atoms.iter().filter(|a| a.predicate == ind.from) {
            let proj: Vec<Term> = ind.from_cols.iter().map(|&c| a.args[c]).collect();
            let witnessed = atoms.iter().any(|s| {
                s.predicate == ind.to
                    && ind
                        .to_cols
                        .iter()
                        .zip(proj.iter())
                        .all(|(&c, &t)| s.args[c] == t)
            });
            if witnessed {
                continue;
            }
            // Avoid planning the same witness twice in one round.
            if !planned.insert((ind.to, ind.to_cols.clone(), proj.clone())) {
                continue;
            }
            let mut args: Vec<Term> = (0..ind.to.arity)
                .map(|_| Term::Var(fresh.fresh()))
                .collect();
            for (&c, &t) in ind.to_cols.iter().zip(proj.iter()) {
                args[c] = t;
            }
            additions.push(Atom::new(ind.to, args));
        }
    }
    additions
}

/// Satisfiability of a CQ¬ body **under** the constraints `Σ` (generalizing
/// Proposition 8 via the chase).
pub fn satisfiable_under(q: &ConjunctiveQuery, cs: &ConstraintSet, max_rounds: usize) -> SatVerdict {
    if !lap_ir::is_satisfiable(q) {
        return SatVerdict::Unsatisfiable;
    }
    if cs.is_empty() {
        return SatVerdict::Satisfiable;
    }
    let result = chase(q, cs, max_rounds);
    if result.constant_clash {
        return SatVerdict::Unsatisfiable;
    }
    if !lap_ir::is_satisfiable(&result.query) {
        return SatVerdict::Unsatisfiable;
    }
    if result.complete {
        SatVerdict::Satisfiable
    } else {
        SatVerdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::{FunctionalDep, InclusionDep};
    use lap_ir::{parse_cq, Predicate};

    fn example_6_constraints() -> ConstraintSet {
        // R.z (col 1) is a foreign key referencing S.z (col 0).
        ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("R", 2),
            vec![1],
            Predicate::new("S", 1),
            vec![0],
        ))
    }

    #[test]
    fn example_6_disjunct_is_unsat_under_fk() {
        let q = parse_cq("Q(x, y) :- not S(z), R(x, z), B(x, y).").unwrap();
        assert_eq!(
            satisfiable_under(&q, &example_6_constraints(), DEFAULT_CHASE_ROUNDS),
            SatVerdict::Unsatisfiable
        );
        // Without the constraint it is satisfiable.
        assert_eq!(
            satisfiable_under(&q, &ConstraintSet::new(), DEFAULT_CHASE_ROUNDS),
            SatVerdict::Satisfiable
        );
    }

    #[test]
    fn ind_adds_fresh_witness_columns() {
        // R[0] ⊆ T[1] with T binary: the witness is T(_fresh, x).
        let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("R", 1),
            vec![0],
            Predicate::new("T", 2),
            vec![1],
        ));
        let q = parse_cq("Q(x) :- R(x).").unwrap();
        let r = chase(&q, &cs, DEFAULT_CHASE_ROUNDS);
        assert!(r.complete);
        let t_atom = r
            .query
            .body
            .iter()
            .find(|l| l.atom.predicate.name.as_str() == "T")
            .expect("witness added");
        assert_eq!(t_atom.atom.args[1], Term::var("x"));
        assert!(t_atom.atom.args[0].is_var());
    }

    #[test]
    fn fd_unifies_dependent_columns() {
        // R: 0 → 1 and two R-atoms sharing x: y and z unify; the negative
        // literal then contradicts.
        let cs = ConstraintSet::new()
            .with_functional(FunctionalDep::new(Predicate::new("R", 2), vec![0], vec![1]));
        let q = parse_cq("Q(x) :- R(x, y), R(x, z), S(y), not S(z).").unwrap();
        assert_eq!(
            satisfiable_under(&q, &cs, DEFAULT_CHASE_ROUNDS),
            SatVerdict::Unsatisfiable
        );
    }

    #[test]
    fn fd_constant_clash_is_unsat() {
        let cs = ConstraintSet::new()
            .with_functional(FunctionalDep::new(Predicate::new("R", 2), vec![0], vec![1]));
        let q = parse_cq("Q(x) :- R(x, 1), R(x, 2).").unwrap();
        assert_eq!(
            satisfiable_under(&q, &cs, DEFAULT_CHASE_ROUNDS),
            SatVerdict::Unsatisfiable
        );
        let ok = parse_cq("Q(x) :- R(x, 1), R(y, 2).").unwrap();
        assert_eq!(
            satisfiable_under(&ok, &cs, DEFAULT_CHASE_ROUNDS),
            SatVerdict::Satisfiable
        );
    }

    #[test]
    fn cyclic_inclusions_hit_the_cap() {
        // R[0] ⊆ S[0] and S[0]... cyclic via fresh columns: R(x) ⊆ T[0],
        // T[1] ⊆ R[0] keeps inventing values forever.
        let r = Predicate::new("R", 1);
        let t = Predicate::new("T", 2);
        let cs = ConstraintSet::new()
            .with_inclusion(InclusionDep::new(r, vec![0], t, vec![0]))
            .with_inclusion(InclusionDep::new(t, vec![1], r, vec![0]));
        let q = parse_cq("Q(x) :- R(x).").unwrap();
        let result = chase(&q, &cs, 4);
        assert!(!result.complete);
        assert_eq!(satisfiable_under(&q, &cs, 4), SatVerdict::Unknown);
    }

    #[test]
    fn chase_applies_substitution_to_head_and_negatives() {
        let cs = ConstraintSet::new()
            .with_functional(FunctionalDep::new(Predicate::new("R", 2), vec![0], vec![1]));
        let q = parse_cq("Q(y, z) :- R(x, y), R(x, z), not B(z).").unwrap();
        let r = chase(&q, &cs, DEFAULT_CHASE_ROUNDS);
        // y and z unified: head has a repeated term, negation follows it.
        assert_eq!(r.query.head.args[0], r.query.head.args[1]);
        let neg = r.query.body.iter().find(|l| !l.positive).unwrap();
        assert_eq!(neg.atom.args[0], r.query.head.args[0]);
    }

    #[test]
    fn satisfied_inclusion_adds_nothing() {
        let cs = example_6_constraints();
        let q = parse_cq("Q(x) :- R(x, z), S(z).").unwrap();
        let r = chase(&q, &cs, DEFAULT_CHASE_ROUNDS);
        assert!(r.complete);
        assert_eq!(r.query.body.len(), 2, "witness already present");
    }
}
