//! The semantic optimizer of Example 6: prune disjuncts that are
//! unsatisfiable under the integrity constraints, then plan/decide as
//! usual. "The first disjunct Q₁ᵒ(x, y) can be discarded at compile-time
//! by a semantic optimizer."

use crate::chase::{satisfiable_under, SatVerdict, DEFAULT_CHASE_ROUNDS};
use crate::containment::contained_under;
use crate::deps::ConstraintSet;
use lap_core::{plan_star, DecisionPath, FeasibilityReport};
use lap_ir::{Schema, UnionQuery};

/// Removes every disjunct *provably* unsatisfiable under `Σ` (sound: chase
/// derivations are logical consequences, so a pruned disjunct contributes
/// no answers on any instance satisfying `Σ`). Disjuncts with an
/// [`SatVerdict::Unknown`] verdict are kept.
pub fn prune_unsatisfiable(q: &UnionQuery, cs: &ConstraintSet) -> UnionQuery {
    let kept: Vec<_> = q
        .disjuncts
        .iter()
        .filter(|cq| {
            satisfiable_under(cq, cs, DEFAULT_CHASE_ROUNDS) != SatVerdict::Unsatisfiable
        })
        .cloned()
        .collect();
    if kept.is_empty() {
        UnionQuery::empty(q.head.clone())
    } else {
        UnionQuery::new(kept).expect("heads unchanged")
    }
}

/// Feasibility **under constraints** (sound approximation): FEASIBLE with
/// both of its semantic steps strengthened by `Σ`:
///
/// 1. Σ-unsatisfiable disjuncts are pruned (Example 6's discard), and
/// 2. the containment branch tests `ans(Q) ⊑_Σ Q` (chase-then-contain)
///    instead of plain containment.
///
/// A query infeasible in general may become feasible either way: a blocked
/// disjunct can be Σ-dead, or its unanswerable literal can be Σ-implied by
/// the answerable part.
pub fn feasible_under(
    q: &UnionQuery,
    cs: &ConstraintSet,
    schema: &Schema,
) -> FeasibilityReport {
    let pruned = prune_unsatisfiable(q, cs);
    let plans = plan_star(&pruned, schema);
    if plans.coincide() {
        return FeasibilityReport {
            feasible: true,
            decided_by: DecisionPath::PlansCoincide,
            plans,
            containment: None,
        };
    }
    if plans.over.has_null() {
        return FeasibilityReport {
            feasible: false,
            decided_by: DecisionPath::OverestimateHasNull,
            plans,
            containment: None,
        };
    }
    let ans_q = plans
        .over
        .as_query()
        .expect("null-free overestimate is a plain query");
    let feasible = contained_under(&ans_q, &pruned, cs);
    FeasibilityReport {
        feasible,
        decided_by: DecisionPath::ContainmentCheck,
        plans,
        containment: None,
    }
}

#[cfg(test)]
mod sigma_containment_tests {
    use super::*;
    use crate::deps::InclusionDep;
    use lap_core::feasible;
    use lap_ir::{parse_program, Predicate};

    #[test]
    fn sigma_implied_unanswerable_literal_restores_feasibility() {
        // S^ii with z never bound: S(y, z) is unanswerable, so the query
        // is infeasible in general. Under R.1 ⊆ S.0 the chase supplies the
        // S-witness, so ans(Q) = R(x, y) is Σ-equivalent to Q: feasible.
        let p = parse_program(
            "R^oo. S^ii.\n\
             Q(x) :- R(x, y), S(y, z).",
        )
        .unwrap();
        let q = p.single_query().unwrap();
        assert!(!feasible(q, &p.schema));
        let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("R", 2),
            vec![1],
            Predicate::new("S", 2),
            vec![0],
        ));
        let report = feasible_under(q, &cs, &p.schema);
        assert!(report.feasible);
        assert_eq!(report.decided_by, DecisionPath::ContainmentCheck);
    }

    #[test]
    fn unrelated_constraints_do_not_flip_verdicts() {
        let p = parse_program(
            "R^oo. S^ii.\n\
             Q(x) :- R(x, y), S(y, z).",
        )
        .unwrap();
        let q = p.single_query().unwrap();
        let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("Other", 1),
            vec![0],
            Predicate::new("S", 2),
            vec![0],
        ));
        assert!(!feasible_under(q, &cs, &p.schema).feasible);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::InclusionDep;
    use lap_core::feasible;
    use lap_ir::{parse_program, Predicate};

    fn example_6() -> (UnionQuery, Schema, ConstraintSet) {
        let p = parse_program(
            "S^o. R^oo. B^ii. T^oo.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
             Q(x, y) :- T(x, y).",
        )
        .unwrap();
        let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("R", 2),
            vec![1],
            Predicate::new("S", 1),
            vec![0],
        ));
        (p.single_query().unwrap().clone(), p.schema, cs)
    }

    #[test]
    fn example_6_pruning_restores_feasibility() {
        let (q, schema, cs) = example_6();
        // Without constraints: infeasible (B^ii blocks the first disjunct).
        assert!(!feasible(&q, &schema));
        // The semantic optimizer discards the violating disjunct…
        let pruned = prune_unsatisfiable(&q, &cs);
        assert_eq!(pruned.disjuncts.len(), 1);
        assert_eq!(pruned.disjuncts[0].to_string(), "Q(x, y) :- T(x, y).");
        // …and the remainder is feasible (indeed executable).
        let report = feasible_under(&q, &cs, &schema);
        assert!(report.feasible);
    }

    #[test]
    fn pruning_is_a_noop_without_constraints() {
        let (q, _, _) = example_6();
        let pruned = prune_unsatisfiable(&q, &ConstraintSet::new());
        assert_eq!(pruned.disjuncts.len(), q.disjuncts.len());
    }

    #[test]
    fn fully_pruned_union_is_false_and_feasible() {
        let p = parse_program(
            "S^o. R^oo. B^ii.\n\
             Q(x, y) :- not S(z), R(x, z), B(x, y).",
        )
        .unwrap();
        let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("R", 2),
            vec![1],
            Predicate::new("S", 1),
            vec![0],
        ));
        let q = p.single_query().unwrap();
        let pruned = prune_unsatisfiable(q, &cs);
        assert!(pruned.is_false());
        assert!(feasible_under(q, &cs, &p.schema).feasible);
    }
}
