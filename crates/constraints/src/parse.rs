//! Text syntax for constraint sets, so `Σ` can live in a file next to the
//! query program:
//!
//! ```text
//! % inclusion dependency: R.1 ⊆ S.0  (multi-column: R[0,1] <= S[1,0].)
//! R[1] <= S[0].
//! % functional dependency: first column of P determines the second
//! P: 0 -> 1.
//! ```
//!
//! Relation arities are resolved against a [`Schema`], so column indices
//! are validated at parse time.

use crate::deps::{ConstraintSet, FunctionalDep, InclusionDep};
use lap_ir::{Schema, Symbol};
use std::fmt;

/// Errors from [`parse_constraints`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintParseError {
    /// Syntax error with the offending statement.
    Syntax(String),
    /// A relation is not declared in the schema.
    UnknownRelation(String),
    /// A column index is out of range for the relation's arity.
    ColumnOutOfRange {
        /// Relation name.
        relation: String,
        /// The offending column.
        column: usize,
        /// The relation's arity.
        arity: usize,
    },
}

impl fmt::Display for ConstraintParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintParseError::Syntax(s) => write!(f, "cannot parse constraint {s:?}"),
            ConstraintParseError::UnknownRelation(r) => {
                write!(f, "constraint references undeclared relation {r}")
            }
            ConstraintParseError::ColumnOutOfRange {
                relation,
                column,
                arity,
            } => write!(
                f,
                "column {column} out of range for {relation} (arity {arity})"
            ),
        }
    }
}

impl std::error::Error for ConstraintParseError {}

/// Parses a constraint file (see module docs) against `schema`.
pub fn parse_constraints(
    text: &str,
    schema: &Schema,
) -> Result<ConstraintSet, ConstraintParseError> {
    let mut cs = ConstraintSet::new();
    // Strip line comments first (a comment may contain `.`), then split
    // statements on `.`.
    let decommented: String = text
        .lines()
        .map(|l| {
            let cut = l.find(['%', '#']).map(|i| &l[..i]).unwrap_or(l);
            format!("{cut}\n")
        })
        .collect();
    for raw in decommented.split('.') {
        let stmt = raw.trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some((lhs, rhs)) = stmt.split_once("<=") {
            let (from, from_cols) = parse_cols(lhs, schema)?;
            let (to, to_cols) = parse_cols(rhs, schema)?;
            if from_cols.len() != to_cols.len() || from_cols.is_empty() {
                return Err(ConstraintParseError::Syntax(stmt.to_owned()));
            }
            cs.inclusions.push(InclusionDep::new(from, from_cols, to, to_cols));
        } else if let Some((rel_part, fd_part)) = stmt.split_once(':') {
            let Some((det, dep)) = fd_part.split_once("->") else {
                return Err(ConstraintParseError::Syntax(stmt.to_owned()));
            };
            let pred = lookup(rel_part.trim(), schema)?;
            let determinant = parse_col_list(det, pred, schema)?;
            let dependent = parse_col_list(dep, pred, schema)?;
            if determinant.is_empty() || dependent.is_empty() {
                return Err(ConstraintParseError::Syntax(stmt.to_owned()));
            }
            cs.functionals
                .push(FunctionalDep::new(pred, determinant, dependent));
        } else {
            return Err(ConstraintParseError::Syntax(stmt.to_owned()));
        }
    }
    Ok(cs)
}

fn lookup(name: &str, schema: &Schema) -> Result<lap_ir::Predicate, ConstraintParseError> {
    schema
        .relation(Symbol::intern(name))
        .map(|d| d.predicate)
        .ok_or_else(|| ConstraintParseError::UnknownRelation(name.to_owned()))
}

/// Parses `Name[c1,c2,…]`.
fn parse_cols(
    part: &str,
    schema: &Schema,
) -> Result<(lap_ir::Predicate, Vec<usize>), ConstraintParseError> {
    let part = part.trim();
    let Some((name, rest)) = part.split_once('[') else {
        return Err(ConstraintParseError::Syntax(part.to_owned()));
    };
    let Some(cols_text) = rest.strip_suffix(']') else {
        return Err(ConstraintParseError::Syntax(part.to_owned()));
    };
    let pred = lookup(name.trim(), schema)?;
    let cols = parse_col_list(cols_text, pred, schema)?;
    Ok((pred, cols))
}

fn parse_col_list(
    text: &str,
    pred: lap_ir::Predicate,
    _schema: &Schema,
) -> Result<Vec<usize>, ConstraintParseError> {
    let mut cols = Vec::new();
    for piece in text.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let c: usize = piece
            .parse()
            .map_err(|_| ConstraintParseError::Syntax(piece.to_owned()))?;
        if c >= pred.arity {
            return Err(ConstraintParseError::ColumnOutOfRange {
                relation: pred.name.to_string(),
                column: c,
                arity: pred.arity,
            });
        }
        cols.push(c);
    }
    Ok(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_patterns(&[("R", "oo"), ("S", "o"), ("P", "ooo")]).unwrap()
    }

    #[test]
    fn parses_inclusions_and_fds() {
        let cs = parse_constraints(
            "% fk\nR[1] <= S[0].\nP: 0 -> 1, 2.",
            &schema(),
        )
        .unwrap();
        assert_eq!(cs.inclusions.len(), 1);
        assert_eq!(cs.inclusions[0].to_string(), "R[1] ⊆ S[0]");
        assert_eq!(cs.functionals.len(), 1);
        assert_eq!(cs.functionals[0].to_string(), "P: 0 -> 1,2");
    }

    #[test]
    fn multi_column_inclusion() {
        let cs = parse_constraints("P[0, 1] <= P[1, 2].", &schema()).unwrap();
        assert_eq!(cs.inclusions[0].from_cols, vec![0, 1]);
        assert_eq!(cs.inclusions[0].to_cols, vec![1, 2]);
    }

    #[test]
    fn rejects_unknown_relation() {
        assert!(matches!(
            parse_constraints("Z[0] <= S[0].", &schema()),
            Err(ConstraintParseError::UnknownRelation(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_column() {
        assert!(matches!(
            parse_constraints("R[5] <= S[0].", &schema()),
            Err(ConstraintParseError::ColumnOutOfRange { column: 5, .. })
        ));
    }

    #[test]
    fn rejects_misaligned_columns() {
        assert!(matches!(
            parse_constraints("P[0, 1] <= S[0].", &schema()),
            Err(ConstraintParseError::Syntax(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_constraints("hello world.", &schema()).is_err());
        assert!(parse_constraints("R: zero -> 1.", &schema()).is_err());
    }

    #[test]
    fn empty_and_comment_only_files_are_empty_sets() {
        let cs = parse_constraints("% nothing here\n\n", &schema()).unwrap();
        assert!(cs.is_empty());
    }
}
