//! Domain enumeration views (paper, Example 8; Duschka–Levy \[DL97\]).
//!
//! `dom(x)` collects every value obtainable from the sources: seeded with
//! the constants at hand, it repeatedly calls every declared access pattern
//! with every combination of already-known values in the input slots and
//! absorbs all returned values, to fixpoint. The paper uses such views to
//! improve PLAN\*'s underestimate: an unanswerable literal `B(x, y)` with
//! `B^ii` becomes answerable as `dom(y), B(x, y)`.
//!
//! Enumeration is inherently expensive (`|dom|^k` calls per pattern with
//! `k` input slots per round), so it runs under a call budget; the result
//! records whether the fixpoint was reached or the budget cut it short.

use crate::error::EngineError;
use crate::source::SourceRegistry;
use crate::value::Value;
use lap_ir::AccessPattern;
use std::collections::{BTreeSet, HashSet};

/// Result of a domain enumeration run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainResult {
    /// All values discovered (including the seed).
    pub values: BTreeSet<Value>,
    /// True iff the fixpoint was reached within budget.
    pub complete: bool,
    /// Source calls spent.
    pub calls_used: u64,
}

/// Enumerates the reachable value domain through the registry's schema,
/// starting from `seed` (typically the constants of the query and any
/// values already obtained), spending at most `budget` source calls.
pub fn enumerate_domain(
    reg: &mut SourceRegistry<'_>,
    seed: &BTreeSet<Value>,
    budget: u64,
) -> Result<DomainResult, EngineError> {
    let mut dom: BTreeSet<Value> = seed.clone();
    let mut calls_used: u64 = 0;
    // Remember calls already issued so new rounds only try new input
    // combinations.
    let mut issued: HashSet<(lap_ir::Symbol, AccessPattern, Vec<Option<Value>>)> = HashSet::new();
    let decls: Vec<_> = reg
        .schema()
        .iter()
        .map(|d| (d.predicate, d.patterns.clone()))
        .collect();

    loop {
        let mut grew = false;
        for (pred, patterns) in &decls {
            for &pattern in patterns {
                let slots: Vec<usize> = pattern.input_positions().collect();
                let pool: Vec<Value> = dom.iter().copied().collect();
                if !slots.is_empty() && pool.is_empty() {
                    continue;
                }
                let mut combo = vec![0usize; slots.len()];
                loop {
                    let mut inputs: Vec<Option<Value>> = vec![None; pattern.arity()];
                    for (k, &j) in slots.iter().enumerate() {
                        inputs[j] = Some(pool[combo[k]]);
                    }
                    let key = (pred.name, pattern, inputs.clone());
                    if issued.insert(key) {
                        if calls_used >= budget {
                            return Ok(DomainResult {
                                values: dom,
                                complete: false,
                                calls_used,
                            });
                        }
                        calls_used += 1;
                        let rows = reg.call(pred.name, pattern, &inputs)?;
                        for row in rows {
                            for v in row {
                                if dom.insert(v) {
                                    grew = true;
                                }
                            }
                        }
                    }
                    // Next combination (odometer).
                    if slots.is_empty() {
                        break;
                    }
                    let mut k = 0;
                    loop {
                        combo[k] += 1;
                        if combo[k] < pool.len() {
                            break;
                        }
                        combo[k] = 0;
                        k += 1;
                        if k == slots.len() {
                            break;
                        }
                    }
                    if k == slots.len() {
                        break;
                    }
                }
            }
        }
        if !grew {
            return Ok(DomainResult {
                values: dom,
                complete: true,
                calls_used,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use lap_ir::Schema;

    #[test]
    fn free_scan_seeds_everything() {
        let db = Database::from_facts("R(1, 2). R(2, 3). S(3).").unwrap();
        let schema = Schema::from_patterns(&[("R", "oo"), ("S", "o")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let r = enumerate_domain(&mut reg, &BTreeSet::new(), 100).unwrap();
        assert!(r.complete);
        assert_eq!(r.values.len(), 3); // {1, 2, 3}
    }

    #[test]
    fn chained_discovery_through_input_patterns() {
        // S^o yields 1; R^io maps 1→2, 2→3; fixpoint {1,2,3}.
        let db = Database::from_facts("S(1). R(1, 2). R(2, 3).").unwrap();
        let schema = Schema::from_patterns(&[("S", "o"), ("R", "io")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let r = enumerate_domain(&mut reg, &BTreeSet::new(), 100).unwrap();
        assert!(r.complete);
        assert_eq!(
            r.values,
            [Value::int(1), Value::int(2), Value::int(3)].into_iter().collect()
        );
    }

    #[test]
    fn unreachable_values_stay_hidden() {
        // R(4, 5) is unreachable: nothing ever produces 4 to feed R^io.
        let db = Database::from_facts("S(1). R(1, 2). R(4, 5).").unwrap();
        let schema = Schema::from_patterns(&[("S", "o"), ("R", "io")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let r = enumerate_domain(&mut reg, &BTreeSet::new(), 100).unwrap();
        assert!(r.complete);
        assert!(!r.values.contains(&Value::int(5)));
    }

    #[test]
    fn seed_constants_unlock_values() {
        let db = Database::from_facts("R(4, 5).").unwrap();
        let schema = Schema::from_patterns(&[("R", "io")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let seed: BTreeSet<Value> = [Value::int(4)].into_iter().collect();
        let r = enumerate_domain(&mut reg, &seed, 100).unwrap();
        assert!(r.values.contains(&Value::int(5)));
    }

    #[test]
    fn budget_cuts_enumeration_short() {
        let db = Database::from_facts("S(1). S(2). S(3). R(1, 2).").unwrap();
        let schema = Schema::from_patterns(&[("S", "o"), ("R", "ii")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        // R^ii needs |dom|² calls; budget 2 can't finish (1 for S + 9 for R).
        let r = enumerate_domain(&mut reg, &BTreeSet::new(), 2).unwrap();
        assert!(!r.complete);
        assert!(r.calls_used <= 2);
    }

    #[test]
    fn no_callable_pattern_means_empty_domain() {
        let db = Database::from_facts("R(1, 2).").unwrap();
        let schema = Schema::from_patterns(&[("R", "ii")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let r = enumerate_domain(&mut reg, &BTreeSet::new(), 100).unwrap();
        assert!(r.complete);
        assert!(r.values.is_empty());
    }
}
