//! Access-pattern-enforcing source adapters.
//!
//! A [`SourceRegistry`] stands in for the paper's collection of web-service
//! operations: the *only* way to read data through it is
//! [`SourceRegistry::call`], which requires a declared access pattern and a
//! value for every input slot — exactly the discipline of Definition 1.
//! Violations are hard errors, never silently-wrong answers, so any plan
//! that evaluates successfully through the registry is, constructively, an
//! executable plan.
//!
//! The registry no longer assumes an infallible in-memory database: the
//! transport sits behind the [`Source`] trait. [`InMemorySource`] is the
//! default (and preserves the original `Database`-backed behaviour,
//! including lazily-built hash indexes), while
//! [`crate::FaultInjectingSource`] wraps any source with deterministic,
//! seeded failures. Faulted fetches are retried under the registry's
//! [`RetryPolicy`]; when retries are exhausted the call surfaces as
//! [`EngineError::SourceUnavailable`], which the degraded executors in
//! [`crate::physical`] turn into a dropped disjunct instead of an aborted
//! run.

use crate::error::EngineError;
use crate::fault::{RetryPolicy, SourceFault, SourceReply};
use crate::instance::Database;
use crate::sched;
use crate::stats::CallStats;
use crate::value::{rows_to_json, value_to_json, Tuple, Value};
use lap_ir::{AccessPattern, Schema, Symbol};
use lap_obs::{Counter, Histogram, InstantPayload, Journal, Json, Recorder, WireOutcome};
use lap_prng::StdRng;
use std::collections::HashMap;
use std::sync::Mutex;

/// Formats an access pattern's `i`/`o` word into a stack buffer, avoiding
/// a heap allocation on the journal fast path.
fn pattern_word(pattern: AccessPattern, buf: &mut [u8; AccessPattern::MAX_ARITY]) -> &str {
    for (j, slot) in buf.iter_mut().enumerate().take(pattern.arity()) {
        *slot = if pattern.is_input(j) { b'i' } else { b'o' };
    }
    std::str::from_utf8(&buf[..pattern.arity()]).expect("pattern word is ascii")
}

/// Cache key for one source call: relation, pattern, supplied inputs.
type CallKey = (Symbol, AccessPattern, Vec<Option<Value>>);

/// Hard cap on [`SourceRegistry::with_io_workers`]: far above any sane
/// pool, but keeps the journal's per-worker sub-lane arithmetic
/// (`LANE_STRIDE`) collision-free.
pub const MAX_IO_WORKERS: usize = 256;

/// Journal sub-lane spacing for overlapped calls: a registry on base lane
/// `l` journals its overlapped call pairs on lanes `(l + 1) * LANE_STRIDE
/// + worker`, keeping them disjoint from every registry's base lane and
/// every other registry's workers (base lanes are small disjunct indexes,
/// `MAX_IO_WORKERS < LANE_STRIDE`).
const LANE_STRIDE: u64 = 1024;

/// Rich begin-event payload of a captured source call (replay tier): the
/// bound inputs ride along so a journal alone can re-drive the run.
fn capture_begin_json(
    name: Symbol,
    pattern: AccessPattern,
    attempt: u32,
    inputs: &[Option<Value>],
) -> Json {
    Json::Obj(vec![
        ("label".to_owned(), Json::Str(format!("{name}^{pattern}"))),
        ("relation".to_owned(), Json::str(name.as_str())),
        ("pattern".to_owned(), Json::Str(pattern.to_string())),
        ("attempt".to_owned(), Json::num(u64::from(attempt))),
        (
            "inputs".to_owned(),
            Json::Arr(
                inputs
                    .iter()
                    .map(|slot| match slot {
                        Some(v) => value_to_json(*v),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Rich end-event payload of a captured successful call.
fn capture_ok_json(name: Symbol, attempt: u32, reply: &SourceReply) -> Json {
    Json::Obj(vec![
        ("relation".to_owned(), Json::str(name.as_str())),
        ("ok".to_owned(), Json::Bool(true)),
        ("rows".to_owned(), Json::num(reply.rows.len() as u64)),
        ("latency_ms".to_owned(), Json::num(reply.latency_ms)),
        ("attempt".to_owned(), Json::num(u64::from(attempt))),
        ("rows_data".to_owned(), rows_to_json(&reply.rows)),
    ])
}

/// Rich end-event payload of a captured faulted call.
fn capture_fault_json(name: Symbol, attempt: u32, fault: &SourceFault) -> Json {
    let (fault_name, raw_latency, timeout_ms) = match *fault {
        SourceFault::Unavailable { latency_ms } => ("unavailable", latency_ms, None),
        SourceFault::Timeout { latency_ms, timeout_ms } => ("timeout", latency_ms, Some(timeout_ms)),
    };
    let mut data = vec![
        ("relation".to_owned(), Json::str(name.as_str())),
        ("ok".to_owned(), Json::Bool(false)),
        ("fault".to_owned(), Json::str(fault_name)),
        ("latency_ms".to_owned(), Json::num(raw_latency)),
        ("attempt".to_owned(), Json::num(u64::from(attempt))),
    ];
    if let Some(budget) = timeout_ms {
        data.push(("timeout_ms".to_owned(), Json::num(budget)));
    }
    Json::Obj(data)
}

/// One planned attempt of an overlapped wire call: what the transport
/// committed to, plus the backoff the retry policy charged after it
/// (zero on the final attempt).
struct ScriptedAttempt {
    attempt: u32,
    outcome: ScriptedOutcome,
    backoff_ms: u64,
}

/// The transport's committed outcome for one planned attempt.
enum ScriptedOutcome {
    /// Success committed; the row transfer itself runs on the worker
    /// pool. `latency_ms` is the planned wire latency to add to the
    /// fetched reply.
    Deferred { latency_ms: u64 },
    /// The transport produced the full reply during planning.
    Ready(SourceReply),
    /// The attempt faults with exactly this fault.
    Fault(SourceFault),
}

impl ScriptedOutcome {
    /// Virtual wire time this attempt occupies its worker lane.
    fn latency_ms(&self) -> u64 {
        match self {
            ScriptedOutcome::Deferred { latency_ms } => *latency_ms,
            ScriptedOutcome::Ready(reply) => reply.latency_ms,
            ScriptedOutcome::Fault(fault) => fault.latency_ms(),
        }
    }
}

/// One planned call of an overlapped batch, in issue order.
enum ScriptedCall {
    /// Cache hit during planning; rows already in hand.
    Cached(Vec<Tuple>),
    /// Duplicate of an earlier key in the same batch (cache enabled):
    /// resolves to that call's rows, counted as a cache hit like the
    /// serial loop would.
    Dup(usize),
    /// A wire call with a fully scripted attempt sequence.
    Wire(WireScript),
}

/// The scripted attempt sequence of one overlapped wire call, plus its
/// scheduled slot on the virtual wall clock.
struct WireScript {
    attempts: Vec<ScriptedAttempt>,
    /// Terminal error after the last attempt (retries exhausted or
    /// deadline hit), exactly as the serial loop would surface it.
    error: Option<EngineError>,
    /// This call won the journal sampling decision.
    journaled: bool,
    /// Replay tier: record rich pairs with row payloads.
    capture: bool,
    /// Scheduled start on the virtual wall clock.
    start_ms: u64,
    /// Journal sub-lane of the worker slot this call runs on.
    lane: u64,
}

impl WireScript {
    /// Total virtual time the call occupies its worker lane: every
    /// attempt's wire latency plus the backoffs between attempts.
    fn duration_ms(&self) -> u64 {
        self.attempts
            .iter()
            .map(|a| a.outcome.latency_ms() + a.backoff_ms)
            .sum()
    }
}
/// One hash index: projection of the indexed columns → matching rows.
type ColumnIndex = HashMap<Vec<Value>, Vec<Tuple>>;

/// The transport's verdict on one fetch attempt, split from the data
/// transfer so the registry can keep many calls in flight at once.
///
/// Everything order-sensitive about an attempt — fault coins, latency
/// jitter, recorded replay outcomes — is decided by
/// [`Source::plan_fetch`] while the registry still issues attempts
/// strictly in order. What remains for [`Source::fetch_deferred`] is the
/// pure row transfer, which draws no randomness and therefore commutes
/// across worker threads.
pub enum PlannedFetch {
    /// The attempt faults; the data transfer never happens.
    Fault(SourceFault),
    /// The attempt will succeed after `latency_ms` of virtual wire time;
    /// the row transfer is deferred to [`Source::fetch_deferred`]. The
    /// caller adds `latency_ms` on top of whatever the deferred reply
    /// reports.
    Defer {
        /// Virtual wire latency of the planned attempt.
        latency_ms: u64,
    },
    /// The complete outcome is already in hand (replay transports, and
    /// the default for transports that never split a fetch).
    Ready(Result<SourceReply, SourceFault>),
}

/// One remote source transport: answers a validated access-pattern call
/// with the matching rows, or fails with a [`SourceFault`].
///
/// The registry validates every request against the schema *before* it
/// reaches the transport, so implementations only answer well-formed
/// selections. Latency is virtual (milliseconds of simulated wall clock),
/// so fault/retry schedules are deterministic and tests never sleep.
/// Transports are `Send` so deferred row transfers can run on the
/// overlapped executor's worker pool (behind a mutex — `Sync` is not
/// required).
pub trait Source: Send {
    /// Answers one call: the rows of `name` matching the `Some` slots of
    /// `inputs` under `pattern`.
    fn fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault>;

    /// Decides one attempt's outcome without transferring rows, consuming
    /// exactly the randomness [`Source::fetch`] would have. The default
    /// performs the whole fetch eagerly — always correct, never
    /// overlapped — so transports that draw randomness inside `fetch`
    /// stay deterministic without opting in.
    fn plan_fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> PlannedFetch {
        PlannedFetch::Ready(self.fetch(name, pattern, inputs))
    }

    /// Completes a [`PlannedFetch::Defer`]: the pure row transfer, safe
    /// on a worker thread because [`Source::plan_fetch`] already consumed
    /// every order-sensitive decision. The planned latency is accounted
    /// by the caller, not here.
    fn fetch_deferred(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        self.fetch(name, pattern, inputs)
    }
}

impl<'a> Source for Box<dyn Source + 'a> {
    fn fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        (**self).fetch(name, pattern, inputs)
    }

    fn plan_fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> PlannedFetch {
        (**self).plan_fetch(name, pattern, inputs)
    }

    fn fetch_deferred(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        (**self).fetch_deferred(name, pattern, inputs)
    }
}

/// The original in-memory transport: a [`Database`] behind access
/// patterns, answering input-slot selections through lazily-built hash
/// indexes (build once per (relation, slot set), then O(1) lookups).
/// Never faults; virtual latency is zero.
pub struct InMemorySource<'a> {
    db: &'a Database,
    /// Lazily-built hash indexes keyed by (relation, indexed positions).
    /// `None` disables indexing (every selection scans).
    indexes: Option<HashMap<(Symbol, Vec<usize>), ColumnIndex>>,
}

impl<'a> InMemorySource<'a> {
    /// An indexed in-memory source over `db`.
    pub fn new(db: &'a Database) -> InMemorySource<'a> {
        InMemorySource { db, indexes: Some(HashMap::new()) }
    }

    /// A scanning source: every selection scans the relation — the
    /// ablation baseline for the index experiment (E16).
    pub fn without_indexes(db: &'a Database) -> InMemorySource<'a> {
        InMemorySource { db, indexes: None }
    }

    /// Number of hash indexes built so far (0 when indexing is disabled).
    pub fn index_count(&self) -> usize {
        self.indexes.as_ref().map_or(0, HashMap::len)
    }

    /// Answers an input-slot selection, via the hash index when enabled.
    fn select_rows(&mut self, name: Symbol, inputs: &[Option<Value>]) -> Vec<Tuple> {
        // The relation may be declared but empty/absent in this instance.
        let Some(rel) = self.db.relation(name) else {
            return Vec::new();
        };
        let positions: Vec<usize> = (0..inputs.len()).filter(|&j| inputs[j].is_some()).collect();
        let Some(indexes) = &mut self.indexes else {
            return rel.select(inputs).cloned().collect();
        };
        if positions.is_empty() {
            return rel.iter().cloned().collect();
        }
        let index = indexes
            .entry((name, positions.clone()))
            .or_insert_with(|| {
                let mut map: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
                for row in rel.iter() {
                    let key: Vec<Value> = positions.iter().map(|&j| row[j]).collect();
                    map.entry(key).or_default().push(row.clone());
                }
                map
            });
        let key: Vec<Value> = positions
            .iter()
            .map(|&j| inputs[j].expect("position is Some"))
            .collect();
        index.get(&key).cloned().unwrap_or_default()
    }
}

impl Source for InMemorySource<'_> {
    fn fetch(
        &mut self,
        name: Symbol,
        _pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        Ok(SourceReply { rows: self.select_rows(name, inputs), latency_ms: 0 })
    }

    /// In-memory fetches never fault and carry zero latency, so the whole
    /// call is deferrable row transfer.
    fn plan_fetch(
        &mut self,
        _name: Symbol,
        _pattern: AccessPattern,
        _inputs: &[Option<Value>],
    ) -> PlannedFetch {
        PlannedFetch::Defer { latency_ms: 0 }
    }
}

/// Placeholder transport used only while swapping boxes during
/// [`SourceRegistry::with_fault_injection`]; never observable.
struct EmptySource;

impl Source for EmptySource {
    fn fetch(
        &mut self,
        _name: Symbol,
        _pattern: AccessPattern,
        _inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        Ok(SourceReply { rows: Vec::new(), latency_ms: 0 })
    }
}

/// Per-registry traffic attribution. Unlike the shared recorder counters,
/// these belong to exactly one registry, so two registries attached to the
/// same [`Recorder`] never see each other's calls in their `stats()` view.
#[derive(Clone, Copy, Debug, Default)]
struct LocalStats {
    calls: u64,
    tuples_returned: u64,
    cache_hits: u64,
    membership: u64,
    retries: u64,
    failures: u64,
}

/// The mediator's view of the sources: a transport ([`Source`]) hidden
/// behind access patterns, with call statistics, an optional call cache,
/// and a retry loop for faulted fetches.
///
/// Statistics are mirrored into `lap-obs` counters so a pipeline-wide
/// [`Recorder`] can aggregate them, but [`SourceRegistry::stats`] reads a
/// *per-registry* tally: only traffic issued through this registry since
/// construction / attach / [`SourceRegistry::reset_stats`] is reported,
/// even when several registries share one recorder.
pub struct SourceRegistry<'a> {
    source: Box<dyn Source + 'a>,
    schema: &'a Schema,
    recorder: Recorder,
    /// Positive source calls that hit the wire (cache misses only).
    calls: Counter,
    tuples_returned: Counter,
    cache_hits: Counter,
    /// Membership probes issued by negated literals that hit the wire — a
    /// counter *disjoint* from `source.calls`, so positive-call and
    /// membership traffic never double-count in metrics snapshots.
    membership: Counter,
    /// Re-attempts after a faulted fetch (attempt 2 and later).
    retries: Counter,
    /// Faults observed from the transport (before any retry succeeds).
    failures: Counter,
    rows_per_call: Histogram,
    /// This registry's own traffic; `stats()` subtracts `baseline`.
    local: LocalStats,
    /// Local values at the last attach/reset.
    baseline: LocalStats,
    retry: RetryPolicy,
    /// Jitter source for retry backoff; fixed seed keeps runs replayable.
    retry_rng: StdRng,
    /// Virtual milliseconds spent in transport latency + backoff since the
    /// last [`SourceRegistry::reset_clock`], *serially accounted* (every
    /// attempt adds its full cost even when attempts overlap); checked
    /// against the retry policy's per-query deadline budget, which stays a
    /// budget of work, not of elapsed time.
    clock_ms: u64,
    /// Virtual milliseconds folded in by past [`SourceRegistry::reset_clock`]
    /// calls, so lifetime reporting survives per-phase deadline resets.
    retired_clock_ms: u64,
    /// Virtual *wall-clock* milliseconds since the last reset: equal to
    /// `clock_ms` under serial execution, but only the longest worker
    /// lane of each overlapped batch when `io_workers > 1`.
    wall_ms: u64,
    /// Wall-clock milliseconds folded in by past resets.
    retired_wall_ms: u64,
    /// Worker lanes for overlapped batches ([`SourceRegistry::call_many`]);
    /// 1 = fully serial, the legacy behaviour bit for bit.
    io_workers: usize,
    /// When set, overlapped batches execute their deferred transfers in a
    /// seeded pseudo-random completion order ([`crate::sched`]) instead of
    /// on real threads — the interleaving suite's adversarial scheduler.
    sched_seed: Option<u64>,
    /// Per-batch salt folded into `sched_seed` so every overlapped batch
    /// of one run sees a fresh adversarial permutation.
    sched_epoch: u64,
    cache: Option<HashMap<CallKey, Vec<Tuple>>>,
    /// Flight-recorder journal (attached via [`SourceRegistry::recording`]
    /// when the recorder carries one).
    journal: Option<Journal>,
    /// Lane stamped on journal events (0 = main; parallel union workers
    /// use their disjunct index so per-lane begin/end balance holds).
    lane: u64,
    /// Memoized journal interner ids per (relation, pattern). A plan
    /// touches a handful of distinct accesses, so a linear scan beats a
    /// hash map and keeps string hashing off the per-call fast path.
    journal_call_ids: Vec<(Symbol, AccessPattern, u32, u32)>,
    /// Memoized journal interner ids per relation (instant events).
    journal_rel_ids: Vec<(Symbol, u32)>,
}

impl<'a> SourceRegistry<'a> {
    /// A registry without call caching over an indexed in-memory source:
    /// every call hits the source.
    pub fn new(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry::with_source(Box::new(InMemorySource::new(db)), schema)
    }

    /// A registry with call caching: repeated identical calls are answered
    /// locally (the "semijoin-style" optimization a mediator would apply).
    pub fn with_cache(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            cache: Some(HashMap::new()),
            ..SourceRegistry::new(db, schema)
        }
    }

    /// A registry whose sources answer every selection by scanning — the
    /// ablation baseline for the index experiment (E16).
    pub fn without_indexes(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry::with_source(Box::new(InMemorySource::without_indexes(db)), schema)
    }

    /// A registry over an arbitrary transport. This is how fault-injecting
    /// or remote sources plug in; [`SourceRegistry::new`] is the in-memory
    /// special case.
    pub fn with_source(source: Box<dyn Source + 'a>, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            source,
            schema,
            recorder: Recorder::disabled(),
            calls: Counter::detached(),
            tuples_returned: Counter::detached(),
            cache_hits: Counter::detached(),
            membership: Counter::detached(),
            retries: Counter::detached(),
            failures: Counter::detached(),
            rows_per_call: Histogram::detached(),
            local: LocalStats::default(),
            baseline: LocalStats::default(),
            retry: RetryPolicy::default(),
            retry_rng: StdRng::seed_from_u64(0x5EED_BACC_0FF5),
            clock_ms: 0,
            retired_clock_ms: 0,
            wall_ms: 0,
            retired_wall_ms: 0,
            io_workers: 1,
            sched_seed: None,
            sched_epoch: 0,
            cache: None,
            journal: None,
            lane: 0,
            journal_call_ids: Vec::new(),
            journal_rel_ids: Vec::new(),
        }
    }

    /// Wraps the current transport in a deterministic
    /// [`crate::FaultInjectingSource`] with configuration `cfg`.
    pub fn with_fault_injection(mut self, cfg: crate::FaultConfig) -> SourceRegistry<'a> {
        let inner = std::mem::replace(&mut self.source, Box::new(EmptySource));
        self.source = Box::new(crate::FaultInjectingSource::new(inner, cfg));
        self
    }

    /// Sets the retry policy for faulted fetches (default: fail on the
    /// first fault, no backoff — the legacy behaviour).
    pub fn with_retry(mut self, policy: RetryPolicy) -> SourceRegistry<'a> {
        self.retry = policy;
        self
    }

    /// Sets the number of worker lanes for overlapped batched calls
    /// (clamped to `1..=`[`MAX_IO_WORKERS`]). With the default of 1 every
    /// call runs serially — the legacy behaviour bit for bit; with more,
    /// [`SourceRegistry::call_many`] overlaps a batch's wire waits across
    /// that many virtual lanes and a matching worker-thread pool.
    pub fn with_io_workers(mut self, workers: usize) -> SourceRegistry<'a> {
        self.io_workers = workers.clamp(1, MAX_IO_WORKERS);
        self
    }

    /// Number of worker lanes overlapped batches may use.
    pub fn io_workers(&self) -> usize {
        self.io_workers
    }

    /// Forces overlapped batches through the seeded adversarial scheduler
    /// ([`crate::sched::run_adversarial`]): deferred transfers execute in
    /// a pseudo-random completion order drawn from `seed`. Test-harness
    /// knob; results must not depend on the seed.
    pub fn with_adversarial_sched(mut self, seed: u64) -> SourceRegistry<'a> {
        self.sched_seed = Some(seed);
        self
    }

    /// Attaches this registry to `recorder`: call statistics register as
    /// the `source.*` counters and the `source.rows_per_call` histogram.
    /// The shared counters may already carry values from other components;
    /// `stats()` keeps reporting only this registry's own traffic.
    pub fn recording(mut self, recorder: &Recorder) -> SourceRegistry<'a> {
        self.recorder = recorder.clone();
        self.calls = recorder.counter("source.calls");
        self.tuples_returned = recorder.counter("source.tuples_returned");
        self.cache_hits = recorder.counter("source.cache_hits");
        self.membership = recorder.counter("source.membership");
        self.retries = recorder.counter("source.retries");
        self.failures = recorder.counter("source.failures");
        self.rows_per_call = recorder.histogram("source.rows_per_call");
        self.journal = recorder.journal().cloned();
        self
    }

    /// Sets the lane stamped on this registry's journal events. Parallel
    /// union workers use their disjunct index, keeping per-lane begin/end
    /// pairs balanced while sequence numbers stay globally monotone.
    pub fn with_journal_lane(mut self, lane: u64) -> SourceRegistry<'a> {
        self.lane = lane;
        self
    }

    /// True when a flight-recorder journal is attached.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Records one journal event stamped with this registry's lane and
    /// virtual clock. No-op without an attached journal.
    pub fn journal_emit(&self, kind: &str, data: Json) {
        if let Some(journal) = &self.journal {
            journal.emit(self.lane, self.virtual_elapsed_ms(), kind, data);
        }
    }

    /// Records an `exec.estimate.blown` marker: operator `label` has
    /// emitted `observed` rows against a static estimate of `estimated`
    /// tuples. Bumps the shared `exec.estimate_blown` counter even when no
    /// journal is attached, so callers can poll the recorder for blown
    /// estimates cheaply.
    pub fn note_estimate_blown(&self, label: &str, observed: u64, estimated: f64) {
        self.recorder.counter("exec.estimate_blown").incr();
        self.journal_emit(
            lap_obs::journal::kind::ESTIMATE_BLOWN,
            Json::obj([
                ("label", Json::str(label)),
                ("observed_rows", Json::num(observed)),
                ("estimated_tuples", Json::Num(estimated)),
            ]),
        );
    }

    /// Journal interner ids for a (relation, pattern) access, memoized so
    /// the steady-state call path never hashes a string. Only called with
    /// a journal attached.
    fn journal_call_ids(&mut self, name: Symbol, pattern: AccessPattern) -> (u32, u32) {
        if let Some(hit) = self
            .journal_call_ids
            .iter()
            .find(|(n, p, ..)| *n == name && *p == pattern)
        {
            return (hit.2, hit.3);
        }
        let journal = self.journal.as_ref().expect("memo used while journaling");
        let mut buf = [0u8; AccessPattern::MAX_ARITY];
        let rel = journal.intern(name.as_str());
        let pat = journal.intern(pattern_word(pattern, &mut buf));
        self.journal_call_ids.push((name, pattern, rel, pat));
        (rel, pat)
    }

    /// Journal interner id for a relation, memoized like
    /// [`SourceRegistry::journal_call_ids`].
    fn journal_rel_id(&mut self, name: Symbol) -> u32 {
        if let Some(hit) = self.journal_rel_ids.iter().find(|(n, _)| *n == name) {
            return hit.1;
        }
        let journal = self.journal.as_ref().expect("memo used while journaling");
        let rel = journal.intern(name.as_str());
        self.journal_rel_ids.push((name, rel));
        rel
    }

    /// Records one compact instant event for `name` on this registry's
    /// lane and virtual clock. No-op without an attached journal.
    fn journal_instant(&mut self, name: Symbol, payload: InstantPayload) {
        if self.journal.is_some() {
            let rel = self.journal_rel_id(name);
            let ts = self.virtual_elapsed_ms();
            if let Some(journal) = &self.journal {
                journal.record_instant_by_id(self.lane, ts, rel, payload);
            }
        }
    }

    /// The recorder this registry reports to (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The schema this registry enforces.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Call statistics accumulated through *this* registry since
    /// construction / the last [`SourceRegistry::reset_stats`]. Counts
    /// positive calls only — membership probes are reported disjointly by
    /// [`SourceRegistry::membership_probes`].
    pub fn stats(&self) -> CallStats {
        CallStats {
            calls: self.local.calls.saturating_sub(self.baseline.calls),
            tuples_returned: self
                .local
                .tuples_returned
                .saturating_sub(self.baseline.tuples_returned),
            cache_hits: self.local.cache_hits.saturating_sub(self.baseline.cache_hits),
        }
    }

    /// Membership probes ([`SourceRegistry::membership_test`]) that hit
    /// the wire through this registry since construction / the last
    /// [`SourceRegistry::reset_stats`]. Disjoint from `stats().calls`.
    pub fn membership_probes(&self) -> u64 {
        self.local.membership.saturating_sub(self.baseline.membership)
    }

    /// Retried fetch attempts issued through this registry since
    /// construction / the last [`SourceRegistry::reset_stats`].
    pub fn retries_observed(&self) -> u64 {
        self.local.retries.saturating_sub(self.baseline.retries)
    }

    /// Transport faults observed through this registry since construction
    /// / the last [`SourceRegistry::reset_stats`] (including ones a retry
    /// later recovered from).
    pub fn failures_observed(&self) -> u64 {
        self.local.failures.saturating_sub(self.baseline.failures)
    }

    /// Resets the call statistics view (the cache, if any, is kept; the
    /// recorder's lifetime counters are monotone and keep their values).
    pub fn reset_stats(&mut self) {
        self.baseline = self.local;
    }

    /// Lifetime virtual *wall-clock* milliseconds spent waiting on
    /// transport latency and retry backoff, across
    /// [`SourceRegistry::reset_clock`] resets (which only restart the
    /// *deadline* window, not this total). Under serial execution this
    /// equals the serial sum of all waits; under overlapped execution
    /// (`io_workers > 1`) each batch contributes only its longest worker
    /// lane — concurrent waits count once.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.retired_wall_ms + self.wall_ms
    }

    /// Restarts the deadline window of the virtual clock (the retry
    /// policy's per-query budget) — call between independent queries. The
    /// elapsed time is folded into [`SourceRegistry::virtual_elapsed_ms`].
    pub fn reset_clock(&mut self) {
        self.retired_clock_ms += self.clock_ms;
        self.clock_ms = 0;
        self.retired_wall_ms += self.wall_ms;
        self.wall_ms = 0;
    }

    /// Charges `ms` of serial wire time: the deadline window and the wall
    /// clock advance in lockstep. Overlapped batches bypass this — they
    /// charge the deadline window serially during planning and the wall
    /// clock once per batch, from the scheduled lane ends.
    fn charge_serial(&mut self, ms: u64) {
        self.clock_ms += ms;
        self.wall_ms += ms;
    }

    /// One transport fetch under the retry policy: faults are retried with
    /// exponential backoff (virtual time) until an attempt succeeds, the
    /// attempt budget is spent, or the per-query deadline is exceeded.
    fn wire_fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, EngineError> {
        // One sampling decision covers every attempt of this call, so the
        // journal's begin/end pairs stay balanced under sampling.
        let journaled = self
            .journal
            .as_ref()
            .is_some_and(Journal::should_sample_call);
        let capture = journaled && self.journal.as_ref().is_some_and(Journal::capture_rows);
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        // Backoff charged after the previous failed attempt, carried into
        // the next attempt's retry marker so the journal can attribute
        // per-source wait time.
        let mut pending_backoff = 0u64;
        loop {
            attempt += 1;
            if attempt > 1 {
                {
                    let _span = self
                        .recorder
                        .span_lazy(|| format!("source.retry {name} attempt {attempt}"));
                    self.retries.incr();
                    self.local.retries += 1;
                }
                if journaled {
                    self.journal_instant(
                        name,
                        InstantPayload::Retry {
                            attempt: u64::from(attempt),
                            backoff_ms: pending_backoff,
                        },
                    );
                }
            }
            // Replay tier: the begin event carries the bound inputs, so a
            // journal alone can re-drive the run. The pair is recorded
            // atomically after the outcome — concurrent lanes can then
            // never interleave inside a pair, and eviction keeps both
            // halves or neither.
            let capture_begin =
                capture.then(|| capture_begin_json(name, pattern, attempt, inputs));
            let begin_ts = self.virtual_elapsed_ms();
            match self.source.fetch(name, pattern, inputs) {
                Ok(reply) => {
                    self.charge_serial(reply.latency_ms);
                    if let Some(begin_data) = capture_begin {
                        let end_data = capture_ok_json(name, attempt, &reply);
                        let end_ts = self.virtual_elapsed_ms();
                        if let Some(journal) = &self.journal {
                            journal.record_call_rich(self.lane, begin_ts, end_ts, begin_data, end_data);
                        }
                    } else if journaled {
                        let (rel, pat) = self.journal_call_ids(name, pattern);
                        let end_ts = self.virtual_elapsed_ms();
                        if let Some(journal) = &self.journal {
                            journal.record_call_by_id(
                                self.lane,
                                begin_ts,
                                end_ts,
                                rel,
                                pat,
                                u64::from(attempt),
                                WireOutcome::Ok {
                                    rows: reply.rows.len() as u64,
                                    latency_ms: reply.latency_ms,
                                },
                            );
                        }
                    }
                    return Ok(reply);
                }
                Err(fault) => {
                    self.failures.incr();
                    self.local.failures += 1;
                    self.charge_serial(fault.latency_ms());
                    if journaled {
                        let (outcome, raw_latency) = match fault {
                            SourceFault::Unavailable { latency_ms } => {
                                (WireOutcome::Unavailable { latency_ms }, latency_ms)
                            }
                            SourceFault::Timeout { latency_ms, timeout_ms } => (
                                WireOutcome::Timeout { latency_ms, timeout_ms },
                                latency_ms,
                            ),
                        };
                        if let Some(begin_data) = capture_begin {
                            let end_data = capture_fault_json(name, attempt, &fault);
                            let end_ts = self.virtual_elapsed_ms();
                            if let Some(journal) = &self.journal {
                                journal.record_call_rich(
                                    self.lane, begin_ts, end_ts, begin_data, end_data,
                                );
                            }
                        } else {
                            let (rel, pat) = self.journal_call_ids(name, pattern);
                            let end_ts = self.virtual_elapsed_ms();
                            if let Some(journal) = &self.journal {
                                journal.record_call_by_id(
                                    self.lane,
                                    begin_ts,
                                    end_ts,
                                    rel,
                                    pat,
                                    u64::from(attempt),
                                    outcome,
                                );
                            }
                        }
                        let payload = match fault {
                            SourceFault::Unavailable { .. } => InstantPayload::Fault {
                                latency_ms: raw_latency,
                                attempt: u64::from(attempt),
                            },
                            SourceFault::Timeout { .. } => InstantPayload::Timeout {
                                latency_ms: raw_latency,
                                attempt: u64::from(attempt),
                            },
                        };
                        self.journal_instant(name, payload);
                    }
                    let deadline_hit = self
                        .retry
                        .deadline_ms
                        .is_some_and(|d| self.clock_ms >= d);
                    if attempt >= max_attempts || deadline_hit {
                        let reason = if deadline_hit && attempt < max_attempts {
                            format!(
                                "{fault}; per-query deadline budget of {}ms exhausted",
                                self.retry.deadline_ms.unwrap_or(0)
                            )
                        } else {
                            fault.to_string()
                        };
                        return Err(EngineError::SourceUnavailable {
                            relation: name.to_string(),
                            attempts: attempt,
                            reason,
                        });
                    }
                    let backoff = self.retry.backoff_ms(attempt, &mut self.retry_rng);
                    self.charge_serial(backoff);
                    pending_backoff = backoff;
                }
            }
        }
    }

    /// Calls relation `name` through `pattern`, supplying `inputs[j] =
    /// Some(v)` for every input slot `j`. Returns the tuples matching the
    /// supplied inputs — the full rows, as a web service would return them;
    /// any additional client-side filtering (bound output slots, repeated
    /// variables) is the evaluator's job.
    ///
    /// Errors if the pattern is not declared for the relation or an input
    /// slot has no value. Values supplied at output slots are rejected:
    /// per the paper's footnote 4, a source cannot accept them — the caller
    /// must ignore the binding and filter after the call.
    pub fn call(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<Vec<Tuple>, EngineError> {
        self.validate(name, pattern, inputs)?;
        let key = (name, pattern, inputs.to_vec());
        if let Some(hit) = self.cache.as_ref().and_then(|c| c.get(&key)).cloned() {
            self.cache_hits.incr();
            self.local.cache_hits += 1;
            self.journal_instant(
                name,
                InstantPayload::CacheHit {
                    rows: hit.len() as u64,
                    membership: false,
                },
            );
            return Ok(hit);
        }
        let reply = self.wire_fetch(name, pattern, inputs)?;
        let rows = reply.rows;
        self.calls.incr();
        self.local.calls += 1;
        self.tuples_returned.add(rows.len() as u64);
        self.local.tuples_returned += rows.len() as u64;
        self.rows_per_call.record(rows.len() as u64);
        if let Some(cache) = &mut self.cache {
            cache.insert(key, rows.clone());
        }
        Ok(rows)
    }

    /// Calls relation `name` once per key in `keys`, overlapping the wire
    /// waits across up to [`SourceRegistry::with_io_workers`] virtual
    /// lanes. Results come back in issue order and are bit-identical to
    /// calling [`SourceRegistry::call`] in a loop — same answers, same
    /// counters, same retry/failure accounting, same terminal error — only
    /// the *wall* clock differs: a batch charges its longest worker lane
    /// instead of the serial sum.
    ///
    /// With one worker (the default) and no adversarial schedule this *is*
    /// the serial loop.
    pub fn call_many(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        keys: &[Vec<Option<Value>>],
    ) -> Result<Vec<Vec<Tuple>>, EngineError> {
        if (self.io_workers <= 1 && self.sched_seed.is_none()) || keys.len() <= 1 {
            return keys.iter().map(|key| self.call(name, pattern, key)).collect();
        }
        self.call_many_overlapped(name, pattern, keys)
    }

    /// The overlapped path of [`SourceRegistry::call_many`], in four
    /// phases:
    ///
    /// 1. **Plan** (issue order, sequential): the transport commits each
    ///    attempt's outcome via [`Source::plan_fetch`], consuming exactly
    ///    the randomness and deadline budget the serial loop would.
    /// 2. **Schedule**: each wire call is greedily assigned to the
    ///    earliest-free of `io_workers` virtual lanes; the wall clock
    ///    advances by the longest lane.
    /// 3. **Dispatch**: committed-success row transfers run on the
    ///    [`crate::sched`] worker pool (or the seeded adversarial
    ///    scheduler) — pure data movement, no randomness left.
    /// 4. **Merge** (issue order): journal pairs and instants are emitted
    ///    at their scheduled timestamps on per-worker sub-lanes, counters
    ///    and the cache are updated, and any planned terminal error is
    ///    surfaced after its prefix — exactly like the serial loop.
    fn call_many_overlapped(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        keys: &[Vec<Option<Value>>],
    ) -> Result<Vec<Vec<Tuple>>, EngineError> {
        let base_wall = self.virtual_elapsed_ms();

        // Phase 1 — plan. Stops at the first terminal outcome, like the
        // serial loop stops at its first `Err`.
        let mut scripts: Vec<ScriptedCall> = Vec::with_capacity(keys.len());
        let mut validation_err: Option<EngineError> = None;
        for (i, key) in keys.iter().enumerate() {
            if let Err(e) = self.validate(name, pattern, key) {
                validation_err = Some(e);
                break;
            }
            let cache_key = (name, pattern, key.clone());
            if let Some(hit) = self.cache.as_ref().and_then(|c| c.get(&cache_key)).cloned() {
                self.cache_hits.incr();
                self.local.cache_hits += 1;
                self.journal_instant(
                    name,
                    InstantPayload::CacheHit {
                        rows: hit.len() as u64,
                        membership: false,
                    },
                );
                scripts.push(ScriptedCall::Cached(hit));
                continue;
            }
            // A duplicate key in the batch: the serial loop would have
            // cached the first occurrence by now, so it cache-hits.
            if self.cache.is_some() {
                if let Some(first) = keys[..i].iter().position(|k| k == key) {
                    self.cache_hits.incr();
                    self.local.cache_hits += 1;
                    scripts.push(ScriptedCall::Dup(first));
                    continue;
                }
            }
            let script = self.plan_wire(name, pattern, key);
            let failed = script.error.is_some();
            scripts.push(ScriptedCall::Wire(script));
            if failed {
                break;
            }
        }

        // Phase 2 — schedule: greedy earliest-free-lane in issue order.
        let workers = self.io_workers.max(1);
        let mut lane_free = vec![base_wall; workers];
        for sc in &mut scripts {
            if let ScriptedCall::Wire(ws) = sc {
                let k = lane_free
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, free)| **free)
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                ws.start_ms = lane_free[k];
                ws.lane = (self.lane + 1) * LANE_STRIDE + k as u64;
                lane_free[k] += ws.duration_ms();
            }
        }
        let batch_end = lane_free.into_iter().max().unwrap_or(base_wall);
        self.wall_ms += batch_end - base_wall;

        // Phase 3 — dispatch the committed-success row transfers.
        let deferred: Vec<usize> = scripts
            .iter()
            .enumerate()
            .filter_map(|(i, sc)| match sc {
                ScriptedCall::Wire(ws)
                    if matches!(
                        ws.attempts.last().map(|a| &a.outcome),
                        Some(ScriptedOutcome::Deferred { .. })
                    ) =>
                {
                    Some(i)
                }
                _ => None,
            })
            .collect();
        let fetched: Vec<Result<SourceReply, SourceFault>> = if deferred.is_empty() {
            Vec::new()
        } else {
            let sched_seed = self.sched_seed;
            self.sched_epoch = self.sched_epoch.wrapping_add(1);
            let epoch = self.sched_epoch;
            let transport = Mutex::new(&mut self.source);
            let jobs: Vec<_> = deferred
                .iter()
                .map(|&i| {
                    let transport = &transport;
                    let key = &keys[i];
                    move || {
                        transport
                            .lock()
                            .expect("transport lock")
                            .fetch_deferred(name, pattern, key)
                    }
                })
                .collect();
            match sched_seed {
                Some(seed) => sched::run_adversarial(seed.wrapping_add(epoch), jobs),
                None => sched::run_ordered(workers, jobs),
            }
        };

        // Phase 4 — merge in issue order.
        let mut rows_out: Vec<Vec<Tuple>> = Vec::with_capacity(scripts.len());
        let mut pool = fetched.into_iter();
        for (i, sc) in scripts.into_iter().enumerate() {
            match sc {
                ScriptedCall::Cached(rows) => rows_out.push(rows),
                ScriptedCall::Dup(first) => {
                    let rows = rows_out[first].clone();
                    self.journal_instant(
                        name,
                        InstantPayload::CacheHit {
                            rows: rows.len() as u64,
                            membership: false,
                        },
                    );
                    rows_out.push(rows);
                }
                ScriptedCall::Wire(mut ws) => {
                    let mut t = ws.start_ms;
                    let mut final_reply: Option<SourceReply> = None;
                    // The backoff the previous failed attempt scheduled,
                    // attributed to the retry marker it delayed.
                    let mut prev_backoff = 0u64;
                    for sa in std::mem::take(&mut ws.attempts) {
                        if sa.attempt > 1 && ws.journaled {
                            self.journal_instant_at(
                                ws.lane,
                                t,
                                name,
                                InstantPayload::Retry {
                                    attempt: u64::from(sa.attempt),
                                    backoff_ms: prev_backoff,
                                },
                            );
                        }
                        let begin_ts = t;
                        match sa.outcome {
                            ScriptedOutcome::Deferred { latency_ms } => {
                                let end_ts = begin_ts + latency_ms;
                                match pool.next().expect("one pool result per deferred call") {
                                    Ok(mut reply) => {
                                        reply.latency_ms += latency_ms;
                                        self.journal_wire_ok(
                                            &ws, begin_ts, end_ts, name, pattern, &keys[i],
                                            sa.attempt, &reply,
                                        );
                                        final_reply = Some(reply);
                                    }
                                    Err(fault) => {
                                        // Defensive: a transport that committed to
                                        // `Defer` must not fault in the data phase.
                                        self.failures.incr();
                                        self.local.failures += 1;
                                        self.journal_wire_fault(
                                            &ws, begin_ts, end_ts, name, pattern, &keys[i],
                                            sa.attempt, &fault,
                                        );
                                        ws.error = Some(EngineError::SourceUnavailable {
                                            relation: name.to_string(),
                                            attempts: sa.attempt,
                                            reason: fault.to_string(),
                                        });
                                    }
                                }
                                t = end_ts;
                            }
                            ScriptedOutcome::Ready(reply) => {
                                let end_ts = begin_ts + reply.latency_ms;
                                self.journal_wire_ok(
                                    &ws, begin_ts, end_ts, name, pattern, &keys[i], sa.attempt,
                                    &reply,
                                );
                                final_reply = Some(reply);
                                t = end_ts;
                            }
                            ScriptedOutcome::Fault(fault) => {
                                let end_ts = begin_ts + fault.latency_ms();
                                self.journal_wire_fault(
                                    &ws, begin_ts, end_ts, name, pattern, &keys[i], sa.attempt,
                                    &fault,
                                );
                                t = end_ts + sa.backoff_ms;
                                prev_backoff = sa.backoff_ms;
                            }
                        }
                    }
                    if let Some(err) = ws.error.take() {
                        // The prefix before the failing call is fully merged;
                        // surface the error the serial loop would return.
                        return Err(err);
                    }
                    let reply = final_reply.expect("a script without error ends in a reply");
                    let rows = reply.rows;
                    self.calls.incr();
                    self.local.calls += 1;
                    self.tuples_returned.add(rows.len() as u64);
                    self.local.tuples_returned += rows.len() as u64;
                    self.rows_per_call.record(rows.len() as u64);
                    if let Some(cache) = &mut self.cache {
                        cache.insert((name, pattern, keys[i].clone()), rows.clone());
                    }
                    rows_out.push(rows);
                }
            }
        }
        match validation_err {
            Some(err) => Err(err),
            None => Ok(rows_out),
        }
    }

    /// Plans one overlapped wire call by asking the transport to commit
    /// each attempt's outcome ([`Source::plan_fetch`]) in the exact order
    /// the serial [`SourceRegistry::wire_fetch`] loop would, consuming the
    /// same randomness, deadline budget, and retry/failure counters. The
    /// journal events are deferred to the merge phase, where the call's
    /// scheduled lane and timestamps are known.
    fn plan_wire(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> WireScript {
        let journaled = self
            .journal
            .as_ref()
            .is_some_and(Journal::should_sample_call);
        let capture = journaled && self.journal.as_ref().is_some_and(Journal::capture_rows);
        let max_attempts = self.retry.max_attempts.max(1);
        let mut script = WireScript {
            attempts: Vec::new(),
            error: None,
            journaled,
            capture,
            start_ms: 0,
            lane: self.lane,
        };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > 1 {
                let _span = self
                    .recorder
                    .span_lazy(|| format!("source.retry {name} attempt {attempt}"));
                self.retries.incr();
                self.local.retries += 1;
            }
            match self.source.plan_fetch(name, pattern, inputs) {
                PlannedFetch::Defer { latency_ms } => {
                    self.clock_ms += latency_ms;
                    script.attempts.push(ScriptedAttempt {
                        attempt,
                        outcome: ScriptedOutcome::Deferred { latency_ms },
                        backoff_ms: 0,
                    });
                    return script;
                }
                PlannedFetch::Ready(Ok(reply)) => {
                    self.clock_ms += reply.latency_ms;
                    script.attempts.push(ScriptedAttempt {
                        attempt,
                        outcome: ScriptedOutcome::Ready(reply),
                        backoff_ms: 0,
                    });
                    return script;
                }
                PlannedFetch::Fault(fault) | PlannedFetch::Ready(Err(fault)) => {
                    self.failures.incr();
                    self.local.failures += 1;
                    self.clock_ms += fault.latency_ms();
                    let deadline_hit = self
                        .retry
                        .deadline_ms
                        .is_some_and(|d| self.clock_ms >= d);
                    if attempt >= max_attempts || deadline_hit {
                        let reason = if deadline_hit && attempt < max_attempts {
                            format!(
                                "{fault}; per-query deadline budget of {}ms exhausted",
                                self.retry.deadline_ms.unwrap_or(0)
                            )
                        } else {
                            fault.to_string()
                        };
                        script.error = Some(EngineError::SourceUnavailable {
                            relation: name.to_string(),
                            attempts: attempt,
                            reason,
                        });
                        script.attempts.push(ScriptedAttempt {
                            attempt,
                            outcome: ScriptedOutcome::Fault(fault),
                            backoff_ms: 0,
                        });
                        return script;
                    }
                    let backoff = self.retry.backoff_ms(attempt, &mut self.retry_rng);
                    self.clock_ms += backoff;
                    script.attempts.push(ScriptedAttempt {
                        attempt,
                        outcome: ScriptedOutcome::Fault(fault),
                        backoff_ms: backoff,
                    });
                }
            }
        }
    }

    /// Records one compact instant event at an explicit lane and
    /// timestamp — the merge phase's variant of
    /// [`SourceRegistry::journal_instant`].
    fn journal_instant_at(&mut self, lane: u64, ts: u64, name: Symbol, payload: InstantPayload) {
        if self.journal.is_some() {
            let rel = self.journal_rel_id(name);
            if let Some(journal) = &self.journal {
                journal.record_instant_by_id(lane, ts, rel, payload);
            }
        }
    }

    /// Journals a successful attempt of an overlapped call as an atomic
    /// begin/end pair on the call's scheduled sub-lane, at the replay tier
    /// (rich, with rows) or the light tier (compact ids).
    #[allow(clippy::too_many_arguments)]
    fn journal_wire_ok(
        &mut self,
        ws: &WireScript,
        begin_ts: u64,
        end_ts: u64,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
        attempt: u32,
        reply: &SourceReply,
    ) {
        if ws.capture {
            let begin = capture_begin_json(name, pattern, attempt, inputs);
            let end = capture_ok_json(name, attempt, reply);
            if let Some(journal) = &self.journal {
                journal.record_call_rich(ws.lane, begin_ts, end_ts, begin, end);
            }
        } else if ws.journaled {
            let (rel, pat) = self.journal_call_ids(name, pattern);
            if let Some(journal) = &self.journal {
                journal.record_call_by_id(
                    ws.lane,
                    begin_ts,
                    end_ts,
                    rel,
                    pat,
                    u64::from(attempt),
                    WireOutcome::Ok {
                        rows: reply.rows.len() as u64,
                        latency_ms: reply.latency_ms,
                    },
                );
            }
        }
    }

    /// Journals a faulted attempt of an overlapped call: the begin/end
    /// pair plus the fault/timeout instant, all on the call's scheduled
    /// sub-lane at its scheduled timestamps.
    #[allow(clippy::too_many_arguments)]
    fn journal_wire_fault(
        &mut self,
        ws: &WireScript,
        begin_ts: u64,
        end_ts: u64,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
        attempt: u32,
        fault: &SourceFault,
    ) {
        if !ws.journaled {
            return;
        }
        if ws.capture {
            let begin = capture_begin_json(name, pattern, attempt, inputs);
            let end = capture_fault_json(name, attempt, fault);
            if let Some(journal) = &self.journal {
                journal.record_call_rich(ws.lane, begin_ts, end_ts, begin, end);
            }
        } else {
            let (rel, pat) = self.journal_call_ids(name, pattern);
            let outcome = match *fault {
                SourceFault::Unavailable { latency_ms } => WireOutcome::Unavailable { latency_ms },
                SourceFault::Timeout { latency_ms, timeout_ms } => {
                    WireOutcome::Timeout { latency_ms, timeout_ms }
                }
            };
            if let Some(journal) = &self.journal {
                journal.record_call_by_id(
                    ws.lane,
                    begin_ts,
                    end_ts,
                    rel,
                    pat,
                    u64::from(attempt),
                    outcome,
                );
            }
        }
        let payload = match *fault {
            SourceFault::Unavailable { latency_ms } => InstantPayload::Fault {
                latency_ms,
                attempt: u64::from(attempt),
            },
            SourceFault::Timeout { latency_ms, .. } => InstantPayload::Timeout {
                latency_ms,
                attempt: u64::from(attempt),
            },
        };
        self.journal_instant_at(ws.lane, end_ts, name, payload);
    }

    /// Schema validation shared by positive calls and membership probes.
    fn validate(
        &self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<(), EngineError> {
        let decl = self
            .schema
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        if !decl.patterns.contains(&pattern) {
            return Err(EngineError::PatternNotAvailable {
                relation: name.to_string(),
                requested: pattern,
            });
        }
        if inputs.len() != pattern.arity() {
            return Err(EngineError::ArityMismatch {
                expected: pattern.arity(),
                found: inputs.len(),
            });
        }
        for (j, input) in inputs.iter().enumerate() {
            match (pattern.is_input(j), input.is_some()) {
                (true, false) => {
                    return Err(EngineError::MissingInput {
                        relation: name.to_string(),
                        pattern,
                        position: j,
                    })
                }
                (false, true) => {
                    return Err(EngineError::NotExecutable {
                        literal: format!("{name}^{pattern}"),
                        reason: format!("value supplied at output slot {j}"),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Tests whether the fully-ground tuple `values` is in relation `name`,
    /// using the most selective available pattern (all variables bound, so
    /// every pattern is usable — the one with the most input slots
    /// transfers the fewest rows). This is how negated literals are
    /// checked.
    ///
    /// Probes are accounted under `source.membership`, *disjoint* from the
    /// positive `source.calls` counter; cached probes count as cache hits
    /// like any other call.
    pub fn membership_test(&mut self, name: Symbol, values: &[Value]) -> Result<bool, EngineError> {
        let decl = self
            .schema
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        let Some(pattern) = decl.usable_pattern(|_| true) else {
            return Err(EngineError::NotExecutable {
                literal: name.to_string(),
                reason: "relation has no access pattern at all".to_owned(),
            });
        };
        if values.len() != pattern.arity() {
            return Err(EngineError::ArityMismatch {
                expected: pattern.arity(),
                found: values.len(),
            });
        }
        let inputs: Vec<Option<Value>> = (0..pattern.arity())
            .map(|j| pattern.is_input(j).then(|| values[j]))
            .collect();
        let key = (name, pattern, inputs.clone());
        let cached = self
            .cache
            .as_ref()
            .and_then(|c| c.get(&key))
            .map(|hit| (hit.len() as u64, hit.iter().any(|row| row.as_slice() == values)));
        if let Some((rows, present)) = cached {
            self.cache_hits.incr();
            self.local.cache_hits += 1;
            self.journal_instant(name, InstantPayload::CacheHit { rows, membership: true });
            return Ok(present);
        }
        let reply = self.wire_fetch(name, pattern, &inputs)?;
        let rows = reply.rows;
        self.membership.incr();
        self.local.membership += 1;
        self.tuples_returned.add(rows.len() as u64);
        self.local.tuples_returned += rows.len() as u64;
        let present = rows.iter().any(|row| row.as_slice() == values);
        self.journal_instant(name, InstantPayload::Membership { present });
        if let Some(cache) = &mut self.cache {
            cache.insert(key, rows);
        }
        Ok(present)
    }

    /// Tests a batch of fully-ground tuples for membership in relation
    /// `name`, in order. The wire behaviour is identical to calling
    /// [`SourceRegistry::membership_test`] once per key — the vectorized
    /// negation filter hands the whole distinct-key set of a batch window
    /// here so the probe loop lives next to the wire instead of in the
    /// operator.
    pub fn membership_test_many(
        &mut self,
        name: Symbol,
        keys: &[Vec<Value>],
    ) -> Result<Vec<bool>, EngineError> {
        let mut present = Vec::with_capacity(keys.len());
        for key in keys {
            present.push(self.membership_test(name, key)?);
        }
        Ok(present)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::Schema;

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg"). L(1)."#,
        )
        .unwrap();
        let schema = Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn call_with_author_input() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let rows = reg
            .call(Symbol::intern("B"), p, &[None, Some(Value::str("tolkien")), None])
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(reg.stats().tuples_returned, 2);
    }

    #[test]
    fn missing_input_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let err = reg.call(Symbol::intern("B"), p, &[None, None, None]).unwrap_err();
        assert!(matches!(err, EngineError::MissingInput { position: 1, .. }));
    }

    #[test]
    fn undeclared_pattern_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("ooo").unwrap(); // B has no free scan
        let err = reg
            .call(Symbol::intern("B"), p, &[None, None, None])
            .unwrap_err();
        assert!(matches!(err, EngineError::PatternNotAvailable { .. }));
    }

    #[test]
    fn value_at_output_slot_is_rejected() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let err = reg
            .call(
                Symbol::intern("B"),
                p,
                &[Some(Value::int(1)), Some(Value::str("tolkien")), None],
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::NotExecutable { .. }));
    }

    #[test]
    fn membership_test_uses_best_pattern() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap());
        assert!(!reg.membership_test(Symbol::intern("L"), &[Value::int(2)]).unwrap());
        assert!(reg
            .membership_test(
                Symbol::intern("B"),
                &[Value::int(1), Value::str("tolkien"), Value::str("lotr")]
            )
            .unwrap());
    }

    /// Satellite pin: with both a free scan and a selective pattern
    /// declared, membership probes must use the pattern with the most
    /// input slots — transferring at most the one matching row instead of
    /// the whole relation.
    #[test]
    fn membership_prefers_most_selective_pattern() {
        let mut db = Database::new();
        for i in 0..50i64 {
            db.insert("R", vec![Value::int(i), Value::int(i * 2), Value::int(i * 3)])
                .unwrap();
        }
        let schema = Schema::from_patterns(&[("R", "ooo"), ("R", "iio")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(reg
            .membership_test(Symbol::intern("R"), &[Value::int(7), Value::int(14), Value::int(21)])
            .unwrap());
        // R^iio pins columns 0 and 1: exactly one row matches (7, 14, _).
        // A free scan via R^ooo would have transferred all 50 rows.
        assert_eq!(reg.stats().tuples_returned, 1, "probe must not free-scan R");
        assert_eq!(reg.membership_probes(), 1);
    }

    #[test]
    fn cache_answers_repeated_calls() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::with_cache(&db, &schema);
        let p = AccessPattern::parse("ioo").unwrap();
        let args = [Some(Value::int(1)), None, None];
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        let s = reg.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn recording_registry_mirrors_stats_into_recorder() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        rec.counter("source.calls").add(10); // pre-existing traffic
        let mut reg = SourceRegistry::with_cache(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("oio").unwrap();
        let args = [None, Some(Value::str("tolkien")), None];
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        // The per-registry view starts at zero despite the shared counter.
        let s = reg.stats();
        assert_eq!((s.calls, s.tuples_returned, s.cache_hits), (1, 2, 1));
        let snap = rec.snapshot();
        assert_eq!(snap.counter("source.calls"), 11);
        assert_eq!(snap.counter("source.tuples_returned"), 2);
        assert_eq!(snap.counter("source.cache_hits"), 1);
        assert_eq!(snap.metrics.histograms["source.rows_per_call"].count, 1);
        // reset_stats zeroes the view, not the lifetime counters.
        reg.reset_stats();
        assert_eq!(reg.stats().calls, 0);
        assert_eq!(rec.snapshot().counter("source.calls"), 11);
    }

    /// Satellite regression: two registries attached to one recorder must
    /// each attribute only their own traffic, while the shared counters
    /// aggregate both.
    #[test]
    fn two_registries_on_one_recorder_attribute_their_own_calls() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        let mut a = SourceRegistry::new(&db, &schema).recording(&rec);
        let mut b = SourceRegistry::new(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("oio").unwrap();
        let args = [None, Some(Value::str("tolkien")), None];
        a.call(Symbol::intern("B"), p, &args).unwrap();
        a.call(Symbol::intern("B"), p, &args).unwrap();
        b.call(Symbol::intern("B"), p, &args).unwrap();
        assert_eq!(a.stats().calls, 2, "a must not see b's traffic");
        assert_eq!(b.stats().calls, 1, "b must not see a's traffic");
        assert_eq!(a.stats().tuples_returned, 4);
        assert_eq!(b.stats().tuples_returned, 2);
        // The shared lifetime counters see the union.
        assert_eq!(rec.snapshot().counter("source.calls"), 3);
        // Interleaved resets stay per-registry and never underflow.
        a.reset_stats();
        b.call(Symbol::intern("B"), p, &args).unwrap();
        assert_eq!(a.stats().calls, 0);
        assert_eq!(b.stats().calls, 2);
    }

    #[test]
    fn membership_probes_are_counted_separately() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        let mut reg = SourceRegistry::new(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("o").unwrap();
        reg.call(Symbol::intern("L"), p, &[None]).unwrap();
        assert_eq!(reg.membership_probes(), 0);
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        reg.membership_test(Symbol::intern("L"), &[Value::int(2)]).unwrap();
        assert_eq!(reg.membership_probes(), 2);
        // Probes are *disjoint* from positive calls: the one scan above is
        // the only entry in `source.calls`.
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(rec.snapshot().counter("source.calls"), 1);
        assert_eq!(rec.snapshot().counter("source.membership"), 2);
        reg.reset_stats();
        assert_eq!(reg.membership_probes(), 0);
    }

    #[test]
    fn cached_membership_probes_count_as_cache_hits() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::with_cache(&db, &schema);
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        assert_eq!(reg.membership_probes(), 1, "second probe is a cache hit");
        assert_eq!(reg.stats().cache_hits, 1);
        assert_eq!(reg.stats().calls, 0);
    }

    #[test]
    fn declared_but_absent_relation_is_empty() {
        let (db, _) = setup();
        let schema = Schema::from_patterns(&[("Z", "o")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("o").unwrap();
        let rows = reg.call(Symbol::intern("Z"), p, &[None]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("o").unwrap();
        assert!(matches!(
            reg.call(Symbol::intern("Nope"), p, &[None]),
            Err(EngineError::UnknownRelation(_))
        ));
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use lap_ir::Schema;

    fn big_db() -> (Database, Schema) {
        let mut db = Database::new();
        for i in 0..200i64 {
            db.insert("R", vec![Value::int(i % 20), Value::int(i)]).unwrap();
        }
        let schema = Schema::from_patterns(&[("R", "io"), ("R", "oo")]).unwrap();
        (db, schema)
    }

    #[test]
    fn indexed_and_scanned_selections_agree() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("io").unwrap();
        let mut indexed = SourceRegistry::new(&db, &schema);
        let mut scanned = SourceRegistry::without_indexes(&db, &schema);
        for k in 0..25i64 {
            let args = [Some(Value::int(k)), None];
            let a = indexed.call(Symbol::intern("R"), p, &args).unwrap();
            let b = scanned.call(Symbol::intern("R"), p, &args).unwrap();
            let a_set: std::collections::BTreeSet<_> = a.into_iter().collect();
            let b_set: std::collections::BTreeSet<_> = b.into_iter().collect();
            assert_eq!(a_set, b_set, "k={k}");
        }
        assert_eq!(indexed.stats().calls, scanned.stats().calls);
        assert_eq!(indexed.stats().tuples_returned, scanned.stats().tuples_returned);
    }

    #[test]
    fn free_scan_returns_everything_with_indexes_on() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("oo").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let rows = reg.call(Symbol::intern("R"), p, &[None, None]).unwrap();
        assert_eq!(rows.len(), 200);
    }

    #[test]
    fn index_is_reused_across_calls() {
        let (db, _) = big_db();
        let p = AccessPattern::parse("io").unwrap();
        let mut src = InMemorySource::new(&db);
        for k in 0..20i64 {
            src.fetch(Symbol::intern("R"), p, &[Some(Value::int(k)), None]).unwrap();
        }
        // One index for (R, [0]) serves all twenty calls.
        assert_eq!(src.index_count(), 1);
    }
}
