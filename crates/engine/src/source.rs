//! Access-pattern-enforcing source adapters.
//!
//! A [`SourceRegistry`] stands in for the paper's collection of web-service
//! operations: the *only* way to read data through it is
//! [`SourceRegistry::call`], which requires a declared access pattern and a
//! value for every input slot — exactly the discipline of Definition 1.
//! Violations are hard errors, never silently-wrong answers, so any plan
//! that evaluates successfully through the registry is, constructively, an
//! executable plan.

use crate::error::EngineError;
use crate::instance::Database;
use crate::stats::CallStats;
use crate::value::{Tuple, Value};
use lap_ir::{AccessPattern, Schema, Symbol};
use lap_obs::{Counter, Histogram, Recorder};
use std::collections::HashMap;

/// Cache key for one source call: relation, pattern, supplied inputs.
type CallKey = (Symbol, AccessPattern, Vec<Option<Value>>);
/// One hash index: projection of the indexed columns → matching rows.
type ColumnIndex = HashMap<Vec<Value>, Vec<Tuple>>;

/// The mediator's view of the sources: a database instance hidden behind
/// access patterns, with call statistics and an optional call cache.
///
/// Statistics live in `lap-obs` counters so a pipeline-wide
/// [`Recorder`] can aggregate them; [`SourceRegistry::stats`] stays a
/// per-registry *view* over those counters (value minus the baseline
/// captured at construction / [`SourceRegistry::reset_stats`] time).
pub struct SourceRegistry<'a> {
    db: &'a Database,
    schema: &'a Schema,
    recorder: Recorder,
    calls: Counter,
    tuples_returned: Counter,
    cache_hits: Counter,
    /// Membership probes issued by negated literals — a separate counter
    /// (`source.membership`) so they stay distinguishable from positive
    /// `source.calls` in metrics snapshots. Each probe *also* counts as a
    /// call, since it goes through [`SourceRegistry::call`].
    membership: Counter,
    rows_per_call: Histogram,
    /// Counter values at the last attach/reset; `stats()` subtracts this.
    baseline: CallStats,
    /// The membership counter's value at the last attach/reset (kept out
    /// of [`CallStats`], whose layout is public API).
    membership_baseline: u64,
    cache: Option<HashMap<CallKey, Vec<Tuple>>>,
    /// Lazily-built hash indexes keyed by (relation, indexed positions).
    /// `None` disables indexing (every selection scans).
    indexes: Option<HashMap<(Symbol, Vec<usize>), ColumnIndex>>,
}

impl<'a> SourceRegistry<'a> {
    /// A registry without call caching: every call hits the source.
    /// Sources answer input-slot selections through lazily-built hash
    /// indexes (build once per (relation, slot set), then O(1) lookups).
    pub fn new(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            db,
            schema,
            recorder: Recorder::disabled(),
            calls: Counter::detached(),
            tuples_returned: Counter::detached(),
            cache_hits: Counter::detached(),
            membership: Counter::detached(),
            rows_per_call: Histogram::detached(),
            baseline: CallStats::default(),
            membership_baseline: 0,
            cache: None,
            indexes: Some(HashMap::new()),
        }
    }

    /// A registry with call caching: repeated identical calls are answered
    /// locally (the "semijoin-style" optimization a mediator would apply).
    pub fn with_cache(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            cache: Some(HashMap::new()),
            ..SourceRegistry::new(db, schema)
        }
    }

    /// A registry whose sources answer every selection by scanning — the
    /// ablation baseline for the index experiment (E16).
    pub fn without_indexes(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            indexes: None,
            ..SourceRegistry::new(db, schema)
        }
    }

    /// Attaches this registry to `recorder`: call statistics register as
    /// the `source.*` counters and the `source.rows_per_call` histogram.
    /// The shared counters may already carry values from other components;
    /// the baseline is re-captured so `stats()` still reads zero here.
    pub fn recording(mut self, recorder: &Recorder) -> SourceRegistry<'a> {
        self.recorder = recorder.clone();
        self.calls = recorder.counter("source.calls");
        self.tuples_returned = recorder.counter("source.tuples_returned");
        self.cache_hits = recorder.counter("source.cache_hits");
        self.membership = recorder.counter("source.membership");
        self.rows_per_call = recorder.histogram("source.rows_per_call");
        self.baseline = self.raw_totals();
        self.membership_baseline = self.membership.get();
        self
    }

    /// The recorder this registry reports to (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The schema this registry enforces.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    fn raw_totals(&self) -> CallStats {
        CallStats {
            calls: self.calls.get(),
            tuples_returned: self.tuples_returned.get(),
            cache_hits: self.cache_hits.get(),
        }
    }

    /// Call statistics accumulated through *this* registry since
    /// construction / attach / the last [`SourceRegistry::reset_stats`] —
    /// a view over the shared recorder counters.
    pub fn stats(&self) -> CallStats {
        let raw = self.raw_totals();
        CallStats {
            calls: raw.calls - self.baseline.calls,
            tuples_returned: raw.tuples_returned - self.baseline.tuples_returned,
            cache_hits: raw.cache_hits - self.baseline.cache_hits,
        }
    }

    /// Membership probes ([`SourceRegistry::membership_test`]) issued
    /// through this registry since construction / attach / the last
    /// [`SourceRegistry::reset_stats`]. A view over the shared
    /// `source.membership` counter, like [`SourceRegistry::stats`].
    pub fn membership_probes(&self) -> u64 {
        self.membership.get() - self.membership_baseline
    }

    /// Resets the call statistics view (the cache, if any, is kept; the
    /// recorder's lifetime counters are monotone and keep their values).
    pub fn reset_stats(&mut self) {
        self.baseline = self.raw_totals();
        self.membership_baseline = self.membership.get();
    }

    /// Calls relation `name` through `pattern`, supplying `inputs[j] =
    /// Some(v)` for every input slot `j`. Returns the tuples matching the
    /// supplied inputs — the full rows, as a web service would return them;
    /// any additional client-side filtering (bound output slots, repeated
    /// variables) is the evaluator's job.
    ///
    /// Errors if the pattern is not declared for the relation or an input
    /// slot has no value. Values supplied at output slots are rejected:
    /// per the paper's footnote 4, a source cannot accept them — the caller
    /// must ignore the binding and filter after the call.
    pub fn call(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<Vec<Tuple>, EngineError> {
        let decl = self
            .schema
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        if !decl.patterns.contains(&pattern) {
            return Err(EngineError::PatternNotAvailable {
                relation: name.to_string(),
                requested: pattern,
            });
        }
        if inputs.len() != pattern.arity() {
            return Err(EngineError::ArityMismatch {
                expected: pattern.arity(),
                found: inputs.len(),
            });
        }
        for (j, input) in inputs.iter().enumerate() {
            match (pattern.is_input(j), input.is_some()) {
                (true, false) => {
                    return Err(EngineError::MissingInput {
                        relation: name.to_string(),
                        pattern,
                        position: j,
                    })
                }
                (false, true) => {
                    return Err(EngineError::NotExecutable {
                        literal: format!("{name}^{pattern}"),
                        reason: format!("value supplied at output slot {j}"),
                    })
                }
                _ => {}
            }
        }
        let key = (name, pattern, inputs.to_vec());
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&key) {
                self.cache_hits.incr();
                return Ok(hit.clone());
            }
        }
        // The relation may be declared but empty/absent in this instance.
        let rows: Vec<Tuple> = match self.db.relation(name) {
            Some(rel) => self.select_rows(name, rel, inputs),
            None => Vec::new(),
        };
        self.calls.incr();
        self.tuples_returned.add(rows.len() as u64);
        self.rows_per_call.record(rows.len() as u64);
        if let Some(cache) = &mut self.cache {
            cache.insert(key, rows.clone());
        }
        Ok(rows)
    }

    /// Answers an input-slot selection, via the hash index when enabled.
    fn select_rows(
        &mut self,
        name: Symbol,
        rel: &crate::relation::Relation,
        inputs: &[Option<Value>],
    ) -> Vec<Tuple> {
        let positions: Vec<usize> = (0..inputs.len()).filter(|&j| inputs[j].is_some()).collect();
        let Some(indexes) = &mut self.indexes else {
            return rel.select(inputs).cloned().collect();
        };
        if positions.is_empty() {
            return rel.iter().cloned().collect();
        }
        let index = indexes
            .entry((name, positions.clone()))
            .or_insert_with(|| {
                let mut map: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
                for row in rel.iter() {
                    let key: Vec<Value> = positions.iter().map(|&j| row[j]).collect();
                    map.entry(key).or_default().push(row.clone());
                }
                map
            });
        let key: Vec<Value> = positions
            .iter()
            .map(|&j| inputs[j].expect("position is Some"))
            .collect();
        index.get(&key).cloned().unwrap_or_default()
    }

    /// Tests whether the fully-ground tuple `values` is in relation `name`,
    /// using the most selective available pattern (all variables bound, so
    /// every pattern is usable). This is how negated literals are checked.
    pub fn membership_test(&mut self, name: Symbol, values: &[Value]) -> Result<bool, EngineError> {
        self.membership.incr();
        let decl = self
            .schema
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        let Some(pattern) = decl.usable_pattern(|_| true) else {
            return Err(EngineError::NotExecutable {
                literal: name.to_string(),
                reason: "relation has no access pattern at all".to_owned(),
            });
        };
        if values.len() != pattern.arity() {
            return Err(EngineError::ArityMismatch {
                expected: pattern.arity(),
                found: values.len(),
            });
        }
        let inputs: Vec<Option<Value>> = (0..pattern.arity())
            .map(|j| pattern.is_input(j).then(|| values[j]))
            .collect();
        let rows = self.call(name, pattern, &inputs)?;
        Ok(rows.iter().any(|row| row.as_slice() == values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::Schema;

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg"). L(1)."#,
        )
        .unwrap();
        let schema = Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn call_with_author_input() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let rows = reg
            .call(Symbol::intern("B"), p, &[None, Some(Value::str("tolkien")), None])
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(reg.stats().tuples_returned, 2);
    }

    #[test]
    fn missing_input_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let err = reg.call(Symbol::intern("B"), p, &[None, None, None]).unwrap_err();
        assert!(matches!(err, EngineError::MissingInput { position: 1, .. }));
    }

    #[test]
    fn undeclared_pattern_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("ooo").unwrap(); // B has no free scan
        let err = reg
            .call(Symbol::intern("B"), p, &[None, None, None])
            .unwrap_err();
        assert!(matches!(err, EngineError::PatternNotAvailable { .. }));
    }

    #[test]
    fn value_at_output_slot_is_rejected() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let err = reg
            .call(
                Symbol::intern("B"),
                p,
                &[Some(Value::int(1)), Some(Value::str("tolkien")), None],
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::NotExecutable { .. }));
    }

    #[test]
    fn membership_test_uses_best_pattern() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap());
        assert!(!reg.membership_test(Symbol::intern("L"), &[Value::int(2)]).unwrap());
        assert!(reg
            .membership_test(
                Symbol::intern("B"),
                &[Value::int(1), Value::str("tolkien"), Value::str("lotr")]
            )
            .unwrap());
    }

    #[test]
    fn cache_answers_repeated_calls() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::with_cache(&db, &schema);
        let p = AccessPattern::parse("ioo").unwrap();
        let args = [Some(Value::int(1)), None, None];
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        let s = reg.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn recording_registry_mirrors_stats_into_recorder() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        rec.counter("source.calls").add(10); // pre-existing traffic
        let mut reg = SourceRegistry::with_cache(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("oio").unwrap();
        let args = [None, Some(Value::str("tolkien")), None];
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        // The per-registry view starts at zero despite the shared counter.
        let s = reg.stats();
        assert_eq!((s.calls, s.tuples_returned, s.cache_hits), (1, 2, 1));
        let snap = rec.snapshot();
        assert_eq!(snap.counter("source.calls"), 11);
        assert_eq!(snap.counter("source.tuples_returned"), 2);
        assert_eq!(snap.counter("source.cache_hits"), 1);
        assert_eq!(snap.metrics.histograms["source.rows_per_call"].count, 1);
        // reset_stats zeroes the view, not the lifetime counters.
        reg.reset_stats();
        assert_eq!(reg.stats().calls, 0);
        assert_eq!(rec.snapshot().counter("source.calls"), 11);
    }

    #[test]
    fn membership_probes_are_counted_separately() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        let mut reg = SourceRegistry::new(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("o").unwrap();
        reg.call(Symbol::intern("L"), p, &[None]).unwrap();
        assert_eq!(reg.membership_probes(), 0);
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        reg.membership_test(Symbol::intern("L"), &[Value::int(2)]).unwrap();
        assert_eq!(reg.membership_probes(), 2);
        // Probes also count as wire calls (they go through `call`)…
        assert_eq!(reg.stats().calls, 3);
        // …but the dedicated counter keeps them distinguishable.
        assert_eq!(rec.snapshot().counter("source.membership"), 2);
        reg.reset_stats();
        assert_eq!(reg.membership_probes(), 0);
    }

    #[test]
    fn declared_but_absent_relation_is_empty() {
        let (db, _) = setup();
        let schema = Schema::from_patterns(&[("Z", "o")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("o").unwrap();
        let rows = reg.call(Symbol::intern("Z"), p, &[None]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("o").unwrap();
        assert!(matches!(
            reg.call(Symbol::intern("Nope"), p, &[None]),
            Err(EngineError::UnknownRelation(_))
        ));
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use lap_ir::Schema;

    fn big_db() -> (Database, Schema) {
        let mut db = Database::new();
        for i in 0..200i64 {
            db.insert("R", vec![Value::int(i % 20), Value::int(i)]).unwrap();
        }
        let schema = Schema::from_patterns(&[("R", "io"), ("R", "oo")]).unwrap();
        (db, schema)
    }

    #[test]
    fn indexed_and_scanned_selections_agree() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("io").unwrap();
        let mut indexed = SourceRegistry::new(&db, &schema);
        let mut scanned = SourceRegistry::without_indexes(&db, &schema);
        for k in 0..25i64 {
            let args = [Some(Value::int(k)), None];
            let a = indexed.call(Symbol::intern("R"), p, &args).unwrap();
            let b = scanned.call(Symbol::intern("R"), p, &args).unwrap();
            let a_set: std::collections::BTreeSet<_> = a.into_iter().collect();
            let b_set: std::collections::BTreeSet<_> = b.into_iter().collect();
            assert_eq!(a_set, b_set, "k={k}");
        }
        assert_eq!(indexed.stats().calls, scanned.stats().calls);
        assert_eq!(indexed.stats().tuples_returned, scanned.stats().tuples_returned);
    }

    #[test]
    fn free_scan_returns_everything_with_indexes_on() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("oo").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let rows = reg.call(Symbol::intern("R"), p, &[None, None]).unwrap();
        assert_eq!(rows.len(), 200);
    }

    #[test]
    fn index_is_reused_across_calls() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("io").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        for k in 0..20i64 {
            reg.call(Symbol::intern("R"), p, &[Some(Value::int(k)), None]).unwrap();
        }
        // One index for (R, [0]) serves all twenty calls.
        assert_eq!(reg.indexes.as_ref().unwrap().len(), 1);
    }
}
