//! Access-pattern-enforcing source adapters.
//!
//! A [`SourceRegistry`] stands in for the paper's collection of web-service
//! operations: the *only* way to read data through it is
//! [`SourceRegistry::call`], which requires a declared access pattern and a
//! value for every input slot — exactly the discipline of Definition 1.
//! Violations are hard errors, never silently-wrong answers, so any plan
//! that evaluates successfully through the registry is, constructively, an
//! executable plan.
//!
//! The registry no longer assumes an infallible in-memory database: the
//! transport sits behind the [`Source`] trait. [`InMemorySource`] is the
//! default (and preserves the original `Database`-backed behaviour,
//! including lazily-built hash indexes), while
//! [`crate::FaultInjectingSource`] wraps any source with deterministic,
//! seeded failures. Faulted fetches are retried under the registry's
//! [`RetryPolicy`]; when retries are exhausted the call surfaces as
//! [`EngineError::SourceUnavailable`], which the degraded executors in
//! [`crate::physical`] turn into a dropped disjunct instead of an aborted
//! run.

use crate::error::EngineError;
use crate::fault::{RetryPolicy, SourceFault, SourceReply};
use crate::instance::Database;
use crate::stats::CallStats;
use crate::value::{rows_to_json, value_to_json, Tuple, Value};
use lap_ir::{AccessPattern, Schema, Symbol};
use lap_obs::journal::kind as journal_kind;
use lap_obs::{Counter, Histogram, InstantPayload, Journal, Json, Recorder, WireOutcome};
use lap_prng::StdRng;
use std::collections::HashMap;

/// Formats an access pattern's `i`/`o` word into a stack buffer, avoiding
/// a heap allocation on the journal fast path.
fn pattern_word(pattern: AccessPattern, buf: &mut [u8; AccessPattern::MAX_ARITY]) -> &str {
    for (j, slot) in buf.iter_mut().enumerate().take(pattern.arity()) {
        *slot = if pattern.is_input(j) { b'i' } else { b'o' };
    }
    std::str::from_utf8(&buf[..pattern.arity()]).expect("pattern word is ascii")
}

/// Cache key for one source call: relation, pattern, supplied inputs.
type CallKey = (Symbol, AccessPattern, Vec<Option<Value>>);
/// One hash index: projection of the indexed columns → matching rows.
type ColumnIndex = HashMap<Vec<Value>, Vec<Tuple>>;

/// One remote source transport: answers a validated access-pattern call
/// with the matching rows, or fails with a [`SourceFault`].
///
/// The registry validates every request against the schema *before* it
/// reaches the transport, so implementations only answer well-formed
/// selections. Latency is virtual (milliseconds of simulated wall clock),
/// so fault/retry schedules are deterministic and tests never sleep.
pub trait Source {
    /// Answers one call: the rows of `name` matching the `Some` slots of
    /// `inputs` under `pattern`.
    fn fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault>;
}

impl<'a> Source for Box<dyn Source + 'a> {
    fn fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        (**self).fetch(name, pattern, inputs)
    }
}

/// The original in-memory transport: a [`Database`] behind access
/// patterns, answering input-slot selections through lazily-built hash
/// indexes (build once per (relation, slot set), then O(1) lookups).
/// Never faults; virtual latency is zero.
pub struct InMemorySource<'a> {
    db: &'a Database,
    /// Lazily-built hash indexes keyed by (relation, indexed positions).
    /// `None` disables indexing (every selection scans).
    indexes: Option<HashMap<(Symbol, Vec<usize>), ColumnIndex>>,
}

impl<'a> InMemorySource<'a> {
    /// An indexed in-memory source over `db`.
    pub fn new(db: &'a Database) -> InMemorySource<'a> {
        InMemorySource { db, indexes: Some(HashMap::new()) }
    }

    /// A scanning source: every selection scans the relation — the
    /// ablation baseline for the index experiment (E16).
    pub fn without_indexes(db: &'a Database) -> InMemorySource<'a> {
        InMemorySource { db, indexes: None }
    }

    /// Number of hash indexes built so far (0 when indexing is disabled).
    pub fn index_count(&self) -> usize {
        self.indexes.as_ref().map_or(0, HashMap::len)
    }

    /// Answers an input-slot selection, via the hash index when enabled.
    fn select_rows(&mut self, name: Symbol, inputs: &[Option<Value>]) -> Vec<Tuple> {
        // The relation may be declared but empty/absent in this instance.
        let Some(rel) = self.db.relation(name) else {
            return Vec::new();
        };
        let positions: Vec<usize> = (0..inputs.len()).filter(|&j| inputs[j].is_some()).collect();
        let Some(indexes) = &mut self.indexes else {
            return rel.select(inputs).cloned().collect();
        };
        if positions.is_empty() {
            return rel.iter().cloned().collect();
        }
        let index = indexes
            .entry((name, positions.clone()))
            .or_insert_with(|| {
                let mut map: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
                for row in rel.iter() {
                    let key: Vec<Value> = positions.iter().map(|&j| row[j]).collect();
                    map.entry(key).or_default().push(row.clone());
                }
                map
            });
        let key: Vec<Value> = positions
            .iter()
            .map(|&j| inputs[j].expect("position is Some"))
            .collect();
        index.get(&key).cloned().unwrap_or_default()
    }
}

impl Source for InMemorySource<'_> {
    fn fetch(
        &mut self,
        name: Symbol,
        _pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        Ok(SourceReply { rows: self.select_rows(name, inputs), latency_ms: 0 })
    }
}

/// Placeholder transport used only while swapping boxes during
/// [`SourceRegistry::with_fault_injection`]; never observable.
struct EmptySource;

impl Source for EmptySource {
    fn fetch(
        &mut self,
        _name: Symbol,
        _pattern: AccessPattern,
        _inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        Ok(SourceReply { rows: Vec::new(), latency_ms: 0 })
    }
}

/// Per-registry traffic attribution. Unlike the shared recorder counters,
/// these belong to exactly one registry, so two registries attached to the
/// same [`Recorder`] never see each other's calls in their `stats()` view.
#[derive(Clone, Copy, Debug, Default)]
struct LocalStats {
    calls: u64,
    tuples_returned: u64,
    cache_hits: u64,
    membership: u64,
    retries: u64,
    failures: u64,
}

/// The mediator's view of the sources: a transport ([`Source`]) hidden
/// behind access patterns, with call statistics, an optional call cache,
/// and a retry loop for faulted fetches.
///
/// Statistics are mirrored into `lap-obs` counters so a pipeline-wide
/// [`Recorder`] can aggregate them, but [`SourceRegistry::stats`] reads a
/// *per-registry* tally: only traffic issued through this registry since
/// construction / attach / [`SourceRegistry::reset_stats`] is reported,
/// even when several registries share one recorder.
pub struct SourceRegistry<'a> {
    source: Box<dyn Source + 'a>,
    schema: &'a Schema,
    recorder: Recorder,
    /// Positive source calls that hit the wire (cache misses only).
    calls: Counter,
    tuples_returned: Counter,
    cache_hits: Counter,
    /// Membership probes issued by negated literals that hit the wire — a
    /// counter *disjoint* from `source.calls`, so positive-call and
    /// membership traffic never double-count in metrics snapshots.
    membership: Counter,
    /// Re-attempts after a faulted fetch (attempt 2 and later).
    retries: Counter,
    /// Faults observed from the transport (before any retry succeeds).
    failures: Counter,
    rows_per_call: Histogram,
    /// This registry's own traffic; `stats()` subtracts `baseline`.
    local: LocalStats,
    /// Local values at the last attach/reset.
    baseline: LocalStats,
    retry: RetryPolicy,
    /// Jitter source for retry backoff; fixed seed keeps runs replayable.
    retry_rng: StdRng,
    /// Virtual milliseconds spent in transport latency + backoff since the
    /// last [`SourceRegistry::reset_clock`]; checked against the retry
    /// policy's per-query deadline budget.
    clock_ms: u64,
    /// Virtual milliseconds folded in by past [`SourceRegistry::reset_clock`]
    /// calls, so lifetime reporting survives per-phase deadline resets.
    retired_clock_ms: u64,
    cache: Option<HashMap<CallKey, Vec<Tuple>>>,
    /// Flight-recorder journal (attached via [`SourceRegistry::recording`]
    /// when the recorder carries one).
    journal: Option<Journal>,
    /// Lane stamped on journal events (0 = main; parallel union workers
    /// use their disjunct index so per-lane begin/end balance holds).
    lane: u64,
    /// Memoized journal interner ids per (relation, pattern). A plan
    /// touches a handful of distinct accesses, so a linear scan beats a
    /// hash map and keeps string hashing off the per-call fast path.
    journal_call_ids: Vec<(Symbol, AccessPattern, u32, u32)>,
    /// Memoized journal interner ids per relation (instant events).
    journal_rel_ids: Vec<(Symbol, u32)>,
}

impl<'a> SourceRegistry<'a> {
    /// A registry without call caching over an indexed in-memory source:
    /// every call hits the source.
    pub fn new(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry::with_source(Box::new(InMemorySource::new(db)), schema)
    }

    /// A registry with call caching: repeated identical calls are answered
    /// locally (the "semijoin-style" optimization a mediator would apply).
    pub fn with_cache(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            cache: Some(HashMap::new()),
            ..SourceRegistry::new(db, schema)
        }
    }

    /// A registry whose sources answer every selection by scanning — the
    /// ablation baseline for the index experiment (E16).
    pub fn without_indexes(db: &'a Database, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry::with_source(Box::new(InMemorySource::without_indexes(db)), schema)
    }

    /// A registry over an arbitrary transport. This is how fault-injecting
    /// or remote sources plug in; [`SourceRegistry::new`] is the in-memory
    /// special case.
    pub fn with_source(source: Box<dyn Source + 'a>, schema: &'a Schema) -> SourceRegistry<'a> {
        SourceRegistry {
            source,
            schema,
            recorder: Recorder::disabled(),
            calls: Counter::detached(),
            tuples_returned: Counter::detached(),
            cache_hits: Counter::detached(),
            membership: Counter::detached(),
            retries: Counter::detached(),
            failures: Counter::detached(),
            rows_per_call: Histogram::detached(),
            local: LocalStats::default(),
            baseline: LocalStats::default(),
            retry: RetryPolicy::default(),
            retry_rng: StdRng::seed_from_u64(0x5EED_BACC_0FF5),
            clock_ms: 0,
            retired_clock_ms: 0,
            cache: None,
            journal: None,
            lane: 0,
            journal_call_ids: Vec::new(),
            journal_rel_ids: Vec::new(),
        }
    }

    /// Wraps the current transport in a deterministic
    /// [`crate::FaultInjectingSource`] with configuration `cfg`.
    pub fn with_fault_injection(mut self, cfg: crate::FaultConfig) -> SourceRegistry<'a> {
        let inner = std::mem::replace(&mut self.source, Box::new(EmptySource));
        self.source = Box::new(crate::FaultInjectingSource::new(inner, cfg));
        self
    }

    /// Sets the retry policy for faulted fetches (default: fail on the
    /// first fault, no backoff — the legacy behaviour).
    pub fn with_retry(mut self, policy: RetryPolicy) -> SourceRegistry<'a> {
        self.retry = policy;
        self
    }

    /// Attaches this registry to `recorder`: call statistics register as
    /// the `source.*` counters and the `source.rows_per_call` histogram.
    /// The shared counters may already carry values from other components;
    /// `stats()` keeps reporting only this registry's own traffic.
    pub fn recording(mut self, recorder: &Recorder) -> SourceRegistry<'a> {
        self.recorder = recorder.clone();
        self.calls = recorder.counter("source.calls");
        self.tuples_returned = recorder.counter("source.tuples_returned");
        self.cache_hits = recorder.counter("source.cache_hits");
        self.membership = recorder.counter("source.membership");
        self.retries = recorder.counter("source.retries");
        self.failures = recorder.counter("source.failures");
        self.rows_per_call = recorder.histogram("source.rows_per_call");
        self.journal = recorder.journal().cloned();
        self
    }

    /// Sets the lane stamped on this registry's journal events. Parallel
    /// union workers use their disjunct index, keeping per-lane begin/end
    /// pairs balanced while sequence numbers stay globally monotone.
    pub fn with_journal_lane(mut self, lane: u64) -> SourceRegistry<'a> {
        self.lane = lane;
        self
    }

    /// True when a flight-recorder journal is attached.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Records one journal event stamped with this registry's lane and
    /// virtual clock. No-op without an attached journal.
    pub fn journal_emit(&self, kind: &str, data: Json) {
        if let Some(journal) = &self.journal {
            journal.emit(self.lane, self.virtual_elapsed_ms(), kind, data);
        }
    }

    /// Journal interner ids for a (relation, pattern) access, memoized so
    /// the steady-state call path never hashes a string. Only called with
    /// a journal attached.
    fn journal_call_ids(&mut self, name: Symbol, pattern: AccessPattern) -> (u32, u32) {
        if let Some(hit) = self
            .journal_call_ids
            .iter()
            .find(|(n, p, ..)| *n == name && *p == pattern)
        {
            return (hit.2, hit.3);
        }
        let journal = self.journal.as_ref().expect("memo used while journaling");
        let mut buf = [0u8; AccessPattern::MAX_ARITY];
        let rel = journal.intern(name.as_str());
        let pat = journal.intern(pattern_word(pattern, &mut buf));
        self.journal_call_ids.push((name, pattern, rel, pat));
        (rel, pat)
    }

    /// Journal interner id for a relation, memoized like
    /// [`SourceRegistry::journal_call_ids`].
    fn journal_rel_id(&mut self, name: Symbol) -> u32 {
        if let Some(hit) = self.journal_rel_ids.iter().find(|(n, _)| *n == name) {
            return hit.1;
        }
        let journal = self.journal.as_ref().expect("memo used while journaling");
        let rel = journal.intern(name.as_str());
        self.journal_rel_ids.push((name, rel));
        rel
    }

    /// Records one compact instant event for `name` on this registry's
    /// lane and virtual clock. No-op without an attached journal.
    fn journal_instant(&mut self, name: Symbol, payload: InstantPayload) {
        if self.journal.is_some() {
            let rel = self.journal_rel_id(name);
            let ts = self.virtual_elapsed_ms();
            if let Some(journal) = &self.journal {
                journal.record_instant_by_id(self.lane, ts, rel, payload);
            }
        }
    }

    /// The recorder this registry reports to (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The schema this registry enforces.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Call statistics accumulated through *this* registry since
    /// construction / the last [`SourceRegistry::reset_stats`]. Counts
    /// positive calls only — membership probes are reported disjointly by
    /// [`SourceRegistry::membership_probes`].
    pub fn stats(&self) -> CallStats {
        CallStats {
            calls: self.local.calls.saturating_sub(self.baseline.calls),
            tuples_returned: self
                .local
                .tuples_returned
                .saturating_sub(self.baseline.tuples_returned),
            cache_hits: self.local.cache_hits.saturating_sub(self.baseline.cache_hits),
        }
    }

    /// Membership probes ([`SourceRegistry::membership_test`]) that hit
    /// the wire through this registry since construction / the last
    /// [`SourceRegistry::reset_stats`]. Disjoint from `stats().calls`.
    pub fn membership_probes(&self) -> u64 {
        self.local.membership.saturating_sub(self.baseline.membership)
    }

    /// Retried fetch attempts issued through this registry since
    /// construction / the last [`SourceRegistry::reset_stats`].
    pub fn retries_observed(&self) -> u64 {
        self.local.retries.saturating_sub(self.baseline.retries)
    }

    /// Transport faults observed through this registry since construction
    /// / the last [`SourceRegistry::reset_stats`] (including ones a retry
    /// later recovered from).
    pub fn failures_observed(&self) -> u64 {
        self.local.failures.saturating_sub(self.baseline.failures)
    }

    /// Resets the call statistics view (the cache, if any, is kept; the
    /// recorder's lifetime counters are monotone and keep their values).
    pub fn reset_stats(&mut self) {
        self.baseline = self.local;
    }

    /// Lifetime virtual milliseconds spent on transport latency and retry
    /// backoff, across [`SourceRegistry::reset_clock`] resets (which only
    /// restart the *deadline* window, not this total).
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.retired_clock_ms + self.clock_ms
    }

    /// Restarts the deadline window of the virtual clock (the retry
    /// policy's per-query budget) — call between independent queries. The
    /// elapsed time is folded into [`SourceRegistry::virtual_elapsed_ms`].
    pub fn reset_clock(&mut self) {
        self.retired_clock_ms += self.clock_ms;
        self.clock_ms = 0;
    }

    /// One transport fetch under the retry policy: faults are retried with
    /// exponential backoff (virtual time) until an attempt succeeds, the
    /// attempt budget is spent, or the per-query deadline is exceeded.
    fn wire_fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, EngineError> {
        // One sampling decision covers every attempt of this call, so the
        // journal's begin/end pairs stay balanced under sampling.
        let journaled = self
            .journal
            .as_ref()
            .is_some_and(Journal::should_sample_call);
        let capture = journaled && self.journal.as_ref().is_some_and(Journal::capture_rows);
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > 1 {
                {
                    let _span = self
                        .recorder
                        .span_lazy(|| format!("source.retry {name} attempt {attempt}"));
                    self.retries.incr();
                    self.local.retries += 1;
                }
                if journaled {
                    self.journal_instant(name, InstantPayload::Retry { attempt: u64::from(attempt) });
                }
            }
            if capture {
                // Replay tier: the begin event carries the bound inputs,
                // so it goes through the general (allocating) emit path.
                let data = vec![
                    ("label".to_owned(), Json::Str(format!("{name}^{pattern}"))),
                    ("relation".to_owned(), Json::str(name.as_str())),
                    ("pattern".to_owned(), Json::Str(pattern.to_string())),
                    ("attempt".to_owned(), Json::num(u64::from(attempt))),
                    (
                        "inputs".to_owned(),
                        Json::Arr(
                            inputs
                                .iter()
                                .map(|slot| match slot {
                                    Some(v) => value_to_json(*v),
                                    None => Json::Null,
                                })
                                .collect(),
                        ),
                    ),
                ];
                self.journal_emit(journal_kind::SOURCE_CALL_BEGIN, Json::Obj(data));
            }
            let begin_ts = self.virtual_elapsed_ms();
            match self.source.fetch(name, pattern, inputs) {
                Ok(reply) => {
                    self.clock_ms += reply.latency_ms;
                    if capture {
                        let data = vec![
                            ("relation".to_owned(), Json::str(name.as_str())),
                            ("ok".to_owned(), Json::Bool(true)),
                            ("rows".to_owned(), Json::num(reply.rows.len() as u64)),
                            ("latency_ms".to_owned(), Json::num(reply.latency_ms)),
                            ("attempt".to_owned(), Json::num(u64::from(attempt))),
                            ("rows_data".to_owned(), rows_to_json(&reply.rows)),
                        ];
                        self.journal_emit(journal_kind::SOURCE_CALL_END, Json::Obj(data));
                    } else if journaled {
                        let (rel, pat) = self.journal_call_ids(name, pattern);
                        let end_ts = self.virtual_elapsed_ms();
                        if let Some(journal) = &self.journal {
                            journal.record_call_by_id(
                                self.lane,
                                begin_ts,
                                end_ts,
                                rel,
                                pat,
                                u64::from(attempt),
                                WireOutcome::Ok {
                                    rows: reply.rows.len() as u64,
                                    latency_ms: reply.latency_ms,
                                },
                            );
                        }
                    }
                    return Ok(reply);
                }
                Err(fault) => {
                    self.failures.incr();
                    self.local.failures += 1;
                    self.clock_ms += fault.latency_ms();
                    if journaled {
                        let (outcome, raw_latency) = match fault {
                            SourceFault::Unavailable { latency_ms } => {
                                (WireOutcome::Unavailable { latency_ms }, latency_ms)
                            }
                            SourceFault::Timeout { latency_ms, timeout_ms } => (
                                WireOutcome::Timeout { latency_ms, timeout_ms },
                                latency_ms,
                            ),
                        };
                        if capture {
                            let (fault_name, timeout_ms) = match fault {
                                SourceFault::Unavailable { .. } => ("unavailable", None),
                                SourceFault::Timeout { timeout_ms, .. } => {
                                    ("timeout", Some(timeout_ms))
                                }
                            };
                            let mut data = vec![
                                ("relation".to_owned(), Json::str(name.as_str())),
                                ("ok".to_owned(), Json::Bool(false)),
                                ("fault".to_owned(), Json::str(fault_name)),
                                ("latency_ms".to_owned(), Json::num(raw_latency)),
                                ("attempt".to_owned(), Json::num(u64::from(attempt))),
                            ];
                            if let Some(budget) = timeout_ms {
                                data.push(("timeout_ms".to_owned(), Json::num(budget)));
                            }
                            self.journal_emit(journal_kind::SOURCE_CALL_END, Json::Obj(data));
                        } else {
                            let (rel, pat) = self.journal_call_ids(name, pattern);
                            let end_ts = self.virtual_elapsed_ms();
                            if let Some(journal) = &self.journal {
                                journal.record_call_by_id(
                                    self.lane,
                                    begin_ts,
                                    end_ts,
                                    rel,
                                    pat,
                                    u64::from(attempt),
                                    outcome,
                                );
                            }
                        }
                        let payload = match fault {
                            SourceFault::Unavailable { .. } => InstantPayload::Fault {
                                latency_ms: raw_latency,
                                attempt: u64::from(attempt),
                            },
                            SourceFault::Timeout { .. } => InstantPayload::Timeout {
                                latency_ms: raw_latency,
                                attempt: u64::from(attempt),
                            },
                        };
                        self.journal_instant(name, payload);
                    }
                    let deadline_hit = self
                        .retry
                        .deadline_ms
                        .is_some_and(|d| self.clock_ms >= d);
                    if attempt >= max_attempts || deadline_hit {
                        let reason = if deadline_hit && attempt < max_attempts {
                            format!(
                                "{fault}; per-query deadline budget of {}ms exhausted",
                                self.retry.deadline_ms.unwrap_or(0)
                            )
                        } else {
                            fault.to_string()
                        };
                        return Err(EngineError::SourceUnavailable {
                            relation: name.to_string(),
                            attempts: attempt,
                            reason,
                        });
                    }
                    self.clock_ms += self.retry.backoff_ms(attempt, &mut self.retry_rng);
                }
            }
        }
    }

    /// Calls relation `name` through `pattern`, supplying `inputs[j] =
    /// Some(v)` for every input slot `j`. Returns the tuples matching the
    /// supplied inputs — the full rows, as a web service would return them;
    /// any additional client-side filtering (bound output slots, repeated
    /// variables) is the evaluator's job.
    ///
    /// Errors if the pattern is not declared for the relation or an input
    /// slot has no value. Values supplied at output slots are rejected:
    /// per the paper's footnote 4, a source cannot accept them — the caller
    /// must ignore the binding and filter after the call.
    pub fn call(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<Vec<Tuple>, EngineError> {
        self.validate(name, pattern, inputs)?;
        let key = (name, pattern, inputs.to_vec());
        if let Some(hit) = self.cache.as_ref().and_then(|c| c.get(&key)).cloned() {
            self.cache_hits.incr();
            self.local.cache_hits += 1;
            self.journal_instant(
                name,
                InstantPayload::CacheHit {
                    rows: hit.len() as u64,
                    membership: false,
                },
            );
            return Ok(hit);
        }
        let reply = self.wire_fetch(name, pattern, inputs)?;
        let rows = reply.rows;
        self.calls.incr();
        self.local.calls += 1;
        self.tuples_returned.add(rows.len() as u64);
        self.local.tuples_returned += rows.len() as u64;
        self.rows_per_call.record(rows.len() as u64);
        if let Some(cache) = &mut self.cache {
            cache.insert(key, rows.clone());
        }
        Ok(rows)
    }

    /// Schema validation shared by positive calls and membership probes.
    fn validate(
        &self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<(), EngineError> {
        let decl = self
            .schema
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        if !decl.patterns.contains(&pattern) {
            return Err(EngineError::PatternNotAvailable {
                relation: name.to_string(),
                requested: pattern,
            });
        }
        if inputs.len() != pattern.arity() {
            return Err(EngineError::ArityMismatch {
                expected: pattern.arity(),
                found: inputs.len(),
            });
        }
        for (j, input) in inputs.iter().enumerate() {
            match (pattern.is_input(j), input.is_some()) {
                (true, false) => {
                    return Err(EngineError::MissingInput {
                        relation: name.to_string(),
                        pattern,
                        position: j,
                    })
                }
                (false, true) => {
                    return Err(EngineError::NotExecutable {
                        literal: format!("{name}^{pattern}"),
                        reason: format!("value supplied at output slot {j}"),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Tests whether the fully-ground tuple `values` is in relation `name`,
    /// using the most selective available pattern (all variables bound, so
    /// every pattern is usable — the one with the most input slots
    /// transfers the fewest rows). This is how negated literals are
    /// checked.
    ///
    /// Probes are accounted under `source.membership`, *disjoint* from the
    /// positive `source.calls` counter; cached probes count as cache hits
    /// like any other call.
    pub fn membership_test(&mut self, name: Symbol, values: &[Value]) -> Result<bool, EngineError> {
        let decl = self
            .schema
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        let Some(pattern) = decl.usable_pattern(|_| true) else {
            return Err(EngineError::NotExecutable {
                literal: name.to_string(),
                reason: "relation has no access pattern at all".to_owned(),
            });
        };
        if values.len() != pattern.arity() {
            return Err(EngineError::ArityMismatch {
                expected: pattern.arity(),
                found: values.len(),
            });
        }
        let inputs: Vec<Option<Value>> = (0..pattern.arity())
            .map(|j| pattern.is_input(j).then(|| values[j]))
            .collect();
        let key = (name, pattern, inputs.clone());
        let cached = self
            .cache
            .as_ref()
            .and_then(|c| c.get(&key))
            .map(|hit| (hit.len() as u64, hit.iter().any(|row| row.as_slice() == values)));
        if let Some((rows, present)) = cached {
            self.cache_hits.incr();
            self.local.cache_hits += 1;
            self.journal_instant(name, InstantPayload::CacheHit { rows, membership: true });
            return Ok(present);
        }
        let reply = self.wire_fetch(name, pattern, &inputs)?;
        let rows = reply.rows;
        self.membership.incr();
        self.local.membership += 1;
        self.tuples_returned.add(rows.len() as u64);
        self.local.tuples_returned += rows.len() as u64;
        let present = rows.iter().any(|row| row.as_slice() == values);
        self.journal_instant(name, InstantPayload::Membership { present });
        if let Some(cache) = &mut self.cache {
            cache.insert(key, rows);
        }
        Ok(present)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::Schema;

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg"). L(1)."#,
        )
        .unwrap();
        let schema = Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn call_with_author_input() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let rows = reg
            .call(Symbol::intern("B"), p, &[None, Some(Value::str("tolkien")), None])
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(reg.stats().tuples_returned, 2);
    }

    #[test]
    fn missing_input_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let err = reg.call(Symbol::intern("B"), p, &[None, None, None]).unwrap_err();
        assert!(matches!(err, EngineError::MissingInput { position: 1, .. }));
    }

    #[test]
    fn undeclared_pattern_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("ooo").unwrap(); // B has no free scan
        let err = reg
            .call(Symbol::intern("B"), p, &[None, None, None])
            .unwrap_err();
        assert!(matches!(err, EngineError::PatternNotAvailable { .. }));
    }

    #[test]
    fn value_at_output_slot_is_rejected() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("oio").unwrap();
        let err = reg
            .call(
                Symbol::intern("B"),
                p,
                &[Some(Value::int(1)), Some(Value::str("tolkien")), None],
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::NotExecutable { .. }));
    }

    #[test]
    fn membership_test_uses_best_pattern() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap());
        assert!(!reg.membership_test(Symbol::intern("L"), &[Value::int(2)]).unwrap());
        assert!(reg
            .membership_test(
                Symbol::intern("B"),
                &[Value::int(1), Value::str("tolkien"), Value::str("lotr")]
            )
            .unwrap());
    }

    /// Satellite pin: with both a free scan and a selective pattern
    /// declared, membership probes must use the pattern with the most
    /// input slots — transferring at most the one matching row instead of
    /// the whole relation.
    #[test]
    fn membership_prefers_most_selective_pattern() {
        let mut db = Database::new();
        for i in 0..50i64 {
            db.insert("R", vec![Value::int(i), Value::int(i * 2), Value::int(i * 3)])
                .unwrap();
        }
        let schema = Schema::from_patterns(&[("R", "ooo"), ("R", "iio")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(reg
            .membership_test(Symbol::intern("R"), &[Value::int(7), Value::int(14), Value::int(21)])
            .unwrap());
        // R^iio pins columns 0 and 1: exactly one row matches (7, 14, _).
        // A free scan via R^ooo would have transferred all 50 rows.
        assert_eq!(reg.stats().tuples_returned, 1, "probe must not free-scan R");
        assert_eq!(reg.membership_probes(), 1);
    }

    #[test]
    fn cache_answers_repeated_calls() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::with_cache(&db, &schema);
        let p = AccessPattern::parse("ioo").unwrap();
        let args = [Some(Value::int(1)), None, None];
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        let s = reg.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn recording_registry_mirrors_stats_into_recorder() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        rec.counter("source.calls").add(10); // pre-existing traffic
        let mut reg = SourceRegistry::with_cache(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("oio").unwrap();
        let args = [None, Some(Value::str("tolkien")), None];
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        reg.call(Symbol::intern("B"), p, &args).unwrap();
        // The per-registry view starts at zero despite the shared counter.
        let s = reg.stats();
        assert_eq!((s.calls, s.tuples_returned, s.cache_hits), (1, 2, 1));
        let snap = rec.snapshot();
        assert_eq!(snap.counter("source.calls"), 11);
        assert_eq!(snap.counter("source.tuples_returned"), 2);
        assert_eq!(snap.counter("source.cache_hits"), 1);
        assert_eq!(snap.metrics.histograms["source.rows_per_call"].count, 1);
        // reset_stats zeroes the view, not the lifetime counters.
        reg.reset_stats();
        assert_eq!(reg.stats().calls, 0);
        assert_eq!(rec.snapshot().counter("source.calls"), 11);
    }

    /// Satellite regression: two registries attached to one recorder must
    /// each attribute only their own traffic, while the shared counters
    /// aggregate both.
    #[test]
    fn two_registries_on_one_recorder_attribute_their_own_calls() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        let mut a = SourceRegistry::new(&db, &schema).recording(&rec);
        let mut b = SourceRegistry::new(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("oio").unwrap();
        let args = [None, Some(Value::str("tolkien")), None];
        a.call(Symbol::intern("B"), p, &args).unwrap();
        a.call(Symbol::intern("B"), p, &args).unwrap();
        b.call(Symbol::intern("B"), p, &args).unwrap();
        assert_eq!(a.stats().calls, 2, "a must not see b's traffic");
        assert_eq!(b.stats().calls, 1, "b must not see a's traffic");
        assert_eq!(a.stats().tuples_returned, 4);
        assert_eq!(b.stats().tuples_returned, 2);
        // The shared lifetime counters see the union.
        assert_eq!(rec.snapshot().counter("source.calls"), 3);
        // Interleaved resets stay per-registry and never underflow.
        a.reset_stats();
        b.call(Symbol::intern("B"), p, &args).unwrap();
        assert_eq!(a.stats().calls, 0);
        assert_eq!(b.stats().calls, 2);
    }

    #[test]
    fn membership_probes_are_counted_separately() {
        let (db, schema) = setup();
        let rec = Recorder::new();
        let mut reg = SourceRegistry::new(&db, &schema).recording(&rec);
        let p = AccessPattern::parse("o").unwrap();
        reg.call(Symbol::intern("L"), p, &[None]).unwrap();
        assert_eq!(reg.membership_probes(), 0);
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        reg.membership_test(Symbol::intern("L"), &[Value::int(2)]).unwrap();
        assert_eq!(reg.membership_probes(), 2);
        // Probes are *disjoint* from positive calls: the one scan above is
        // the only entry in `source.calls`.
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(rec.snapshot().counter("source.calls"), 1);
        assert_eq!(rec.snapshot().counter("source.membership"), 2);
        reg.reset_stats();
        assert_eq!(reg.membership_probes(), 0);
    }

    #[test]
    fn cached_membership_probes_count_as_cache_hits() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::with_cache(&db, &schema);
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        reg.membership_test(Symbol::intern("L"), &[Value::int(1)]).unwrap();
        assert_eq!(reg.membership_probes(), 1, "second probe is a cache hit");
        assert_eq!(reg.stats().cache_hits, 1);
        assert_eq!(reg.stats().calls, 0);
    }

    #[test]
    fn declared_but_absent_relation_is_empty() {
        let (db, _) = setup();
        let schema = Schema::from_patterns(&[("Z", "o")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("o").unwrap();
        let rows = reg.call(Symbol::intern("Z"), p, &[None]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p = AccessPattern::parse("o").unwrap();
        assert!(matches!(
            reg.call(Symbol::intern("Nope"), p, &[None]),
            Err(EngineError::UnknownRelation(_))
        ));
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use lap_ir::Schema;

    fn big_db() -> (Database, Schema) {
        let mut db = Database::new();
        for i in 0..200i64 {
            db.insert("R", vec![Value::int(i % 20), Value::int(i)]).unwrap();
        }
        let schema = Schema::from_patterns(&[("R", "io"), ("R", "oo")]).unwrap();
        (db, schema)
    }

    #[test]
    fn indexed_and_scanned_selections_agree() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("io").unwrap();
        let mut indexed = SourceRegistry::new(&db, &schema);
        let mut scanned = SourceRegistry::without_indexes(&db, &schema);
        for k in 0..25i64 {
            let args = [Some(Value::int(k)), None];
            let a = indexed.call(Symbol::intern("R"), p, &args).unwrap();
            let b = scanned.call(Symbol::intern("R"), p, &args).unwrap();
            let a_set: std::collections::BTreeSet<_> = a.into_iter().collect();
            let b_set: std::collections::BTreeSet<_> = b.into_iter().collect();
            assert_eq!(a_set, b_set, "k={k}");
        }
        assert_eq!(indexed.stats().calls, scanned.stats().calls);
        assert_eq!(indexed.stats().tuples_returned, scanned.stats().tuples_returned);
    }

    #[test]
    fn free_scan_returns_everything_with_indexes_on() {
        let (db, schema) = big_db();
        let p = AccessPattern::parse("oo").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let rows = reg.call(Symbol::intern("R"), p, &[None, None]).unwrap();
        assert_eq!(rows.len(), 200);
    }

    #[test]
    fn index_is_reused_across_calls() {
        let (db, _) = big_db();
        let p = AccessPattern::parse("io").unwrap();
        let mut src = InMemorySource::new(&db);
        for k in 0..20i64 {
            src.fetch(Symbol::intern("R"), p, &[Some(Value::int(k)), None]).unwrap();
        }
        // One index for (R, [0]) serves all twenty calls.
        assert_eq!(src.index_count(), 1);
    }
}
