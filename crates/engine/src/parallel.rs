//! Parallel evaluation of union plans.
//!
//! The paper's execution model for an executable UCQ¬ is "execute each
//! rule separately (possibly in parallel) from left to right" (Section 3).
//! [`eval_ordered_union_parallel`] takes the "possibly in parallel"
//! seriously: each disjunct runs on its own thread with its own
//! [`SourceRegistry`] (sources are concurrent services; the registry is a
//! per-connection client), and the per-thread answers and call statistics
//! are merged at the end.

use crate::error::EngineError;
use crate::instance::Database;
use crate::physical::{execute_physical_union_parallel_obs, lower_union, ExecConfig};
use crate::stats::CallStats;
use crate::value::Tuple;
use lap_ir::{ConjunctiveQuery, Schema, Var};
use std::collections::BTreeSet;

/// Evaluates the disjunct plans concurrently (one thread per disjunct) and
/// returns the set union of answers plus the merged source statistics.
///
/// Semantically identical to [`crate::eval_ordered_union`]; the statistics
/// count the same calls (each thread talks to the sources independently,
/// as parallel mediator workers would, and dedups batches exactly as the
/// sequential executor does).
pub fn eval_ordered_union_parallel(
    parts: &[(ConjunctiveQuery, Vec<Var>)],
    db: &Database,
    schema: &Schema,
) -> Result<(BTreeSet<Tuple>, CallStats), EngineError> {
    eval_ordered_union_parallel_obs(parts, db, schema, &lap_obs::Recorder::disabled())
}

/// [`eval_ordered_union_parallel`] under `recorder`: the fan-out runs in an
/// `eval.parallel` span and every worker's registry reports its counters to
/// the shared recorder (counters are thread-safe; workers do not open their
/// own spans — span nesting is a per-thread notion).
///
/// A thin compatibility wrapper: the parts are lowered once and executed
/// through [`execute_physical_union_parallel_obs`].
pub fn eval_ordered_union_parallel_obs(
    parts: &[(ConjunctiveQuery, Vec<Var>)],
    db: &Database,
    schema: &Schema,
    recorder: &lap_obs::Recorder,
) -> Result<(BTreeSet<Tuple>, CallStats), EngineError> {
    let union = lower_union(parts, schema);
    execute_physical_union_parallel_obs(&union, db, schema, recorder, ExecConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_ordered_union;
    use crate::source::SourceRegistry;
    use lap_ir::parse_cq;

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"
            B(1, "a", "t1"). B(2, "b", "t2"). B(3, "c", "t3").
            C(1, "a"). C(2, "b").
            L(1).
            "#,
        )
        .unwrap();
        let schema =
            Schema::from_patterns(&[("B", "ioo"), ("C", "oo"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn matches_sequential_evaluation() {
        let (db, schema) = setup();
        let parts = vec![
            (parse_cq("Q(i, t) :- C(i, a), B(i, a, t), not L(i).").unwrap(), vec![]),
            (parse_cq("Q(i, t) :- L(i), B(i, a, t).").unwrap(), vec![]),
        ];
        let (par_rows, par_stats) = eval_ordered_union_parallel(&parts, &db, &schema).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let seq_rows = eval_ordered_union(&parts, &mut reg).unwrap();
        assert_eq!(par_rows, seq_rows);
        assert_eq!(par_stats.calls, reg.stats().calls);
        assert_eq!(par_stats.tuples_returned, reg.stats().tuples_returned);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let (db, schema) = setup();
        let parts = vec![
            (parse_cq("Q(i, t) :- L(i), B(i, a, t).").unwrap(), vec![]),
            // Not executable: B first with nothing bound.
            (parse_cq("Q(i, t) :- B(i, a, t), L(i).").unwrap(), vec![]),
        ];
        assert!(eval_ordered_union_parallel(&parts, &db, &schema).is_err());
    }

    #[test]
    fn empty_union_is_empty() {
        let (db, schema) = setup();
        let (rows, stats) = eval_ordered_union_parallel(&[], &db, &schema).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.calls, 0);
    }

    #[test]
    fn many_disjuncts_scale() {
        let (db, schema) = setup();
        let parts: Vec<_> = (0..16)
            .map(|_| (parse_cq("Q(i, a) :- C(i, a).").unwrap(), vec![]))
            .collect();
        let (rows, stats) = eval_ordered_union_parallel(&parts, &db, &schema).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.calls, 16);
    }
}
