//! Runtime values and tuples.

use lap_ir::{Constant, Symbol};
use std::cmp::Ordering;
use std::fmt;

/// A runtime value stored in a relation or returned by a source.
///
/// `Null` is the paper's special overestimate marker (Section 4.1): it
/// stands for "one or more unknown values may exist here". It compares
/// equal only to itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// The unknown-value marker used in overestimate answers.
    Null,
    /// Integer value.
    Int(i64),
    /// String value (interned).
    Str(Symbol),
}

impl Value {
    /// String value from a `&str`.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::intern(s))
    }

    /// Integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// True iff this is the null marker.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        match c {
            Constant::Int(i) => Value::Int(i),
            Constant::Str(s) => Value::Str(s),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Deterministic total order independent of interner state:
    /// `Null < Int(_) < Str(_)`, strings compared by content.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.as_str().cmp(b.as_str()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{}", s.as_str()),
        }
    }
}

/// A tuple of values — one row of a relation or one answer.
pub type Tuple = Vec<Value>;

/// Renders a tuple as `(v1, v2, …)`.
pub fn display_tuple(t: &[Value]) -> String {
    let items: Vec<String> = t.iter().map(|v| v.to_string()).collect();
    format!("({})", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_only_itself() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::str(""));
    }

    #[test]
    fn ordering_is_by_content_for_strings() {
        // Intern in reverse lexicographic order to catch index-based cmp.
        let b = Value::str("zzz_order");
        let a = Value::str("aaa_order");
        assert!(a < b);
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::str("a"), Value::Null];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn from_constant() {
        assert_eq!(Value::from(Constant::int(3)), Value::Int(3));
        assert_eq!(Value::from(Constant::str("x")), Value::str("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(display_tuple(&[Value::Int(1), Value::Null]), "(1, null)");
    }
}
