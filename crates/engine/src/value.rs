//! Runtime values and tuples.

use lap_ir::{Constant, Symbol};
use std::cmp::Ordering;
use std::fmt;

/// A runtime value stored in a relation or returned by a source.
///
/// `Null` is the paper's special overestimate marker (Section 4.1): it
/// stands for "one or more unknown values may exist here". It compares
/// equal only to itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// The unknown-value marker used in overestimate answers.
    Null,
    /// Integer value.
    Int(i64),
    /// String value (interned).
    Str(Symbol),
}

impl Value {
    /// String value from a `&str`.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::intern(s))
    }

    /// Integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// True iff this is the null marker.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        match c {
            Constant::Int(i) => Value::Int(i),
            Constant::Str(s) => Value::Str(s),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Deterministic total order independent of interner state:
    /// `Null < Int(_) < Str(_)`, strings compared by content.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.as_str().cmp(b.as_str()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{}", s.as_str()),
        }
    }
}

/// A tuple of values — one row of a relation or one answer.
pub type Tuple = Vec<Value>;

/// Renders a tuple as `(v1, v2, …)`.
pub fn display_tuple(t: &[Value]) -> String {
    let items: Vec<String> = t.iter().map(|v| v.to_string()).collect();
    format!("({})", items.join(", "))
}

/// JSON encoding of one value for the flight-recorder journal. Integers
/// round-trip exactly while `|i| < 2^53` (the journal's `f64` number
/// space); engine values in this reproduction are far below that.
pub fn value_to_json(v: Value) -> lap_obs::Json {
    match v {
        Value::Null => lap_obs::Json::Null,
        Value::Int(i) => lap_obs::Json::Num(i as f64),
        Value::Str(s) => lap_obs::Json::Str(s.as_str().to_owned()),
    }
}

/// Inverse of [`value_to_json`].
pub fn value_from_json(j: &lap_obs::Json) -> Result<Value, String> {
    match j {
        lap_obs::Json::Null => Ok(Value::Null),
        lap_obs::Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => {
            Ok(Value::Int(*n as i64))
        }
        lap_obs::Json::Num(n) => Err(format!("non-integer journal value {n}")),
        lap_obs::Json::Str(s) => Ok(Value::str(s)),
        other => Err(format!("unsupported journal value {other:?}")),
    }
}

/// JSON encoding of a row set for the flight-recorder journal.
pub fn rows_to_json(rows: &[Tuple]) -> lap_obs::Json {
    lap_obs::Json::Arr(
        rows.iter()
            .map(|row| lap_obs::Json::Arr(row.iter().map(|&v| value_to_json(v)).collect()))
            .collect(),
    )
}

/// Inverse of [`rows_to_json`].
pub fn rows_from_json(j: &lap_obs::Json) -> Result<Vec<Tuple>, String> {
    j.as_arr()
        .ok_or("journal rows are not an array")?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| "journal row is not an array".to_owned())?
                .iter()
                .map(value_from_json)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_only_itself() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::str(""));
    }

    #[test]
    fn ordering_is_by_content_for_strings() {
        // Intern in reverse lexicographic order to catch index-based cmp.
        let b = Value::str("zzz_order");
        let a = Value::str("aaa_order");
        assert!(a < b);
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::str("a"), Value::Null];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn from_constant() {
        assert_eq!(Value::from(Constant::int(3)), Value::Int(3));
        assert_eq!(Value::from(Constant::str("x")), Value::str("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(display_tuple(&[Value::Int(1), Value::Null]), "(1, null)");
    }

    #[test]
    fn json_round_trip() {
        let rows = vec![
            vec![Value::Int(-42), Value::str("x \"y\""), Value::Null],
            vec![Value::Int(i64::from(i32::MAX))],
        ];
        let doc = rows_to_json(&rows);
        assert_eq!(rows_from_json(&doc).unwrap(), rows);
        // Survives the actual JSON writer/parser too.
        let reparsed = lap_obs::json::parse(&doc.to_compact()).unwrap();
        assert_eq!(rows_from_json(&reparsed).unwrap(), rows);
        assert!(value_from_json(&lap_obs::Json::Num(0.5)).is_err());
        assert!(value_from_json(&lap_obs::Json::Bool(true)).is_err());
    }
}
