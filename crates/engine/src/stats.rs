//! Source-call statistics.

use std::fmt;

/// Counters for interaction with (simulated) limited-access sources.
///
/// These are the cost measures of the runtime experiments: how many remote
/// calls a plan makes and how many tuples cross the (simulated) wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallStats {
    /// Number of source calls issued (cache misses only, when caching).
    pub calls: u64,
    /// Number of tuples returned by sources (matching the input slots —
    /// i.e. what a web service would actually transfer).
    pub tuples_returned: u64,
    /// Number of calls answered from the registry's call cache.
    pub cache_hits: u64,
}

impl CallStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: CallStats) {
        self.calls += other.calls;
        self.tuples_returned += other.tuples_returned;
        self.cache_hits += other.cache_hits;
    }
}

impl fmt::Display for CallStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} calls, {} tuples transferred, {} cache hits",
            self.calls, self.tuples_returned, self.cache_hits
        )
    }
}
