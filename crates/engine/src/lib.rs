//! In-memory relational engine with access-pattern-enforcing sources.
//!
//! This crate is the *runtime substrate* of the reproduction: it plays the
//! role of the distributed web-service sources that the paper's mediator
//! (the BIRN system, \[GLM03\]) talks to. The pieces:
//!
//! * [`Value`], [`Tuple`], [`Relation`], [`Database`] — a small set-semantics
//!   store with deterministic iteration.
//! * [`SourceRegistry`] — the only read path: calls must name a declared
//!   access pattern and supply every input slot (Definition 1), and the
//!   registry counts calls and transferred tuples.
//! * [`physical`] — the physical plan IR ([`PhysicalPlan`], [`PhysOp`]),
//!   the lowering pass that picks access patterns at plan time, and the
//!   batched pull-based executor with in-batch source-call dedup.
//! * [`eval_ordered_cq`] / [`eval_ordered_union`] — left-to-right execution
//!   of executable plans, with negation-as-filter and `null` head values
//!   for overestimate plans; thin wrappers over the physical executor
//!   (the tuple-at-a-time reference survives as [`eval_ordered_cq_tuple`]).
//! * [`eval_oracle`] — the unrestricted `ANSWER(Q, D)` ground truth.
//! * [`enumerate_domain`] — `dom(x)` views (Example 8) under a call budget.
//!
//! ```
//! use lap_engine::{Database, SourceRegistry, eval_ordered_cq};
//! use lap_ir::{parse_cq, Schema};
//!
//! let db = Database::from_facts(r#"C(1, "adams"). B(1, "adams", "hhgttg")."#).unwrap();
//! let schema = Schema::from_patterns(&[("B", "ioo"), ("C", "oo")]).unwrap();
//! let mut sources = SourceRegistry::new(&db, &schema);
//! let plan = parse_cq("Q(t) :- C(i, a), B(i, a, t).").unwrap();
//! let answers = eval_ordered_cq(&plan, &[], &mut sources).unwrap();
//! assert_eq!(answers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod error;
mod eval;
mod fault;
mod instance;
mod oracle;
mod parallel;
pub mod physical;
mod relation;
mod replay;
pub mod sched;
mod source;
mod stats;
mod trace;
mod value;

pub use domain::{enumerate_domain, DomainResult};
pub use error::EngineError;
pub use eval::{eval_ordered_cq, eval_ordered_cq_tuple, eval_ordered_union, eval_ordered_union_tuple};
pub use fault::{
    FaultConfig, FaultInjectingSource, ResilienceConfig, RetryPolicy, SourceFault, SourceReply,
};
pub use physical::{
    execute_physical_cq, execute_physical_cq_profiled, execute_physical_union,
    execute_physical_union_degraded, execute_physical_union_parallel,
    execute_physical_union_parallel_degraded, execute_physical_union_parallel_obs,
    execute_physical_union_profiled, lower_cq, lower_union, AccessOp, AccessProblem, ArgSource,
    Code, ColumnBatch, Dictionary, DisjunctDegradation, ExecConfig, NegOp, OpCost, OpProfile,
    PhysOp, PhysicalPlan, PhysicalUnion, PlanProfile, ProjCol, ProjectOp, UnionProfile,
    MAX_BATCH_WIDTH,
};
pub use instance::Database;
pub use oracle::{eval_oracle, eval_oracle_single};
pub use parallel::{eval_ordered_union_parallel, eval_ordered_union_parallel_obs};
pub use relation::Relation;
pub use replay::{recorded_calls, RecordedCall, ReplaySource};
pub use source::{InMemorySource, PlannedFetch, Source, SourceRegistry, MAX_IO_WORKERS};
pub use stats::CallStats;
pub use trace::{
    eval_ordered_cq_traced, eval_ordered_union_traced, CqTrace, LiteralTrace, TraceTotals,
    UnionTrace,
};
pub use value::{
    display_tuple, rows_from_json, rows_to_json, value_from_json, value_to_json, Tuple, Value,
};
