//! In-memory relations.

use crate::error::EngineError;
use crate::value::{Tuple, Value};
use std::collections::BTreeSet;

/// A set-semantics relation: a fixed arity and a sorted set of tuples.
///
/// `BTreeSet` keeps iteration deterministic (important for reproducible
/// experiment output) and makes membership tests logarithmic; relations in
/// this workload are small-to-medium simulated web-service extents, not
/// billion-row tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple. Errors on arity mismatch; inserting a duplicate is
    /// a no-op (set semantics).
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), EngineError> {
        if tuple.len() != self.arity {
            return Err(EngineError::ArityMismatch {
                expected: self.arity,
                found: tuple.len(),
            });
        }
        self.tuples.insert(tuple);
        Ok(())
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        // BTreeSet<Vec<Value>> lookups borrow as [Value].
        self.tuples.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples matching the given partial binding: `selection[j]` is
    /// `Some(v)` to require position `j` to equal `v`.
    pub fn select<'a>(
        &'a self,
        selection: &'a [Option<Value>],
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        debug_assert_eq!(selection.len(), self.arity);
        self.tuples.iter().filter(move |t| {
            t.iter()
                .zip(selection.iter())
                .all(|(v, s)| s.is_none_or(|sv| sv == *v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut r = Relation::new(2);
        r.insert(vec![Value::int(1), Value::str("a")]).unwrap();
        r.insert(vec![Value::int(1), Value::str("b")]).unwrap();
        r.insert(vec![Value::int(2), Value::str("a")]).unwrap();
        r
    }

    #[test]
    fn set_semantics() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        r.insert(vec![Value::int(1), Value::str("a")]).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn arity_enforced() {
        let mut r = Relation::new(2);
        assert!(matches!(
            r.insert(vec![Value::int(1)]),
            Err(EngineError::ArityMismatch { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn selection() {
        let r = rel();
        let sel = [Some(Value::int(1)), None];
        assert_eq!(r.select(&sel).count(), 2);
        let sel = [None, Some(Value::str("a"))];
        assert_eq!(r.select(&sel).count(), 2);
        let sel = [Some(Value::int(2)), Some(Value::str("a"))];
        assert_eq!(r.select(&sel).count(), 1);
        let sel = [Some(Value::int(9)), None];
        assert_eq!(r.select(&sel).count(), 0);
    }

    #[test]
    fn contains() {
        let r = rel();
        assert!(r.contains(&[Value::int(1), Value::str("b")]));
        assert!(!r.contains(&[Value::int(3), Value::str("b")]));
    }

    #[test]
    fn iteration_is_sorted() {
        let r = rel();
        let rows: Vec<_> = r.iter().cloned().collect();
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
    }
}
