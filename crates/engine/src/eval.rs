//! Left-to-right evaluation of executable CQ¬ plans over limited-access
//! sources.
//!
//! An executable query *is* a plan (paper, Section 3): "execute each rule
//! separately (possibly in parallel) from left to right". This module
//! implements that execution model as a nested-loop join driven entirely
//! through [`SourceRegistry::call`], so access-pattern violations surface
//! as errors rather than as silently complete scans:
//!
//! * a **positive** literal picks the most selective usable access pattern
//!   given the variables bound so far, calls the source, filters
//!   client-side on bound output slots and repeated variables, and binds
//!   its output variables;
//! * a **negative** literal requires all its variables bound and acts as a
//!   membership filter (it "can only filter out answers, but cannot
//!   produce any new variable bindings" — Example 1);
//! * head variables listed in `null_vars` emit [`Value::Null`] — the
//!   overestimate plans of PLAN\* use this for `x = null` equations.

use crate::error::EngineError;
use crate::physical::{execute_physical_cq, execute_physical_union, lower_cq, lower_union, ExecConfig};
use crate::source::SourceRegistry;
use crate::value::{Tuple, Value};
use lap_ir::{ConjunctiveQuery, Literal, Term, Var};
use std::collections::{BTreeSet, HashMap};

/// Evaluates an *ordered* CQ¬ body left-to-right against the sources and
/// projects the head. `null_vars` lists head variables to be emitted as
/// `null` (unbound in the body — only overestimate plans use this).
///
/// Errors if the order is not executable under the registry's schema.
///
/// This is a thin compatibility wrapper: the body is lowered to a
/// [`crate::physical`] operator pipeline and run through the batched
/// executor. The tuple-at-a-time reference implementation survives as
/// [`eval_ordered_cq_tuple`].
pub fn eval_ordered_cq(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let plan = lower_cq(cq, null_vars, reg.schema());
    execute_physical_cq(&plan, reg, ExecConfig::default())
}

/// Evaluates a union of ordered CQ¬ plans (each with its own null list) and
/// returns the set union of the answers. Each disjunct runs under its own
/// span when the registry's recorder has tracing enabled.
///
/// Like [`eval_ordered_cq`], a compatibility wrapper over the physical
/// plan IR; [`eval_ordered_union_tuple`] is the legacy reference path.
pub fn eval_ordered_union(
    parts: &[(ConjunctiveQuery, Vec<Var>)],
    reg: &mut SourceRegistry<'_>,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let union = lower_union(parts, reg.schema());
    execute_physical_union(&union, reg, ExecConfig::default())
}

/// The retired tuple-at-a-time evaluator, kept as the executable
/// specification the batched executor is differentially tested against
/// (`tests/executor_differential.rs`). Production call paths go through
/// [`eval_ordered_cq`] instead.
pub fn eval_ordered_cq_tuple(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let mut out = BTreeSet::new();
    let mut env: HashMap<Var, Value> = HashMap::new();
    eval_rec(cq, null_vars, reg, 0, &mut env, &mut out)?;
    Ok(out)
}

/// Union evaluation through [`eval_ordered_cq_tuple`] — the legacy
/// reference path (same spans as the physical executor).
pub fn eval_ordered_union_tuple(
    parts: &[(ConjunctiveQuery, Vec<Var>)],
    reg: &mut SourceRegistry<'_>,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let recorder = reg.recorder().clone();
    let mut out = BTreeSet::new();
    for (i, (cq, null_vars)) in parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", cq.head));
        out.extend(eval_ordered_cq_tuple(cq, null_vars, reg)?);
    }
    Ok(out)
}

fn term_value(term: Term, env: &HashMap<Var, Value>) -> Option<Value> {
    match term {
        Term::Const(c) => Some(Value::from(c)),
        Term::Var(v) => env.get(&v).copied(),
    }
}

fn eval_rec(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
    depth: usize,
    env: &mut HashMap<Var, Value>,
    out: &mut BTreeSet<Tuple>,
) -> Result<(), EngineError> {
    let Some(lit) = cq.body.get(depth) else {
        out.insert(project_head(cq, null_vars, env)?);
        return Ok(());
    };
    if lit.positive {
        eval_positive(cq, null_vars, reg, depth, lit, env, out)
    } else {
        eval_negative(cq, null_vars, reg, depth, lit, env, out)
    }
}

fn eval_positive(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
    depth: usize,
    lit: &Literal,
    env: &mut HashMap<Var, Value>,
    out: &mut BTreeSet<Tuple>,
) -> Result<(), EngineError> {
    let atom = &lit.atom;
    let name = atom.predicate.name;
    let decl = reg
        .schema()
        .relation(name)
        .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
    let bound: Vec<Option<Value>> = atom.args.iter().map(|&t| term_value(t, env)).collect();
    let Some(pattern) = decl.usable_pattern(|j| bound[j].is_some()) else {
        return Err(EngineError::NotExecutable {
            literal: lit.to_string(),
            reason: format!(
                "no access pattern of {name} has all input slots bound (bound positions: {:?})",
                bound
                    .iter()
                    .enumerate()
                    .filter_map(|(j, b)| b.map(|_| j))
                    .collect::<Vec<_>>()
            ),
        });
    };
    let inputs: Vec<Option<Value>> = (0..pattern.arity())
        .map(|j| if pattern.is_input(j) { bound[j] } else { None })
        .collect();
    let rows = reg.call(name, pattern, &inputs)?;
    'rows: for row in rows {
        // Client-side unification: bound output slots, constants, and
        // repeated variables must agree; unbound variables get bound.
        let mut bound_here: Vec<Var> = Vec::new();
        for (j, (&arg, &val)) in atom.args.iter().zip(row.iter()).enumerate() {
            let _ = j;
            match arg {
                Term::Const(c) => {
                    if Value::from(c) != val {
                        for v in bound_here.drain(..) {
                            env.remove(&v);
                        }
                        continue 'rows;
                    }
                }
                Term::Var(v) => match env.get(&v) {
                    Some(&prev) if prev != val => {
                        for v in bound_here.drain(..) {
                            env.remove(&v);
                        }
                        continue 'rows;
                    }
                    Some(_) => {}
                    None => {
                        env.insert(v, val);
                        bound_here.push(v);
                    }
                },
            }
        }
        eval_rec(cq, null_vars, reg, depth + 1, env, out)?;
        for v in bound_here {
            env.remove(&v);
        }
    }
    Ok(())
}

fn eval_negative(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
    depth: usize,
    lit: &Literal,
    env: &mut HashMap<Var, Value>,
    out: &mut BTreeSet<Tuple>,
) -> Result<(), EngineError> {
    let atom = &lit.atom;
    let mut values = Vec::with_capacity(atom.args.len());
    for &arg in &atom.args {
        match term_value(arg, env) {
            Some(v) => values.push(v),
            None => {
                return Err(EngineError::UnboundNegation {
                    literal: lit.to_string(),
                })
            }
        }
    }
    if !reg.membership_test(atom.predicate.name, &values)? {
        eval_rec(cq, null_vars, reg, depth + 1, env, out)?;
    }
    Ok(())
}

fn project_head(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    env: &HashMap<Var, Value>,
) -> Result<Tuple, EngineError> {
    let mut tuple = Vec::with_capacity(cq.head.args.len());
    for &arg in &cq.head.args {
        match arg {
            Term::Const(c) => tuple.push(Value::from(c)),
            Term::Var(v) => match env.get(&v) {
                Some(&val) => tuple.push(val),
                None if null_vars.contains(&v) => tuple.push(Value::Null),
                None => {
                    return Err(EngineError::NotExecutable {
                        literal: cq.head.to_string(),
                        reason: format!("head variable {v} is neither bound nor declared null"),
                    })
                }
            },
        }
    }
    Ok(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use lap_ir::{parse_cq, Schema};

    fn bookstore() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"
            B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg").
            C(1, "tolkien"). C(3, "adams").
            L(1).
            "#,
        )
        .unwrap();
        let schema =
            Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("C", "oo"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn example_1_reordered_plan_runs() {
        // C first (free scan) binds i and a; then B^ioo; then ¬L filter.
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let rows = eval_ordered_cq(&plan, &[], &mut reg).unwrap();
        // Book 1 is in the library; only book 3 survives ¬L. Book 2 is not
        // in the catalog C.
        let rows: Vec<Tuple> = rows.into_iter().collect();
        assert_eq!(rows, vec![vec![Value::int(3), Value::str("adams"), Value::str("hhgttg")]]);
    }

    #[test]
    fn example_1_original_order_fails() {
        // B first: neither B^ioo nor B^oio has its input bound.
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).").unwrap();
        let err = eval_ordered_cq(&plan, &[], &mut reg).unwrap_err();
        assert!(matches!(err, EngineError::NotExecutable { .. }), "{err}");
    }

    #[test]
    fn negation_first_fails_with_unbound_vars() {
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq("Q(i, a, t) :- not L(i), C(i, a), B(i, a, t).").unwrap();
        let err = eval_ordered_cq(&plan, &[], &mut reg).unwrap_err();
        assert!(matches!(err, EngineError::UnboundNegation { .. }));
    }

    #[test]
    fn null_vars_project_null() {
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        // Head var t never bound in the body; declared null.
        let plan = parse_cq("Q(i, t) :- C(i, a).").unwrap();
        let rows = eval_ordered_cq(&plan, &[Var::new("t")], &mut reg).unwrap();
        assert!(rows.iter().all(|r| r[1] == Value::Null));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unbound_head_var_without_null_is_error() {
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq("Q(i, t) :- C(i, a).").unwrap();
        assert!(eval_ordered_cq(&plan, &[], &mut reg).is_err());
    }

    #[test]
    fn constants_filter_client_side() {
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq(r#"Q(t) :- C(i, a), B(i, "adams", t)."#).unwrap();
        let rows = eval_ordered_cq(&plan, &[], &mut reg).unwrap();
        assert_eq!(rows.into_iter().collect::<Vec<_>>(), vec![vec![Value::str("hhgttg")]]);
    }

    #[test]
    fn repeated_variables_join() {
        let db = Database::from_facts("R(1, 1). R(1, 2). R(2, 2).").unwrap();
        let schema = Schema::from_patterns(&[("R", "oo")]).unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq("Q(x) :- R(x, x).").unwrap();
        let rows = eval_ordered_cq(&plan, &[], &mut reg).unwrap();
        assert_eq!(
            rows.into_iter().collect::<Vec<_>>(),
            vec![vec![Value::int(1)], vec![Value::int(2)]]
        );
    }

    #[test]
    fn union_evaluation_unions() {
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let p1 = parse_cq("Q(i) :- C(i, a).").unwrap();
        let p2 = parse_cq("Q(i) :- L(i).").unwrap();
        let rows = eval_ordered_union(&[(p1, vec![]), (p2, vec![])], &mut reg).unwrap();
        assert_eq!(rows.len(), 2); // {1, 3}
    }

    #[test]
    fn wrapper_agrees_with_tuple_reference_path() {
        let (db, schema) = bookstore();
        let plan = parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let mut batched = SourceRegistry::new(&db, &schema);
        let mut tuple = SourceRegistry::new(&db, &schema);
        assert_eq!(
            eval_ordered_cq(&plan, &[], &mut batched).unwrap(),
            eval_ordered_cq_tuple(&plan, &[], &mut tuple).unwrap()
        );
    }

    #[test]
    fn empty_body_emits_single_constant_row() {
        let (db, schema) = bookstore();
        let mut reg = SourceRegistry::new(&db, &schema);
        let plan = parse_cq("Q(1) :- true.").unwrap();
        let rows = eval_ordered_cq(&plan, &[], &mut reg).unwrap();
        assert_eq!(rows.into_iter().collect::<Vec<_>>(), vec![vec![Value::int(1)]]);
    }
}
