//! Deterministic replay of recorded source traffic.
//!
//! A [`ReplaySource`] is a [`Source`] that serves the transport results —
//! rows, virtual latencies, *and* faults — recorded in a flight-recorder
//! journal (see `lap_obs::journal`). Everything above the transport
//! boundary is a pure function of those results: the registry's retry
//! loop draws backoff jitter from a fixed seed, the virtual clock only
//! advances by recorded latencies, and plan evaluation is deterministic.
//! Replaying a journal therefore reproduces the original run — including
//! its degraded disjuncts and completeness downgrade — bit for bit, which
//! is exactly the postmortem one wants for the runs where completeness
//! was lost.
//!
//! Requirements on the journal: it must have been recorded with
//! `JournalConfig::replay()` (row capture on, no sampling) and no events
//! may have been dropped from the ring; [`ReplaySource::from_journal`]
//! rejects anything else up front instead of failing mysteriously later.

use crate::fault::{SourceFault, SourceReply};
use crate::source::Source;
use crate::value::{rows_from_json, value_from_json, Tuple, Value};
use lap_ir::{AccessPattern, Symbol};
use lap_obs::journal::kind;
use lap_obs::{Json, JournalSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded transport attempt: the call key plus its outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedCall {
    /// The relation the call targeted.
    pub relation: Symbol,
    /// The access pattern used.
    pub pattern: AccessPattern,
    /// Bound input slots (`None` at output slots).
    pub inputs: Vec<Option<Value>>,
    /// What the transport answered: rows + latency, or a fault.
    pub outcome: Result<SourceReply, SourceFault>,
}

/// A [`Source`] serving recorded calls back in order. Cheaply cloneable —
/// clones share one cursor, so several registries (e.g. one per query of
/// a program) consume the same recorded stream sequentially.
#[derive(Clone, Debug)]
pub struct ReplaySource {
    calls: Arc<Mutex<VecDeque<RecordedCall>>>,
    mismatches: Arc<AtomicU64>,
    out_of_order: Arc<AtomicU64>,
}

impl ReplaySource {
    /// A replay source over an explicit call sequence.
    pub fn from_calls(calls: Vec<RecordedCall>) -> ReplaySource {
        ReplaySource {
            calls: Arc::new(Mutex::new(calls.into())),
            mismatches: Arc::new(AtomicU64::new(0)),
            out_of_order: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Decodes the recorded transport attempts of `journal` (in end-event
    /// order) into a replay source. Fails when the journal is not
    /// replayable: events were dropped, rows were not captured, or call
    /// events are malformed.
    pub fn from_journal(journal: &JournalSnapshot) -> Result<ReplaySource, String> {
        Ok(ReplaySource::from_calls(recorded_calls(journal)?))
    }

    /// Calls still waiting to be served.
    pub fn remaining(&self) -> usize {
        self.calls.lock().expect("replay source not poisoned").len()
    }

    /// Fetches that matched no recorded call (each was answered with a
    /// zero-latency [`SourceFault::Unavailable`]). Non-zero means the
    /// replayed execution diverged from the recorded one.
    pub fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// Fetches answered by a recorded call that was not at the front of
    /// the stream (expected under parallel replay, a divergence signal
    /// under sequential replay).
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order.load(Ordering::Relaxed)
    }
}

impl Source for ReplaySource {
    fn fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        let mut calls = self.calls.lock().expect("replay source not poisoned");
        let matches = |c: &RecordedCall| {
            c.relation == name && c.pattern == pattern && c.inputs == inputs
        };
        let position = calls.iter().position(matches);
        match position {
            Some(0) => {}
            Some(_) => {
                self.out_of_order.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.mismatches.fetch_add(1, Ordering::Relaxed);
                return Err(SourceFault::Unavailable { latency_ms: 0 });
            }
        }
        let call = calls
            .remove(position.expect("checked above"))
            .expect("position in bounds");
        call.outcome
    }
}

/// Decodes the journal's `source.call.begin`/`source.call.end` pairs into
/// [`RecordedCall`]s, ordered by **begin sequence number** — the order
/// calls were issued. For a serial journal that equals end-event order;
/// for an overlapped one (concurrent sub-lanes, `io_workers > 1`) begin
/// order is the order the replaying registry re-issues the calls in, so
/// sorting here is what lets a replay front-match the stream without
/// spurious `out_of_order` hits. Used by [`ReplaySource::from_journal`]
/// and tests.
pub fn recorded_calls(journal: &JournalSnapshot) -> Result<Vec<RecordedCall>, String> {
    if journal.dropped > 0 {
        return Err(format!(
            "journal not replayable: {} event(s) were dropped from the ring \
             (record with a larger --journal capacity)",
            journal.dropped
        ));
    }
    if let Some(cfg) = journal.meta.get("journal") {
        if cfg.get("capture_rows") == Some(&Json::Bool(false)) {
            return Err("journal not replayable: rows were not captured".to_owned());
        }
        if cfg.get("sample_every").and_then(Json::as_u64).unwrap_or(1) > 1 {
            return Err("journal not replayable: source calls were sampled".to_owned());
        }
    }
    // Pending begin per lane; wire attempts never nest within a lane.
    type PendingBegin = (u64, Symbol, AccessPattern, Vec<Option<Value>>);
    let mut pending: BTreeMap<u64, PendingBegin> = BTreeMap::new();
    let mut calls: Vec<(u64, RecordedCall)> = Vec::new();
    for event in &journal.events {
        match event.kind.as_str() {
            kind::SOURCE_CALL_BEGIN => {
                let relation = event
                    .data
                    .get("relation")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("call begin seq {} missing relation", event.seq))?;
                let pattern = event
                    .data
                    .get("pattern")
                    .and_then(Json::as_str)
                    .and_then(|p| AccessPattern::parse(p).ok())
                    .ok_or_else(|| format!("call begin seq {} missing pattern", event.seq))?;
                let slots = event
                    .data
                    .get("inputs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        format!(
                            "call begin seq {} has no captured inputs — \
                             journal was not recorded in replay mode",
                            event.seq
                        )
                    })?;
                let inputs = slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| {
                        if pattern.is_input(j) {
                            value_from_json(slot).map(Some)
                        } else {
                            Ok(None)
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if let Some((prior, ..)) = pending.insert(
                    event.lane,
                    (event.seq, Symbol::intern(relation), pattern, inputs),
                ) {
                    return Err(format!(
                        "call begin seq {} overwrites unfinished begin seq {prior} \
                         on lane {} — begin/end pairs interleaved within a lane",
                        event.seq, event.lane
                    ));
                }
            }
            kind::SOURCE_CALL_END => {
                let (begin_seq, relation, pattern, inputs) =
                    pending.remove(&event.lane).ok_or_else(|| {
                        format!("call end seq {} without a begin on its lane", event.seq)
                    })?;
                let latency_ms = event
                    .data
                    .get("latency_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let outcome = if event.data.get("ok") == Some(&Json::Bool(true)) {
                    let rows: Vec<Tuple> = match event.data.get("rows_data") {
                        Some(rows) => rows_from_json(rows)?,
                        None => {
                            return Err(format!(
                                "call end seq {} has no captured rows — \
                                 journal was not recorded in replay mode",
                                event.seq
                            ))
                        }
                    };
                    Ok(SourceReply { rows, latency_ms })
                } else {
                    match event.data.get("fault").and_then(Json::as_str) {
                        Some("timeout") => Err(SourceFault::Timeout {
                            latency_ms,
                            timeout_ms: event
                                .data
                                .get("timeout_ms")
                                .and_then(Json::as_u64)
                                .unwrap_or(latency_ms),
                        }),
                        _ => Err(SourceFault::Unavailable { latency_ms }),
                    }
                };
                calls.push((begin_seq, RecordedCall { relation, pattern, inputs, outcome }));
            }
            _ => {}
        }
    }
    calls.sort_by_key(|(begin_seq, _)| *begin_seq);
    Ok(calls.into_iter().map(|(_, call)| call).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use crate::source::SourceRegistry;
    use crate::{FaultConfig, RetryPolicy};
    use lap_ir::Schema;
    use lap_obs::{JournalConfig, Recorder};

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts("R(1, 10). R(2, 20). R(3, 30).").unwrap();
        let schema = Schema::from_patterns(&[("R", "oo"), ("R", "io")]).unwrap();
        (db, schema)
    }

    /// Record a faulty run through a journaling registry, then replay the
    /// journal through a fresh registry: every call-level observable —
    /// rows, retries, failures, virtual clock — must reproduce exactly.
    #[test]
    fn registry_level_record_replay_is_bit_for_bit() {
        let (db, schema) = setup();
        let recorder = Recorder::with_journal(JournalConfig::replay());
        let retry = RetryPolicy::standard().with_max_attempts(3);
        let mut reg = SourceRegistry::new(&db, &schema)
            .with_fault_injection(FaultConfig::with_rate(0.4, 99))
            .with_retry(retry)
            .recording(&recorder);
        let p = AccessPattern::parse("io").unwrap();
        let mut recorded_rows = Vec::new();
        for i in 0..20i64 {
            let args = [Some(Value::int(i % 4)), None];
            recorded_rows.push(reg.call(Symbol::intern("R"), p, &args).ok());
        }
        let observed = (reg.stats(), reg.retries_observed(), reg.failures_observed(),
                        reg.virtual_elapsed_ms());

        let journal = recorder.journal().unwrap().snapshot();
        journal.validate().expect("recorded journal is valid");
        let replay = ReplaySource::from_journal(&journal).expect("replayable");
        let mut reg2 = SourceRegistry::with_source(Box::new(replay.clone()), &schema)
            .with_retry(retry);
        let mut replayed_rows = Vec::new();
        for i in 0..20i64 {
            let args = [Some(Value::int(i % 4)), None];
            replayed_rows.push(reg2.call(Symbol::intern("R"), p, &args).ok());
        }
        assert_eq!(replayed_rows, recorded_rows);
        assert_eq!(
            (reg2.stats(), reg2.retries_observed(), reg2.failures_observed(),
             reg2.virtual_elapsed_ms()),
            observed
        );
        assert_eq!(replay.mismatches(), 0);
        assert_eq!(replay.out_of_order(), 0);
        assert_eq!(replay.remaining(), 0, "every recorded call consumed");
    }

    #[test]
    fn unexpected_calls_fault_and_count_as_mismatches() {
        let (_, schema) = setup();
        let replay = ReplaySource::from_calls(vec![]);
        let mut reg = SourceRegistry::with_source(Box::new(replay.clone()), &schema);
        let p = AccessPattern::parse("oo").unwrap();
        assert!(reg.call(Symbol::intern("R"), p, &[None, None]).is_err());
        assert_eq!(replay.mismatches(), 1);
    }

    #[test]
    fn light_journals_are_rejected() {
        let (db, schema) = setup();
        let recorder = Recorder::with_journal(JournalConfig::light());
        let mut reg = SourceRegistry::new(&db, &schema).recording(&recorder);
        let p = AccessPattern::parse("oo").unwrap();
        reg.call(Symbol::intern("R"), p, &[None, None]).unwrap();
        let journal = recorder.journal().unwrap().snapshot();
        let err = ReplaySource::from_journal(&journal).unwrap_err();
        assert!(err.contains("not recorded in replay mode"), "{err}");
    }

    #[test]
    fn truncated_journals_are_rejected() {
        let (db, schema) = setup();
        let recorder = Recorder::with_journal(JournalConfig {
            capacity: 2,
            ..JournalConfig::replay()
        });
        let mut reg = SourceRegistry::new(&db, &schema).recording(&recorder);
        let p = AccessPattern::parse("oo").unwrap();
        for _ in 0..4 {
            reg.call(Symbol::intern("R"), p, &[None, None]).unwrap();
        }
        let journal = recorder.journal().unwrap().snapshot();
        assert!(journal.dropped > 0);
        let err = ReplaySource::from_journal(&journal).unwrap_err();
        assert!(err.contains("dropped"), "{err}");
    }

    /// Faults — including timeouts with their original latency/budget
    /// split — survive the journal round trip.
    #[test]
    fn faults_replay_with_recorded_latencies() {
        let (db, schema) = setup();
        let recorder = Recorder::with_journal(JournalConfig::replay());
        let cfg = FaultConfig {
            error_rate: 0.0,
            latency_ms: 50,
            latency_jitter_ms: 0,
            timeout_ms: Some(20),
            seed: 5,
        };
        let mut reg = SourceRegistry::new(&db, &schema)
            .with_fault_injection(cfg)
            .recording(&recorder);
        let p = AccessPattern::parse("oo").unwrap();
        assert!(reg.call(Symbol::intern("R"), p, &[None, None]).is_err());
        let journal = recorder.journal().unwrap().snapshot();
        let calls = recorded_calls(&journal).unwrap();
        assert_eq!(calls.len(), 1);
        assert_eq!(
            calls[0].outcome,
            Err(SourceFault::Timeout { latency_ms: 50, timeout_ms: 20 })
        );
    }
}
